//! Property-based tests of the semantic query fingerprint
//! ([`qfe::core::fingerprint`]):
//!
//! * **invariance** — fingerprints ignore spelling: predicate order,
//!   conjunct order within a compound predicate, join order, and join
//!   side orientation never change the fingerprint;
//! * **discrimination** — semantically different queries (different
//!   value, operator, column, or table set) fingerprint differently;
//! * **subset consistency** — `CanonicalQuery::subset_fingerprint(mask)`
//!   always equals the fingerprint of the materialized
//!   `subset_query(query, tables, mask)`, for every mask — the invariant
//!   the optimizer's estimate cache is keyed on.

use proptest::prelude::*;
use qfe::core::fingerprint::{CanonicalQuery, QueryFingerprint};
use qfe::core::{
    CmpOp, ColumnId, ColumnRef, CompoundPredicate, JoinPredicate, PredicateExpr, Query,
    SimplePredicate, TableId,
};
use qfe::exec::optimizer::subset_query;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne),
    ]
}

fn arb_pred() -> impl Strategy<Value = SimplePredicate> {
    (arb_op(), -100i64..100).prop_map(|(op, v)| SimplePredicate::new(op, v))
}

/// A compound predicate on a random (table, column) with 1–4 conjuncts.
fn arb_compound(n_tables: usize) -> impl Strategy<Value = CompoundPredicate> {
    (
        0..n_tables,
        0usize..3,
        prop::collection::vec(arb_pred(), 1..4),
    )
        .prop_map(|(t, c, preds)| {
            CompoundPredicate::conjunction(ColumnRef::new(TableId(t), ColumnId(c)), preds)
        })
}

/// A connected chain query over `n` tables with random predicates.
fn arb_chain_query() -> impl Strategy<Value = Query> {
    (1usize..5)
        .prop_flat_map(|n| (Just(n), prop::collection::vec(arb_compound(n), 0..6)))
        .prop_map(|(n, predicates)| Query {
            tables: (0..n).map(TableId).collect(),
            joins: (1..n)
                .map(|i| JoinPredicate {
                    left: ColumnRef::new(TableId(i - 1), ColumnId(0)),
                    right: ColumnRef::new(TableId(i), ColumnId(0)),
                })
                .collect(),
            predicates,
        })
}

/// A permutation of `0..n` derived from a seed (Fisher–Yates with a tiny
/// LCG — proptest shrinks the seed, not the permutation).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn permuted<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    permutation(items.len(), seed)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

proptest! {
    /// Reordering the predicate list never changes the fingerprint.
    #[test]
    fn predicate_order_is_irrelevant(q in arb_chain_query(), seed in 0u64..u64::MAX) {
        let reordered = Query {
            tables: q.tables.clone(),
            joins: q.joins.clone(),
            predicates: permuted(&q.predicates, seed),
        };
        prop_assert_eq!(QueryFingerprint::of(&q), QueryFingerprint::of(&reordered));
    }

    /// Reordering conjuncts inside each compound predicate never changes
    /// the fingerprint.
    #[test]
    fn conjunct_order_is_irrelevant(q in arb_chain_query(), seed in 0u64..u64::MAX) {
        let reordered = Query {
            tables: q.tables.clone(),
            joins: q.joins.clone(),
            predicates: q
                .predicates
                .iter()
                .map(|cp| {
                    let shuffled = match &cp.expr {
                        PredicateExpr::And(children) => {
                            PredicateExpr::And(permuted(children, seed))
                        }
                        other => other.clone(),
                    };
                    CompoundPredicate { column: cp.column, expr: shuffled }
                })
                .collect(),
        };
        prop_assert_eq!(QueryFingerprint::of(&q), QueryFingerprint::of(&reordered));
    }

    /// Reordering the join list and flipping join sides never changes the
    /// fingerprint.
    #[test]
    fn join_spelling_is_irrelevant(q in arb_chain_query(), seed in 0u64..u64::MAX, flips in 0u32..u32::MAX) {
        let joins: Vec<JoinPredicate> = permuted(&q.joins, seed)
            .into_iter()
            .enumerate()
            .map(|(i, j)| {
                if flips >> (i % 32) & 1 == 1 {
                    JoinPredicate { left: j.right, right: j.left }
                } else {
                    j
                }
            })
            .collect();
        let reordered = Query { tables: q.tables.clone(), joins, predicates: q.predicates.clone() };
        prop_assert_eq!(QueryFingerprint::of(&q), QueryFingerprint::of(&reordered));
    }

    /// Duplicating an existing predicate never changes the fingerprint
    /// (`p AND p ≡ p` after canonical dedup).
    #[test]
    fn duplicate_predicates_collapse(q in arb_chain_query(), pick in 0usize..64) {
        prop_assume!(!q.predicates.is_empty());
        let mut dup = q.clone();
        let repeated = dup.predicates[pick % dup.predicates.len()].clone();
        dup.predicates.push(repeated);
        prop_assert_eq!(QueryFingerprint::of(&q), QueryFingerprint::of(&dup));
    }

    /// Changing one literal value changes the fingerprint.
    #[test]
    fn value_changes_are_visible(op in arb_op(), v in -100i64..100, delta in 1i64..50) {
        let col = ColumnRef::new(TableId(0), ColumnId(0));
        let q = |value: i64| Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(col, vec![SimplePredicate::new(op, value)])],
        );
        prop_assert_ne!(QueryFingerprint::of(&q(v)), QueryFingerprint::of(&q(v + delta)));
    }

    /// Changing the operator changes the fingerprint.
    #[test]
    fn operator_changes_are_visible(a in arb_op(), b in arb_op(), v in -100i64..100) {
        prop_assume!(a != b);
        let col = ColumnRef::new(TableId(0), ColumnId(0));
        let q = |op: CmpOp| Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(col, vec![SimplePredicate::new(op, v)])],
        );
        prop_assert_ne!(QueryFingerprint::of(&q(a)), QueryFingerprint::of(&q(b)));
    }

    /// Moving a predicate to a different column changes the fingerprint.
    #[test]
    fn column_changes_are_visible(op in arb_op(), v in -100i64..100, c in 1usize..4) {
        let q = |col: usize| Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(col)),
                vec![SimplePredicate::new(op, v)],
            )],
        );
        prop_assert_ne!(QueryFingerprint::of(&q(0)), QueryFingerprint::of(&q(c)));
    }

    /// `And` and `Or` of the same leaves are distinct (And([])/Or([]) are
    /// true/false; mixed nestings must not collapse into each other).
    #[test]
    fn and_or_are_distinct(p1 in arb_pred(), p2 in arb_pred()) {
        prop_assume!(p1 != p2);
        let col = ColumnRef::new(TableId(0), ColumnId(0));
        let q = |expr: PredicateExpr| Query::single_table(
            TableId(0),
            vec![CompoundPredicate { column: col, expr }],
        );
        let and = q(PredicateExpr::And(vec![
            PredicateExpr::Leaf(p1.clone()),
            PredicateExpr::Leaf(p2.clone()),
        ]));
        let or = q(PredicateExpr::Or(vec![
            PredicateExpr::Leaf(p1),
            PredicateExpr::Leaf(p2),
        ]));
        prop_assert_ne!(QueryFingerprint::of(&and), QueryFingerprint::of(&or));
    }

    /// For every table subset, the precomputed subset fingerprint equals
    /// the fingerprint of the materialized sub-query — the soundness
    /// condition for using `subset_fingerprint` as the estimate-cache key
    /// without ever building the sub-query on a hit.
    #[test]
    fn subset_fingerprints_match_materialized_subqueries(q in arb_chain_query()) {
        let canon = CanonicalQuery::new(&q);
        let tables = canon.tables().to_vec();
        let full = canon.full_mask();
        for mask in 1..=full {
            let sub = subset_query(&q, &tables, mask);
            prop_assert_eq!(
                canon.subset_fingerprint(mask),
                QueryFingerprint::of(&sub),
                "mask {:#b}", mask
            );
        }
    }
}
