//! Integration tests of the lossless-featurization property
//! (Definition 3.1 and Lemma 3.2), verified against the execution engine:
//! featurize → invert → execute, and compare counts.

use qfe::core::featurize::lossless::{invert_conjunctive, is_exact, InversionMode};
use qfe::core::featurize::{AttributeSpace, Featurizer, UniversalConjunctionEncoding};
use qfe::core::{CmpOp, ColumnId, ColumnRef, CompoundPredicate, Query, SimplePredicate, TableId};
use qfe::data::table::{Database, Table};
use qfe::data::Column;
use qfe::exec::true_cardinality;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A table with two small-domain integer attributes (so exact bucket mode
/// is reachable) filled with correlated data.
fn small_db(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    for _ in 0..rows {
        let x = rng.gen_range(0..32i64);
        a.push(x);
        b.push((x / 2 + rng.gen_range(0..8)) % 16);
    }
    Database::new(
        vec![Table::new(
            "t",
            vec![("a".into(), Column::Int(a)), ("b".into(), Column::Int(b))],
        )],
        &[],
    )
}

fn random_conjunctive_query(rng: &mut StdRng) -> Query {
    let mut predicates = Vec::new();
    for (ci, hi) in [(0usize, 31i64), (1usize, 15i64)] {
        if rng.gen_bool(0.8) {
            let lo_v = rng.gen_range(0..=hi);
            let hi_v = rng.gen_range(lo_v..=hi);
            let mut preds = vec![
                SimplePredicate::new(CmpOp::Ge, lo_v),
                SimplePredicate::new(CmpOp::Le, hi_v),
            ];
            for _ in 0..rng.gen_range(0..3) {
                preds.push(SimplePredicate::new(CmpOp::Ne, rng.gen_range(lo_v..=hi_v)));
            }
            predicates.push(CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(ci)),
                preds,
            ));
        }
    }
    Query::single_table(TableId(0), predicates)
}

#[test]
fn exact_mode_inversion_preserves_cardinality() {
    // Lemma 3.2 limit: with n >= |domain| the featurization is lossless —
    // the reconstructed query must return exactly the same count on the
    // actual data.
    let db = small_db(3_000, 1);
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    let enc = UniversalConjunctionEncoding::new(space, 32).expect("valid featurizer config"); // both domains <= 32
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..100 {
        let q = random_conjunctive_query(&mut rng);
        let f = enc.featurize(&q).unwrap();
        assert!(is_exact(&enc, &f), "32 buckets must be exact here");
        let reconstructed =
            invert_conjunctive(&enc, &f, TableId(0), InversionMode::Subset).unwrap();
        let original_count = true_cardinality(&db, &q).unwrap();
        let reconstructed_count = true_cardinality(&db, &reconstructed).unwrap();
        assert_eq!(
            original_count, reconstructed_count,
            "lossless inversion changed the result for {:?}",
            q
        );
    }
}

#[test]
fn coarse_mode_inversion_brackets_cardinality() {
    // With coarse buckets the Subset inversion undercounts and the
    // Superset inversion overcounts — and the bracket tightens as n grows
    // (the convergence statement of Lemma 3.2).
    let db = small_db(3_000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    for _ in 0..50 {
        let q = random_conjunctive_query(&mut rng);
        let truth = true_cardinality(&db, &q).unwrap();
        let mut prev_gap = u64::MAX;
        for n in [4usize, 8, 16, 32] {
            let enc = UniversalConjunctionEncoding::new(space.clone(), n)
                .expect("valid featurizer config");
            let f = enc.featurize(&q).unwrap();
            let sub = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Subset).unwrap();
            let sup = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Superset).unwrap();
            let c_sub = true_cardinality(&db, &sub).unwrap();
            let c_sup = true_cardinality(&db, &sup).unwrap();
            assert!(
                c_sub <= truth,
                "subset overcounts at n={n}: {c_sub} > {truth}"
            );
            assert!(
                c_sup >= truth,
                "superset undercounts at n={n}: {c_sup} < {truth}"
            );
            let gap = c_sup - c_sub;
            assert!(
                gap <= prev_gap,
                "bracket widened when n grew to {n}: {gap} > {prev_gap}"
            );
            prev_gap = gap;
        }
        // At n = 32 both domains are exact: the bracket must be closed.
        assert_eq!(prev_gap, 0, "bracket open at exact resolution");
    }
}

#[test]
fn singular_encoding_is_demonstrably_lossy() {
    // The paper's negative example: two queries with different results but
    // identical Singular Predicate Encoding feature vectors.
    use qfe::core::featurize::SingularPredicateEncoding;
    let db = small_db(3_000, 5);
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    let enc = SingularPredicateEncoding::new(space);
    let col = ColumnRef::new(TableId(0), ColumnId(0));
    let tight = Query::single_table(
        TableId(0),
        vec![CompoundPredicate::conjunction(
            col,
            vec![
                SimplePredicate::new(CmpOp::Ge, 10),
                SimplePredicate::new(CmpOp::Le, 12),
            ],
        )],
    );
    let loose = Query::single_table(
        TableId(0),
        vec![CompoundPredicate::conjunction(
            col,
            vec![SimplePredicate::new(CmpOp::Ge, 10)],
        )],
    );
    assert_eq!(
        enc.featurize(&tight).unwrap(),
        enc.featurize(&loose).unwrap(),
        "identical feature vectors…"
    );
    assert_ne!(
        true_cardinality(&db, &tight).unwrap(),
        true_cardinality(&db, &loose).unwrap(),
        "…for queries with different results: no inversion function can exist"
    );
}
