//! The tentpole robustness property: a [`FallbackChain`] whose stages are
//! wrapped in seeded [`ChaosEstimator`]s — injecting typed errors, NaNs,
//! and contract-violating garbage — must, over generated conjunctive AND
//! mixed workloads, for every fault pattern:
//!
//! * never panic,
//! * always produce a finite estimate `>= 1`,
//! * attribute every estimate to the stage that actually produced it.

use proptest::prelude::*;
use std::sync::OnceLock;

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::{CardinalityEstimator, Query, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::Database;
use qfe::estimators::chain::{ChaosEstimator, EstimatorFault, FallbackChain};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{LearnedEstimator, PostgresEstimator, SamplingEstimator};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::workload::{generate_conjunctive, generate_mixed, ConjunctiveConfig, MixedConfig};

const TABLE: TableId = TableId(0);

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        generate_forest(&ForestConfig {
            rows: 2_000,
            quantitative_only: true,
            seed: 17,
        })
    })
}

fn learned() -> &'static LearnedEstimator {
    static EST: OnceLock<LearnedEstimator> = OnceLock::new();
    EST.get_or_init(|| {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TABLE);
        let mut est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid config")),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 20,
                max_leaves: 8,
                min_samples_leaf: 4,
                ..GbdtConfig::default()
            })),
        );
        let train = label_queries(
            db,
            generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 300, 23)),
        );
        est.fit(&train).expect("training the chain's primary stage");
        est
    })
}

fn postgres() -> &'static PostgresEstimator {
    static EST: OnceLock<PostgresEstimator> = OnceLock::new();
    EST.get_or_init(|| PostgresEstimator::analyze_default(db()))
}

/// Conjunctive + mixed workload for one generator seed.
fn workload(seed: u64) -> Vec<Query> {
    let catalog = db().catalog();
    let mut queries = generate_conjunctive(catalog, &ConjunctiveConfig::new(TABLE, 8, seed));
    queries.extend(generate_mixed(
        catalog,
        &MixedConfig::new(TABLE, 8, seed ^ 0x5EED),
    ));
    queries
}

const ALL_FAULTS: [EstimatorFault; 3] = [
    EstimatorFault::Error,
    EstimatorFault::Nan,
    EstimatorFault::Garbage,
];

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(48))]

    /// The acceptance property from the issue: chain over chaos-wrapped
    /// learned → postgres → sampling stages, any fault rate, any seed.
    #[test]
    fn chain_survives_chaos_with_correct_provenance(
        chaos_seed in 0u64..u64::MAX / 2,
        workload_seed in 0u64..1u64 << 16,
        rate in 0.0f64..1.0,
    ) {
        let chaos_learned = ChaosEstimator::new(learned(), ALL_FAULTS.to_vec(), rate, chaos_seed);
        let chaos_pg = ChaosEstimator::new(postgres(), ALL_FAULTS.to_vec(), rate, chaos_seed ^ 1);
        let chaos_sampling = ChaosEstimator::new(
            SamplingEstimator::new(db(), 0.05, 7),
            ALL_FAULTS.to_vec(),
            rate,
            chaos_seed ^ 2,
        );
        let stage_names = [chaos_learned.name(), chaos_pg.name(), chaos_sampling.name()];
        let chain = FallbackChain::new(vec![
            Box::new(chaos_learned),
            Box::new(chaos_pg),
            Box::new(chaos_sampling),
        ]);

        let queries = workload(workload_seed);
        let n = queries.len() as u64;
        for q in &queries {
            let est = chain.try_estimate(q).expect("the chain is total");
            prop_assert!(
                est.value.is_finite() && est.value >= 1.0,
                "illegal estimate {est:?}"
            );
            prop_assert!(est.fallback_depth <= 3, "{est:?}");
            // Provenance identifies the producing stage.
            if est.fallback_depth < 3 {
                prop_assert_eq!(&est.estimator, &stage_names[est.fallback_depth]);
            } else {
                prop_assert_eq!(est.estimator.as_str(), "floor");
            }
            // The infallible entry point agrees with the guarantee too.
            let v = chain.estimate(q);
            prop_assert!(v.is_finite() && v >= 1.0, "estimate() produced {v}");
        }

        // Counter bookkeeping: every try_estimate + estimate call landed
        // in exactly one stage-hit bucket (floor included), read as one
        // coherent snapshot.
        prop_assert_eq!(chain.stage_stats().total_hits(), 2 * n);
    }

    /// With injection disabled the primary stage answers everything.
    #[test]
    fn zero_rate_chain_never_falls_back(workload_seed in 0u64..1u64 << 16) {
        let chain = FallbackChain::new(vec![
            Box::new(ChaosEstimator::new(learned(), ALL_FAULTS.to_vec(), 0.0, 1)),
            Box::new(postgres() as &dyn CardinalityEstimator),
        ]);
        for q in &workload(workload_seed) {
            let est = chain.try_estimate(q).expect("total");
            // The trained learned stage answers every supported query; an
            // unsupported one (mixed query under the conjunctive QFT) may
            // legitimately fall through to postgres — but never deeper.
            prop_assert!(est.fallback_depth <= 1, "{est:?}");
            prop_assert!(est.value.is_finite() && est.value >= 1.0);
        }
        let stats = chain.stage_stats();
        prop_assert_eq!(stats.fallback_count, stats.stage_hits[1] + stats.floor_hits);
        prop_assert_eq!(stats.floor_hits, 0);
    }

    /// Full-rate chaos on every stage: the floor answers every query and
    /// the error counters account for every stage failure.
    #[test]
    fn full_rate_chaos_always_reaches_the_floor(
        chaos_seed in 0u64..u64::MAX / 2,
        workload_seed in 0u64..1u64 << 16,
    ) {
        let chain = FallbackChain::new(vec![
            Box::new(ChaosEstimator::new(learned(), ALL_FAULTS.to_vec(), 1.0, chaos_seed)),
            Box::new(ChaosEstimator::new(postgres(), ALL_FAULTS.to_vec(), 1.0, chaos_seed ^ 1)),
        ]);
        let queries = workload(workload_seed);
        for q in &queries {
            let est = chain.try_estimate(q).expect("total");
            prop_assert_eq!(est.value, 1.0);
            prop_assert_eq!(est.estimator.as_str(), "floor");
            prop_assert_eq!(est.fallback_depth, 2);
        }
        let n = queries.len() as u64;
        let stats = chain.stage_stats();
        prop_assert_eq!(stats.stage_hits, vec![0, 0]);
        prop_assert_eq!(stats.floor_hits, n);
        // Two stages failed for each of n queries.
        prop_assert_eq!(stats.total_errors(), 2 * n);
    }
}
