//! Property-based tests (proptest) of the featurization layer's
//! invariants:
//!
//! * determinism (Eq. 4 of the paper),
//! * fixed output dimension,
//! * conjunction monotonicity (more conjuncts ⇒ entries never increase),
//! * disjunction monotonicity (more disjuncts ⇒ entries never decrease),
//! * entries stay in `[0, 1]`,
//! * `complex` ≡ `conjunctive` on conjunction-only queries,
//! * featurization semantics agree with execution-level membership.

use proptest::prelude::*;
use qfe::core::featurize::{
    AttributeSpace, EquiDepthConjunctionEncoding, FeatureMatrix, Featurizer,
    LimitedDisjunctionEncoding, RangePredicateEncoding, SingularPredicateEncoding,
    UniversalConjunctionEncoding,
};
use qfe::core::interval::{Region, RegionSet};
use qfe::core::{
    AttributeDomain, CmpOp, ColumnId, ColumnRef, CompoundPredicate, PredicateExpr, QfeError, Query,
    SimplePredicate, TableId,
};

fn space() -> AttributeSpace {
    AttributeSpace::new(vec![
        (
            ColumnRef::new(TableId(0), ColumnId(0)),
            AttributeDomain::integers(-50, 150),
        ),
        (
            ColumnRef::new(TableId(0), ColumnId(1)),
            AttributeDomain::integers(0, 7),
        ),
        (
            ColumnRef::new(TableId(0), ColumnId(2)),
            AttributeDomain::reals(0.0, 1.0),
        ),
    ])
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne),
    ]
}

fn arb_pred(col: usize) -> impl Strategy<Value = SimplePredicate> {
    let value = match col {
        0 => (-60i64..160).boxed(),
        1 => (-1i64..9).boxed(),
        _ => (0i64..100).boxed(),
    };
    (arb_op(), value).prop_map(move |(op, v)| {
        if col == 2 {
            SimplePredicate::new(op, v as f64 / 100.0)
        } else {
            SimplePredicate::new(op, v)
        }
    })
}

fn arb_conjunct(col: usize) -> impl Strategy<Value = Vec<SimplePredicate>> {
    prop::collection::vec(arb_pred(col), 1..5)
}

/// An arbitrary conjunctive query over the three attributes.
fn arb_conjunctive_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (0usize..3, arb_conjunct(0), arb_conjunct(1), arb_conjunct(2)),
        0..3,
    )
    .prop_map(|specs| {
        let mut predicates = Vec::new();
        let mut used = [false; 3];
        for (col, p0, p1, p2) in specs {
            if used[col] {
                continue;
            }
            used[col] = true;
            let preds = match col {
                0 => p0,
                1 => p1,
                _ => p2,
            };
            predicates.push(CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(col)),
                preds,
            ));
        }
        Query::single_table(TableId(0), predicates)
    })
}

/// An arbitrary mixed query: 1–3 disjuncts per attribute.
fn arb_mixed_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (
            0usize..3,
            prop::collection::vec(arb_conjunct(0), 1..4),
            prop::collection::vec(arb_conjunct(1), 1..4),
            prop::collection::vec(arb_conjunct(2), 1..4),
        ),
        0..3,
    )
    .prop_map(|specs| {
        let mut predicates = Vec::new();
        let mut used = [false; 3];
        for (col, d0, d1, d2) in specs {
            if used[col] {
                continue;
            }
            used[col] = true;
            let disjuncts = match col {
                0 => d0,
                1 => d1,
                _ => d2,
            };
            let expr =
                PredicateExpr::Or(disjuncts.into_iter().map(PredicateExpr::all_of).collect());
            predicates.push(CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(col)),
                expr,
            });
        }
        Query::single_table(TableId(0), predicates)
    })
}

/// All five QFTs. The equi-depth encoder needs explicit per-attribute
/// bucket edges (production edges come from
/// `qfe_data::histogram::equi_depth_edges`); these are deliberately
/// uneven to exercise non-uniform bucket widths.
fn all_featurizers() -> Vec<Box<dyn Featurizer>> {
    vec![
        Box::new(SingularPredicateEncoding::new(space())),
        Box::new(RangePredicateEncoding::new(space())),
        Box::new(UniversalConjunctionEncoding::new(space(), 16).expect("valid featurizer config")),
        Box::new(EquiDepthConjunctionEncoding::new(
            space(),
            vec![
                vec![-20.0, 0.0, 30.0, 80.0, 120.0],
                vec![1.0, 3.0, 5.0],
                vec![0.1, 0.5, 0.9],
            ],
        )),
        Box::new(LimitedDisjunctionEncoding::new(space(), 16).expect("valid featurizer config")),
    ]
}

/// `featurize_into` must write exactly what `featurize` allocates — same
/// bits, every slot. The buffer is poisoned first so a skipped slot (a
/// layout-offset bug) cannot masquerade as a correct zero.
fn assert_into_matches(f: &dyn Featurizer, q: &Query) {
    let alloc = f.featurize(q).unwrap();
    let mut out = vec![0.625f32; f.dim()];
    f.featurize_into(q, &mut out).unwrap();
    assert_eq!(
        alloc.as_slice().len(),
        out.len(),
        "{} dim mismatch",
        f.name()
    );
    for (i, (a, b)) in alloc.as_slice().iter().zip(&out).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} entry {} differs: {} vs {}",
            f.name(),
            i,
            a,
            b
        );
    }
}

#[test]
fn featurize_into_rejects_a_wrong_size_buffer() {
    for f in all_featurizers() {
        let q = Query::single_table(TableId(0), vec![]);
        let mut long = vec![0.0f32; f.dim() + 1];
        let err = f.featurize_into(&q, &mut long).unwrap_err();
        assert!(
            matches!(err, QfeError::ShapeMismatch { .. }),
            "{}: {err:?}",
            f.name()
        );
        if f.dim() > 0 {
            let mut short = vec![0.0f32; f.dim() - 1];
            let err = f.featurize_into(&q, &mut short).unwrap_err();
            assert!(
                matches!(err, QfeError::ShapeMismatch { .. }),
                "{}: {err:?}",
                f.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn featurize_into_is_bit_identical_to_featurize(q in arb_conjunctive_query()) {
        for f in &all_featurizers() {
            assert_into_matches(f.as_ref(), &q);
        }
    }

    #[test]
    fn featurize_into_matches_on_mixed_queries(q in arb_mixed_query()) {
        // Only the limited-disjunction QFT accepts arbitrary mixed
        // queries; the others must fail `featurize_into` exactly when
        // they fail `featurize`.
        for f in &all_featurizers() {
            match f.featurize(&q) {
                Ok(_) => assert_into_matches(f.as_ref(), &q),
                Err(_) => {
                    let mut out = vec![0.0f32; f.dim()];
                    prop_assert!(
                        f.featurize_into(&q, &mut out).is_err(),
                        "{} accepted via featurize_into what featurize rejected",
                        f.name()
                    );
                }
            }
        }
    }

    #[test]
    fn feature_matrix_rows_match_per_query_featurization(
        qs in prop::collection::vec(arb_conjunctive_query(), 0..6),
    ) {
        for f in &all_featurizers() {
            let m = FeatureMatrix::build(f.as_ref(), &qs);
            prop_assert_eq!(m.rows(), qs.len());
            prop_assert_eq!(m.cols(), f.dim());
            prop_assert_eq!(m.ok_rows(), qs.len(), "{}", f.name());
            for (i, q) in qs.iter().enumerate() {
                prop_assert!(m.row_error(i).is_none());
                let single = f.featurize(q).unwrap();
                for (a, b) in single.as_slice().iter().zip(m.row(i)) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{} row {}", f.name(), i);
                }
            }
        }
    }

    #[test]
    fn all_featurizers_are_deterministic_and_dimension_stable(q in arb_conjunctive_query()) {
        let featurizers: Vec<Box<dyn Featurizer>> = vec![
            Box::new(SingularPredicateEncoding::new(space())),
            Box::new(RangePredicateEncoding::new(space())),
            Box::new(UniversalConjunctionEncoding::new(space(), 16).expect("valid featurizer config")),
            Box::new(LimitedDisjunctionEncoding::new(space(), 16).expect("valid featurizer config")),
        ];
        for f in &featurizers {
            let a = f.featurize(&q).unwrap();
            let b = f.featurize(&q).unwrap();
            prop_assert_eq!(&a, &b, "{} not deterministic", f.name());
            prop_assert_eq!(a.dim(), f.dim(), "{} dim unstable", f.name());
            for &e in a.as_slice() {
                prop_assert!((0.0..=1.0).contains(&e), "{} entry {} out of range", f.name(), e);
            }
        }
    }

    #[test]
    fn complex_equals_conjunctive_on_conjunctions(q in arb_conjunctive_query()) {
        let conj = UniversalConjunctionEncoding::new(space(), 16).expect("valid featurizer config");
        let comp = LimitedDisjunctionEncoding::new(space(), 16).expect("valid featurizer config");
        prop_assert_eq!(conj.featurize(&q).unwrap(), comp.featurize(&q).unwrap());
    }

    #[test]
    fn adding_a_conjunct_never_increases_entries(
        preds in arb_conjunct(0),
        extra in arb_pred(0),
    ) {
        let enc = UniversalConjunctionEncoding::new(space(), 16).expect("valid featurizer config").with_attr_sel(false);
        let col = ColumnRef::new(TableId(0), ColumnId(0));
        let base = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(col, preds.clone())],
        );
        let mut more_preds = preds;
        more_preds.push(extra);
        let more = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(col, more_preds)],
        );
        let fa = enc.featurize(&base).unwrap();
        let fb = enc.featurize(&more).unwrap();
        for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
            prop_assert!(b <= a, "entry increased: {} -> {}", a, b);
        }
    }

    #[test]
    fn adding_a_disjunct_never_decreases_entries(
        disjuncts in prop::collection::vec(arb_conjunct(0), 1..3),
        extra in arb_conjunct(0),
    ) {
        let enc = LimitedDisjunctionEncoding::new(space(), 16).expect("valid featurizer config").with_attr_sel(false);
        let col = ColumnRef::new(TableId(0), ColumnId(0));
        let or_of = |ds: &[Vec<SimplePredicate>]| {
            Query::single_table(
                TableId(0),
                vec![CompoundPredicate {
                    column: col,
                    expr: PredicateExpr::Or(
                        ds.iter().cloned().map(PredicateExpr::all_of).collect(),
                    ),
                }],
            )
        };
        let base = or_of(&disjuncts);
        let mut more_disjuncts = disjuncts;
        more_disjuncts.push(extra);
        let more = or_of(&more_disjuncts);
        let fa = enc.featurize(&base).unwrap();
        let fb = enc.featurize(&more).unwrap();
        for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
            prop_assert!(b >= a, "entry decreased: {} -> {}", a, b);
        }
    }

    #[test]
    fn mixed_queries_featurize_without_error(q in arb_mixed_query()) {
        let enc = LimitedDisjunctionEncoding::new(space(), 16).expect("valid featurizer config");
        let f = enc.featurize(&q).unwrap();
        prop_assert_eq!(f.dim(), enc.dim());
    }

    #[test]
    fn region_membership_matches_expression_semantics(
        preds in arb_conjunct(1),
        value in -1i64..9,
    ) {
        // The Region abstraction used for selectivity entries must agree
        // with direct predicate evaluation on every domain value.
        let domain = AttributeDomain::integers(0, 7);
        let region = Region::from_conjunct(&preds, &domain);
        if (0..=7).contains(&value) {
            let direct = preds.iter().all(|p| p.matches_f64(value as f64));
            prop_assert_eq!(
                region.contains(value as f64),
                direct,
                "region/membership mismatch at {} for {:?}", value, preds
            );
        }
    }

    #[test]
    fn union_selectivity_is_bounded_and_monotone(
        d1 in arb_conjunct(1),
        d2 in arb_conjunct(1),
    ) {
        let domain = AttributeDomain::integers(0, 7);
        let r1 = Region::from_conjunct(&d1, &domain);
        let r2 = Region::from_conjunct(&d2, &domain);
        let s1 = RegionSet::new(vec![r1.clone()]).selectivity(&domain);
        let union = RegionSet::new(vec![r1, r2]).selectivity(&domain);
        prop_assert!((0.0..=1.0).contains(&union));
        prop_assert!(union >= s1 - 1e-12, "union {} smaller than part {}", union, s1);
    }
}
