//! Concurrency stress for the serving front end: 8 threads hammer an
//! [`EstimatorService`] whose stages panic, emit NaN, error, and stall —
//! while a background thread hot-swaps the primary model (including
//! deliberately invalid candidates).
//!
//! The acceptance contract under all of that:
//!
//! - no panic ever escapes the service (worker threads join cleanly);
//! - every response is a finite estimate `>= 1` or a typed
//!   [`ServeError`] (`Overloaded` / `DeadlineExceeded`) — nothing else;
//! - breaker counters stay internally consistent (reclose requires a
//!   probe, a probe requires an open, skips match the typed skip errors);
//! - the hot-swap slot never serves a candidate that failed validation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qfe::core::{CardinalityEstimator, Deadline, Query, TableId};
use qfe::estimators::chain::{ChaosEstimator, EstimatorFault};
use qfe::estimators::BreakerConfig;
use qfe::serve::{
    install_quiet_panic_hook, EstimatorService, MicroBatcher, ModelSlot, ServeError, ServiceConfig,
    SharedEstimator, ShedPolicy, SwapError,
};

struct Fixed(f64);

impl CardinalityEstimator for Fixed {
    fn name(&self) -> String {
        "fixed".into()
    }
    fn estimate(&self, _q: &Query) -> f64 {
        self.0
    }
}

/// Adapter: a shared [`ModelSlot`] as an owned chaos-wrappable stage.
struct SlotStage(Arc<ModelSlot>);

impl CardinalityEstimator for SlotStage {
    fn name(&self) -> String {
        self.0.name()
    }
    fn estimate(&self, q: &Query) -> f64 {
        self.0.estimate(q)
    }
    fn try_estimate(&self, q: &Query) -> Result<qfe::core::Estimate, qfe::core::EstimateError> {
        self.0.try_estimate(q)
    }
}

struct Stalling {
    delay: Duration,
}

impl CardinalityEstimator for Stalling {
    fn name(&self) -> String {
        "stalling".into()
    }
    fn estimate(&self, _q: &Query) -> f64 {
        std::thread::sleep(self.delay);
        33.0
    }
}

fn query() -> Query {
    Query::single_table(TableId(0), vec![])
}

/// Stress volume: `(threads, requests_per_thread)`, scaled down by the
/// `QFE_SCALE` env var (`smoke` in CI keeps the wall-clock short; the
/// default exercises the full load).
fn stress_scale() -> (usize, u64) {
    match std::env::var("QFE_SCALE").as_deref() {
        Ok("smoke") => (4, 15),
        Ok("small") => (6, 30),
        _ => (8, 60),
    }
}

/// Values the swap thread successfully publishes; anything else coming
/// out of the slot stage is a validation hole.
const INITIAL: f64 = 100.0;
const REPLACEMENT: f64 = 42.0;

#[test]
fn chaos_stress_upholds_the_response_contract() {
    install_quiet_panic_hook(vec![ChaosEstimator::<Fixed>::PANIC_MSG.to_owned()]);

    let slot = Arc::new(ModelSlot::new(Arc::new(Fixed(INITIAL))));
    let stages: Vec<SharedEstimator> = vec![
        // Primary: the hot-swap slot, behind chaos that panics, NaNs, and
        // errors on 40% of calls.
        Arc::new(ChaosEstimator::new(
            SlotStage(Arc::clone(&slot)),
            vec![
                EstimatorFault::Panic,
                EstimatorFault::Nan,
                EstimatorFault::Error,
            ],
            0.4,
            7,
        )),
        // Secondary: correct but sometimes slow (8ms stalls on 30% of
        // calls, against a 40ms request budget shared fairly).
        Arc::new(
            ChaosEstimator::new(Fixed(60.0), vec![EstimatorFault::Latency], 0.3, 11)
                .with_latency(Duration::from_millis(8)),
        ),
        // Tertiary: boring and reliable.
        Arc::new(Fixed(25.0)),
    ];
    let svc = Arc::new(EstimatorService::new(
        stages,
        ServiceConfig {
            max_concurrency: 4,
            queue_capacity: 2,
            shed_policy: ShedPolicy::RejectNew,
            default_budget: Duration::from_millis(40),
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_millis(5),
                max_cooldown: Duration::from_millis(50),
            },
            floor: 1.0,
            ..ServiceConfig::default()
        },
    ));

    let (threads, per_thread) = stress_scale();
    let ok = Arc::new(AtomicU64::new(0));
    let deadline_errs = Arc::new(AtomicU64::new(0));
    let overload_errs = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let ok = Arc::clone(&ok);
            let deadline_errs = Arc::clone(&deadline_errs);
            let overload_errs = Arc::clone(&overload_errs);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    match svc.estimate_within(&query(), Deadline::within(Duration::from_millis(40)))
                    {
                        Ok(est) => {
                            assert!(
                                est.value.is_finite() && est.value >= 1.0,
                                "illegal estimate escaped the service: {est:?}"
                            );
                            if est.fallback_depth == 0 {
                                // The slot answered: only validated models
                                // may ever speak through it.
                                assert!(
                                    est.value == INITIAL || est.value == REPLACEMENT,
                                    "unvalidated model served: {est:?}"
                                );
                            }
                            // Feed the online q-error tracker; the
                            // "truth" is synthetic but finite, which is
                            // all the tracker contract needs.
                            svc.observe_truth(50.0, est.value).expect("finite pair");
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::DeadlineExceeded { .. }) => {
                            deadline_errs.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            overload_errs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Mid-stress hot swapping: invalid candidates must bounce, valid ones
    // must land, and neither may disturb in-flight requests.
    let swapper = {
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            let probe: Vec<Query> = (0..4).map(|_| query()).collect();
            let mut published = 0u64;
            for _ in 0..20 {
                let nan = slot.try_publish(Arc::new(Fixed(f64::NAN)), &probe);
                assert!(matches!(nan, Err(SwapError::ProbeFailed { .. })), "{nan:?}");
                let low = slot.try_publish(Arc::new(Fixed(0.5)), &probe);
                assert!(matches!(low, Err(SwapError::ProbeFailed { .. })), "{low:?}");
                slot.try_publish(Arc::new(Fixed(REPLACEMENT)), &probe)
                    .expect("valid candidate must publish");
                published += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            published
        })
    };

    // "No panic escapes" is literal: a panic crossing the service
    // boundary would fail these joins.
    for w in workers {
        w.join().expect("worker thread must not see a panic");
    }
    let published = swapper.join().expect("swap thread must not panic");

    // Every request is accounted for, exactly once, with a typed outcome.
    let total = (threads as u64) * per_thread;
    let (ok, deadline_errs, overload_errs) = (
        ok.load(Ordering::Relaxed),
        deadline_errs.load(Ordering::Relaxed),
        overload_errs.load(Ordering::Relaxed),
    );
    assert_eq!(ok + deadline_errs + overload_errs, total);
    assert!(ok > 0, "chaos at 40% must not starve the service entirely");

    let stats = svc.stats();
    assert_eq!(stats.answered, ok, "service counted every success");
    assert_eq!(
        stats.deadline_exceeded + stats.admission.queue_timeouts,
        deadline_errs,
        "deadline errors come from the stage loop or the queue, nowhere else"
    );
    assert_eq!(
        stats.admission.rejected + stats.admission.shed,
        overload_errs,
        "overload errors come from admission, nowhere else"
    );
    assert_eq!(stats.admission.running, 0, "all permits released");
    assert_eq!(stats.admission.queued, 0, "queue drained");

    // Breaker bookkeeping must be internally consistent per stage.
    let mut stage_hits = 0;
    for stage in &stats.stages {
        let b = &stage.breaker;
        assert!(
            b.reclosed <= b.probes && b.probes <= b.opened,
            "close needs a probe, a probe needs an open: {b:?} on {}",
            stage.name
        );
        let skip_errors = stage
            .errors
            .iter()
            .find(|(label, _)| *label == "circuit-open")
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(
            stage.skipped_open, skip_errors,
            "every breaker skip is recorded as a typed circuit-open error"
        );
        stage_hits += stage.hits;
    }
    assert_eq!(
        stage_hits + stats.floor_answers,
        stats.answered,
        "every answer came from a stage or the floor"
    );
    // The primary stage fails 40% of the time with threshold 4: the
    // breaker must have actually opened (and therefore skipped calls).
    assert!(
        stats.stages[0].breaker.opened > 0,
        "chaos must trip the primary's breaker: {:?}",
        stats.stages[0]
    );

    // The swap thread's view and the slot's view agree.
    let (published_count, rejected_count) = slot.swap_counts();
    assert_eq!(published_count, published);
    assert_eq!(rejected_count, 2 * published);
    assert_eq!(slot.generation(), published);

    // ── Metrics snapshot over the same run ─────────────────────────────
    let m = svc.metrics();
    // Every request — successes and typed errors alike — shows up in the
    // end-to-end latency histogram, with real (non-zero) latency.
    let e2e = m
        .histogram(qfe::serve::REQUEST_LATENCY_METRIC)
        .expect("end-to-end latency histogram");
    assert_eq!(e2e.count, total);
    assert!(e2e.sum_nanos > 0, "non-zero end-to-end latency");
    assert!(e2e.p99_nanos() >= e2e.p50_nanos());
    assert!(e2e.max_nanos >= e2e.p99_nanos());
    // The merged counters agree with the stats() view of the same run.
    assert_eq!(m.counter("serve.answered"), stats.answered);
    assert_eq!(m.counter("serve.floor.answers"), stats.floor_answers);
    assert_eq!(m.counter("serve.queue.admitted"), stats.admission.admitted);
    for (i, stage) in stats.stages.iter().enumerate() {
        assert_eq!(m.counter(&format!("serve.stage{i}.hits")), stage.hits);
        // Breaker transitions were recorded live at transition time; they
        // must mirror the breaker's own counters, not double them.
        assert_eq!(
            m.counter(&format!("serve.stage{i}.breaker.opened")),
            stage.breaker.opened
        );
        assert_eq!(
            m.counter(&format!("serve.stage{i}.breaker.reclosed")),
            stage.breaker.reclosed
        );
    }
    assert!(
        m.counter("serve.stage0.breaker.opened") > 0,
        "breaker transitions visible in the snapshot"
    );
    // The q-error tracker summarized the observed (truth, estimate) pairs.
    let qe = m.qerror.as_ref().expect("q-error summary after stress");
    assert!(qe.median.is_finite() && qe.median >= 1.0);
    // The JSON rendering carries the whole pipeline's metrics.
    let json = m.to_json();
    assert!(json.contains("\"serve.request.latency\""), "{json}");
    assert!(json.contains("\"qerror\":{"), "{json}");
}

#[test]
fn micro_batcher_stress_keeps_every_counter_coherent() {
    // Many threads submit singletons through the batcher; every tenth
    // submission arrives with an already-dead budget and must be
    // withdrawn before dispatch. The acceptance contract: every
    // submission is shed, expired, or dispatched (exactly once), the
    // service's batched-path counters agree with the batcher's, and the
    // batch metrics surface in both renderings of the snapshot.
    let svc = Arc::new(EstimatorService::new(
        vec![Arc::new(Fixed(77.0)) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 4,
            queue_capacity: 256,
            workers: 3,
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(2),
            default_budget: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
    ));
    let batcher = Arc::new(MicroBatcher::new(Arc::clone(&svc)));
    let (threads, per_thread) = stress_scale();
    let ok = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let batcher = Arc::clone(&batcher);
            let ok = Arc::clone(&ok);
            let expired = Arc::clone(&expired);
            std::thread::spawn(move || {
                for j in 0..per_thread {
                    if j % 10 == 9 {
                        let err = batcher
                            .submit_within(&query(), Deadline::within(Duration::ZERO))
                            .expect_err("a dead budget cannot be answered");
                        assert!(
                            matches!(
                                err,
                                ServeError::DeadlineExceeded {
                                    stages_tried: 0,
                                    admitted: false,
                                    ..
                                }
                            ),
                            "{err:?}"
                        );
                        expired.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let est = batcher.submit(&query()).expect("queue is large enough");
                        assert_eq!((est.value, est.fallback_depth), (77.0, 0));
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("submitter must not see a panic");
    }

    let total = (threads as u64) * per_thread;
    let (ok, expired) = (ok.load(Ordering::Relaxed), expired.load(Ordering::Relaxed));
    assert_eq!(ok + expired, total);

    // Batcher-side conservation: submitted = shed + expired + dispatched.
    let bs = batcher.stats();
    assert_eq!(bs.submitted, total);
    assert_eq!(bs.queued, 0, "all submitters returned, queue drained");
    assert_eq!(bs.submitted, bs.shed + bs.expired + bs.dispatched);
    assert_eq!(bs.shed, 0, "the 256-slot queue never fills at this load");
    assert_eq!(bs.expired, expired);
    assert_eq!(bs.dispatched, ok);

    // Service-side agreement: every dispatched row (and only those)
    // went through the batched path and was answered.
    let stats = svc.stats();
    assert_eq!(stats.batched_requests, bs.dispatched);
    assert_eq!(stats.answered, ok);
    assert!(
        stats.batch_drains >= 1 && stats.batch_drains <= bs.dispatched,
        "drains bounded by rows: {stats:?}"
    );

    // The snapshot carries the same numbers under the serve.batch.* names
    // and renders them in both output formats.
    let m = svc.metrics();
    assert_eq!(m.counter("serve.batch.submitted"), bs.submitted);
    assert_eq!(m.counter("serve.batch.shed"), bs.shed);
    assert_eq!(m.counter("serve.batch.expired"), bs.expired);
    assert_eq!(m.counter("serve.batch.drains"), stats.batch_drains);
    assert_eq!(m.counter("serve.batched_requests"), stats.batched_requests);
    let sizes = m
        .histogram(qfe::serve::BATCH_SIZE_METRIC)
        .expect("batch size histogram");
    assert_eq!(sizes.count, stats.batch_drains);
    assert_eq!(sizes.sum_nanos, stats.batched_requests);
    assert!(
        sizes.max_nanos <= 8,
        "no batch may exceed max_batch_size: {sizes:?}"
    );
    // Amortized end-to-end latency: one histogram entry per batched row.
    let e2e = m
        .histogram(qfe::serve::REQUEST_LATENCY_METRIC)
        .expect("e2e latency histogram");
    assert_eq!(e2e.count, stats.batched_requests);
    let json = m.to_json();
    assert!(json.contains("\"serve.batch.size\""), "{json}");
    assert!(json.contains("\"serve.batched_requests\""), "{json}");
    assert!(json.contains("\"serve.batch.drains\""), "{json}");
    let text = m.render_text();
    assert!(text.contains("serve.batch.size"), "{text}");
    assert!(text.contains("serve.batch.submitted"), "{text}");
}

#[test]
fn sustained_overload_sheds_with_typed_provenance() {
    // One slot, no queue to speak of, and a stage that holds its permit
    // for 20ms: most of the burst must be turned away, every rejection
    // typed, and the service must recover to idle afterwards.
    let svc = Arc::new(EstimatorService::new(
        vec![Arc::new(Stalling {
            delay: Duration::from_millis(20),
        }) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 1,
            queue_capacity: 1,
            shed_policy: ShedPolicy::ShedOldest,
            breaker: BreakerConfig {
                failure_threshold: u32::MAX,
                ..BreakerConfig::default()
            },
            ..ServiceConfig::default()
        },
    ));

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.estimate_within(&query(), Deadline::within(Duration::from_millis(250)))
            })
        })
        .collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic under overload"))
        .collect();

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
        .count();
    let deadline = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ServeError::DeadlineExceeded { .. })))
        .count();
    assert_eq!(ok + shed + deadline, 6, "only typed outcomes");
    assert!(ok >= 1, "the slot holder and queue survivors finish");
    for r in outcomes.iter().flatten() {
        assert_eq!(r.value, 33.0);
    }
    // Shed requests carry provenance naming the policy that shed them.
    if let Some(Err(e)) = outcomes
        .iter()
        .find(|r| matches!(r, Err(ServeError::Overloaded { .. })))
    {
        let msg = e.to_string();
        assert!(msg.contains("shed-oldest"), "{msg}");
    }
    let stats = svc.stats();
    assert_eq!(stats.admission.running, 0);
    assert_eq!(stats.admission.queued, 0);
    assert_eq!(stats.admission.shed + stats.admission.rejected, shed as u64);
}
