//! End-to-end integration of the single-table pipeline:
//! dataset → workload → labeling → featurization → training → estimation.
//! Asserts the paper's qualitative findings at test scale.

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::{q_error, ErrorSummary};
use qfe::core::{CardinalityEstimator, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::{LearnedEstimator, PostgresEstimator};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::linreg::LinearRegression;
use qfe::workload::{generate_conjunctive, generate_mixed, ConjunctiveConfig, MixedConfig};

fn forest() -> qfe::data::Database {
    generate_forest(&ForestConfig {
        rows: 8_000,
        quantitative_only: true,
        seed: 31,
    })
}

fn errors(est: &dyn CardinalityEstimator, test: &LabeledQueries) -> Vec<f64> {
    test.queries
        .iter()
        .zip(&test.cardinalities)
        .map(|(q, &c)| q_error(c, est.estimate(q)))
        .collect()
}

#[test]
fn gb_conj_beats_gb_simple_and_converges_with_data() {
    // The paper's two most robust quantitative claims at any scale:
    // (1) under the same GB model, Universal Conjunction Encoding clearly
    //     beats Singular Predicate Encoding (Figure 1);
    // (2) accuracy improves with training-set size (Table 6).
    // The full estimator comparisons against Postgres/sampling/MSCN run in
    // the experiment harness (`cargo bench --bench experiments`), where
    // the training scale matches the comparison.
    use qfe::core::featurize::SingularPredicateEncoding;
    let db = forest();
    let table = TableId(0);
    let train = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 2_500, 51)),
    );
    let test = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 400, 52)),
    );
    let space = AttributeSpace::for_table(db.catalog(), table);
    let gbdt = || {
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 80,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        }))
    };
    let mut conj = LearnedEstimator::new(
        Box::new(
            UniversalConjunctionEncoding::new(space.clone(), 24).expect("valid featurizer config"),
        ),
        gbdt(),
    );
    conj.fit(&train).unwrap();
    let mut simple = LearnedEstimator::new(
        Box::new(SingularPredicateEncoding::new(space.clone())),
        gbdt(),
    );
    simple.fit(&train).unwrap();
    let s_conj = ErrorSummary::from_errors(&errors(&conj, &test));
    let s_simple = ErrorSummary::from_errors(&errors(&simple, &test));
    assert!(
        s_conj.median < s_simple.median && s_conj.p95 < s_simple.p95,
        "conj (med {:.2}, p95 {:.2}) should beat simple (med {:.2}, p95 {:.2})",
        s_conj.median,
        s_conj.p95,
        s_simple.median,
        s_simple.p95
    );
    assert!(s_conj.median < 2.5, "GB+conj median {}", s_conj.median);

    // Convergence: a model trained on a small prefix must be clearly
    // worse on the mean than the full model.
    let (small_train, _) = train.clone().split_at(300);
    let mut starved = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 24).expect("valid featurizer config")),
        gbdt(),
    );
    starved.fit(&small_train).unwrap();
    let s_starved = ErrorSummary::from_errors(&errors(&starved, &test));
    assert!(
        s_conj.mean < s_starved.mean,
        "full training (mean {:.2}) should beat starved training (mean {:.2})",
        s_conj.mean,
        s_starved.mean
    );
}

#[test]
fn complex_encoding_handles_the_mixed_workload() {
    use qfe::core::featurize::LimitedDisjunctionEncoding;
    let db = forest();
    let table = TableId(0);
    let train = label_queries(
        &db,
        generate_mixed(db.catalog(), &MixedConfig::new(table, 2_500, 61)),
    );
    let test = label_queries(
        &db,
        generate_mixed(db.catalog(), &MixedConfig::new(table, 400, 62)),
    );
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut gb = LearnedEstimator::new(
        Box::new(LimitedDisjunctionEncoding::new(space, 24).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 80,
            ..GbdtConfig::default()
        })),
    );
    gb.fit(&train).unwrap();
    let s = ErrorSummary::from_errors(&errors(&gb, &test));
    assert!(s.median < 3.0, "GB+complex median {}", s.median);
    // Disjunctions must not be silently dropped: the estimator's error on
    // mixed queries should be in the same ballpark as the postgres
    // baseline or better at the median.
    let pg = PostgresEstimator::analyze_default(&db);
    let s_pg = ErrorSummary::from_errors(&errors(&pg, &test));
    assert!(
        s.median <= s_pg.median * 1.5,
        "GB+complex median {} vs postgres {}",
        s.median,
        s_pg.median
    );
}

#[test]
fn linear_regression_is_clearly_worse() {
    // Section 2.2: the paper dropped linear regression because its
    // estimates are "worse by a significant factor".
    let db = forest();
    let table = TableId(0);
    let train = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 2_000, 71)),
    );
    let test = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 300, 72)),
    );
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut gb = LearnedEstimator::new(
        Box::new(
            UniversalConjunctionEncoding::new(space.clone(), 24).expect("valid featurizer config"),
        ),
        Box::new(Gbdt::new(GbdtConfig::default())),
    );
    gb.fit(&train).unwrap();
    let mut lin = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 24).expect("valid featurizer config")),
        Box::new(LinearRegression::new(0)),
    );
    lin.fit(&train).unwrap();
    let gb_mean = ErrorSummary::from_errors(&errors(&gb, &test)).mean;
    let lin_mean = ErrorSummary::from_errors(&errors(&lin, &test)).mean;
    assert!(
        lin_mean > gb_mean * 1.5,
        "linreg mean {lin_mean} should be clearly worse than GB {gb_mean}"
    );
}

#[test]
fn estimates_are_always_at_least_one() {
    let db = forest();
    let table = TableId(0);
    let train = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 1_000, 81)),
    );
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut gb = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 16).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 20,
            ..GbdtConfig::default()
        })),
    );
    gb.fit(&train).unwrap();
    let probe = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 200, 82)),
    );
    for q in &probe.queries {
        assert!(gb.estimate(q) >= 1.0);
    }
}
