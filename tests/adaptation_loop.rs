//! End-to-end adaptation loop: the serving stack heals its own accuracy.
//!
//! These tests wire a real [`EstimatorService`] (learned GBDT behind a
//! [`ModelSlot`]) to an [`AdaptController`] and drive ground truth through
//! `observe_labeled`, exactly as production feedback would flow. Every
//! scenario is deterministic: seeded data, seeded workloads, and an
//! injectable auto-advancing clock instead of wall time.
//!
//! Covered arcs of the state machine:
//! - sustained drift → suspicion → confirmation → retrain → shadow accept
//!   → swap, with post-swap accuracy measurably better than no adaptation;
//! - a worse candidate bounces off shadow scoring and the live model keeps
//!   serving untouched;
//! - a post-swap regression during probation rolls back to the pinned
//!   previous generation;
//! - a panicking trainer and a chaos-stalled trainer (`SlowTrain`) are
//!   contained by `catch_unwind` and the clock budget while concurrent
//!   requests keep being answered;
//! - the conservation invariant
//!   `retrain_triggered == shadow_accepted + shadow_rejected +
//!   shadow_inconclusive + retrain_aborted` holds across mixed outcomes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{CardinalityEstimator, Deadline, Query, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::table::Database;
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::LearnedEstimator;
use qfe::ml::chaos::{ChaosRegressor, RegressorFault};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::obs::PageHinkleyConfig;
use qfe::serve::{
    install_quiet_panic_hook, AdaptConfig, AdaptController, CandidateTrainer, EstimatorService,
    FeedbackError, FeedbackSink, ModelSlot, ServiceConfig, SharedEstimator, StepReport,
};
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

const TABLE: TableId = TableId(0);
const BUDGET: Duration = Duration::from_secs(5);

/// Auto-advancing virtual clock: every read moves `step_ms` of virtual
/// time, so budget-polling loops terminate without real sleeping.
fn auto_clock(step_ms: u64) -> Arc<dyn Fn() -> Duration + Send + Sync> {
    let ticks = AtomicU64::new(0);
    Arc::new(move || {
        let t = ticks.fetch_add(1, Ordering::Relaxed);
        Duration::from_millis(t * step_ms)
    })
}

struct Constant(f64);
impl CardinalityEstimator for Constant {
    fn name(&self) -> String {
        "constant".into()
    }
    fn estimate(&self, _q: &Query) -> f64 {
        self.0
    }
}

fn fresh_learned(db: &Database, n_trees: usize) -> LearnedEstimator {
    let space = AttributeSpace::for_table(db.catalog(), TABLE);
    LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees,
            ..GbdtConfig::default()
        })),
    )
}

/// A real retraining trainer: fits a fresh GBDT on the reservoir pairs,
/// honoring the controller's budget via `fit_within`.
fn gbdt_trainer(db: Arc<Database>) -> Arc<dyn CandidateTrainer> {
    Arc::new(
        move |data: &[(Query, f64)],
              sc: &mut dyn FnMut() -> bool|
              -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            let labeled = LabeledQueries {
                queries: data.iter().map(|(q, _)| q.clone()).collect(),
                cardinalities: data.iter().map(|(_, t)| *t).collect(),
            };
            let mut model = fresh_learned(&db, 10);
            model.fit_within(&labeled, sc).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as SharedEstimator)
        },
    )
}

/// Everything one scenario needs: a service over a slot-fronted learned
/// model, a labeled seeded workload, and the database.
struct Harness {
    db: Arc<Database>,
    labeled: LabeledQueries,
    slot: Arc<ModelSlot>,
    svc: Arc<EstimatorService>,
}

fn harness() -> Harness {
    let db = Arc::new(generate_forest(&ForestConfig {
        rows: 2_000,
        quantitative_only: true,
        seed: 11,
    }));
    // Labeling drops empty-result queries, so over-generate and trim to a
    // fixed 240 so every scenario's index ranges are stable.
    let mut labeled = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 700, 23)),
    );
    assert!(
        labeled.len() >= 240,
        "workload too small: {}",
        labeled.len()
    );
    labeled.queries.truncate(240);
    labeled.cardinalities.truncate(240);
    let mut live = fresh_learned(&db, 10);
    let train = LabeledQueries {
        queries: labeled.queries[..60].to_vec(),
        cardinalities: labeled.cardinalities[..60].to_vec(),
    };
    live.fit(&train).expect("seed training");
    let slot = Arc::new(ModelSlot::new(Arc::new(live) as SharedEstimator));
    let svc = Arc::new(EstimatorService::new(
        vec![Arc::clone(&slot) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    ));
    Harness {
        db,
        labeled,
        slot,
        svc,
    }
}

fn adapt_cfg() -> AdaptConfig {
    AdaptConfig {
        // Small enough that the drifted phase fully displaces the healthy
        // pairs before retraining sees the reservoir.
        reservoir_capacity: 96,
        detector: PageHinkleyConfig {
            delta: 0.05,
            lambda: 3.0,
            min_samples: 20,
        },
        confirm_window: 10,
        cooldown: Duration::ZERO,
        train_budget: Duration::from_secs(2),
        min_train_samples: 32,
        holdout_fraction: 0.25,
        min_holdout: 8,
        shadow_z: 1.0,
        min_improvement: 0.95,
        probation_samples: 16,
        rollback_ratio: 4.0,
    }
}

/// Answer `queries[range]` through the service and feed each back with
/// `truth × drift`, as if the underlying data grew by that factor.
fn serve_and_feed(
    h: &Harness,
    range: std::ops::Range<usize>,
    drift: f64,
) -> Vec<Result<(), FeedbackError>> {
    range
        .map(|i| {
            let query = &h.labeled.queries[i];
            let est = h
                .svc
                .estimate_within(query, Deadline::within(BUDGET))
                .expect("service answers within a generous budget");
            h.svc
                .observe_labeled(query, h.labeled.cardinalities[i] * drift, est.value)
        })
        .collect()
}

/// Feed drifted chunks and step the controller until `stop` matches a
/// report (or the range is exhausted); returns every report seen.
fn drive_until(
    h: &Harness,
    ctl: &AdaptController,
    range: std::ops::Range<usize>,
    drift: f64,
    stop: impl Fn(&StepReport) -> bool,
) -> Vec<StepReport> {
    let mut reports = Vec::new();
    let (start, end) = (range.start, range.end);
    let mut i = start;
    while i < end {
        let next = (i + 10).min(end);
        for r in serve_and_feed(h, i..next, drift) {
            r.expect("drifted truths are finite and positive");
        }
        i = next;
        let report = ctl.step();
        let done = stop(&report);
        reports.push(report);
        if done {
            return reports;
        }
    }
    panic!("controller never reached the expected report; saw {reports:?}");
}

fn median_q(h: &Harness, range: std::ops::Range<usize>, drift: f64) -> f64 {
    let mut qs: Vec<f64> = range
        .map(|i| {
            let est = h
                .svc
                .estimate_within(&h.labeled.queries[i], Deadline::within(BUDGET))
                .expect("service answers");
            q_error(h.labeled.cardinalities[i] * drift, est.value)
        })
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
    qs[qs.len() / 2]
}

#[test]
fn drift_triggers_retrain_swap_and_measurably_better_accuracy() {
    let h = harness();
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        gbdt_trainer(Arc::clone(&h.db)),
        adapt_cfg(),
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    // Healthy regime: the live model scores its own training mix.
    for r in serve_and_feed(&h, 0..60, 1.0) {
        r.expect("healthy truths accepted");
    }
    assert_eq!(ctl.stats().drift_confirmed, 0, "no drift yet");
    let baseline = median_q(&h, 200..240, 64.0);

    // The world shifts: every cardinality grows 64×. The loop must
    // suspect, confirm, retrain on the drifted reservoir, win the shadow
    // comparison, and swap.
    let reports = drive_until(&h, &ctl, 60..200, 64.0, |r| {
        matches!(r, StepReport::SwapAccepted { .. })
    });
    assert!(
        reports.contains(&StepReport::Suspected),
        "suspicion precedes the swap: {reports:?}"
    );
    // Early retrains may see a reservoir still mixed with healthy pairs
    // and come back inconclusive; the loop must keep trying until a
    // candidate wins. Exactly one swap, one or more confirmed attempts.
    let stats = ctl.stats();
    assert!(stats.drift_confirmed >= 1, "{stats:?}");
    assert_eq!(stats.retrain_triggered, stats.drift_confirmed);
    assert_eq!(stats.shadow_accepted, 1);
    assert_eq!(
        stats.retrain_triggered,
        stats.shadow_accepted
            + stats.shadow_rejected
            + stats.shadow_inconclusive
            + stats.retrain_aborted,
        "conservation: {stats:?}"
    );
    assert!(h.slot.generation() >= 1, "candidate published");

    // Post-swap accuracy on held-back queries must beat the
    // no-adaptation baseline decisively.
    let healed = median_q(&h, 200..240, 64.0);
    assert!(
        healed * 4.0 < baseline,
        "adaptation must heal accuracy: median q {healed:.2} vs baseline {baseline:.2}"
    );

    // The whole loop is visible in one metrics snapshot.
    let snap = h.svc.metrics();
    assert_eq!(snap.counter("adapt.drift.confirmed"), stats.drift_confirmed);
    assert_eq!(
        snap.counter("adapt.retrain.triggered"),
        stats.retrain_triggered
    );
    assert_eq!(snap.counter("adapt.shadow.accepted"), 1);
    assert_eq!(snap.counter("slot.swap.accepted"), 1);
    assert_eq!(snap.gauge("slot.generation"), h.slot.generation());
}

#[test]
fn worse_candidate_is_rejected_and_the_live_model_keeps_serving() {
    let h = harness();
    // The "retrained" candidate is a constant, catastrophically worse
    // than the live model on drifted truths.
    let trainer: Arc<dyn CandidateTrainer> = Arc::new(
        |_data: &[(Query, f64)],
         _sc: &mut dyn FnMut() -> bool|
         -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            Ok(Arc::new(Constant(1.0)) as SharedEstimator)
        },
    );
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        trainer,
        adapt_cfg(),
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    for r in serve_and_feed(&h, 0..60, 1.0) {
        r.expect("healthy truths accepted");
    }
    let before: Vec<f64> = (200..205)
        .map(|i| {
            h.svc
                .estimate_within(&h.labeled.queries[i], Deadline::within(BUDGET))
                .expect("service answers")
                .value
        })
        .collect();

    drive_until(&h, &ctl, 60..200, 64.0, |r| {
        *r == StepReport::ShadowRejected
    });

    assert_eq!(h.slot.generation(), 0, "no swap happened");
    let after: Vec<f64> = (200..205)
        .map(|i| {
            h.svc
                .estimate_within(&h.labeled.queries[i], Deadline::within(BUDGET))
                .expect("service answers")
                .value
        })
        .collect();
    assert_eq!(before, after, "live model serves identically");
    let stats = ctl.stats();
    assert_eq!(stats.shadow_rejected, 1);
    assert_eq!(
        stats.retrain_triggered,
        stats.shadow_accepted
            + stats.shadow_rejected
            + stats.shadow_inconclusive
            + stats.retrain_aborted,
        "conservation: {stats:?}"
    );
}

#[test]
fn post_swap_regression_rolls_back_to_the_pinned_generation() {
    let h = harness();
    let cfg = AdaptConfig {
        rollback_ratio: 1.5,
        ..adapt_cfg()
    };
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        gbdt_trainer(Arc::clone(&h.db)),
        cfg,
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    for r in serve_and_feed(&h, 0..60, 1.0) {
        r.expect("healthy truths accepted");
    }
    let pre_swap: f64 = h
        .svc
        .estimate_within(&h.labeled.queries[0], Deadline::within(BUDGET))
        .expect("service answers")
        .value;
    drive_until(&h, &ctl, 60..200, 64.0, |r| {
        matches!(r, StepReport::SwapAccepted { .. })
    });
    let swapped_generation = h.slot.generation();

    // During probation the world lurches again — the fresh candidate is
    // now as wrong as the old model was, so the swap bought nothing and
    // must be undone.
    let mut rolled_back = false;
    for start in (200..240).step_by(10) {
        for r in serve_and_feed(&h, start..start + 10, 16_384.0) {
            r.expect("regressed truths are still finite");
        }
        match ctl.step() {
            StepReport::RolledBack { generation } => {
                assert_eq!(generation, swapped_generation + 1, "rollback is forward");
                rolled_back = true;
                break;
            }
            StepReport::Idle => continue,
            other => panic!("unexpected report during probation: {other:?}"),
        }
    }
    assert!(rolled_back, "probation must end in a rollback");

    // The pinned model is the exact pre-swap object: estimates match.
    let restored: f64 = h
        .svc
        .estimate_within(&h.labeled.queries[0], Deadline::within(BUDGET))
        .expect("service answers")
        .value;
    assert_eq!(restored, pre_swap, "pre-swap model restored verbatim");
    assert_eq!(h.slot.rollback_count(), 1);
    let snap = h.svc.metrics();
    assert_eq!(snap.counter("adapt.probation.rolled_back"), 1);
    assert_eq!(snap.counter("slot.swap.rolled_back"), 1);
}

#[test]
fn broken_trainers_never_interrupt_serving() {
    install_quiet_panic_hook(vec!["trainer exploded".into()]);
    let h = harness();
    // Trainer 1: panics outright. Trainer 2 (fresh controller): a chaos
    // GBDT whose SlowTrain fault stalls every fit until the clock budget
    // cuts it off. Neither may disturb the serving path.
    let panicking: Arc<dyn CandidateTrainer> = Arc::new(
        |_data: &[(Query, f64)],
         _sc: &mut dyn FnMut() -> bool|
         -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            panic!("trainer exploded")
        },
    );
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        panicking,
        adapt_cfg(),
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    // Concurrent traffic hammers the service while the trainer blows up.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let svc = Arc::clone(&h.svc);
            let queries = h.labeled.queries.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for q in queries.iter().skip(t).step_by(7).take(20) {
                        svc.estimate_within(q, Deadline::within(BUDGET))
                            .expect("serving survives trainer failures");
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    for r in serve_and_feed(&h, 0..60, 1.0) {
        r.expect("healthy truths accepted");
    }
    let reports = drive_until(&h, &ctl, 60..200, 64.0, |r| {
        *r == StepReport::RetrainAborted { panicked: true }
    });
    assert!(!reports.is_empty());

    // Round 2 on a fresh controller: the chaos-stalled trainer. The
    // virtual clock advances 10ms per read against a 100ms budget, so
    // the stall is cut off after ~10 polls — deterministically.
    let db = Arc::clone(&h.db);
    let stalling: Arc<dyn CandidateTrainer> = Arc::new(
        move |data: &[(Query, f64)],
              sc: &mut dyn FnMut() -> bool|
              -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            let labeled = LabeledQueries {
                queries: data.iter().map(|(q, _)| q.clone()).collect(),
                cardinalities: data.iter().map(|(_, t)| *t).collect(),
            };
            let space = AttributeSpace::for_table(db.catalog(), TABLE);
            let mut model = LearnedEstimator::new(
                Box::new(
                    UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config"),
                ),
                Box::new(
                    ChaosRegressor::new(
                        Gbdt::new(GbdtConfig::default()),
                        RegressorFault::SlowTrain,
                        1.0,
                        9,
                    )
                    .with_stall(Duration::from_micros(50)),
                ),
            );
            model.fit_within(&labeled, sc).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as SharedEstimator)
        },
    );
    let cfg = AdaptConfig {
        train_budget: Duration::from_millis(100),
        ..adapt_cfg()
    };
    let ctl2 = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        stalling,
        cfg,
        auto_clock(10),
    ));
    h.svc.attach_adaptation(&ctl2);
    for r in serve_and_feed(&h, 0..60, 1.0) {
        r.expect("healthy truths accepted");
    }
    drive_until(&h, &ctl2, 60..200, 64.0, |r| {
        *r == StepReport::RetrainAborted { panicked: false }
    });

    stop.store(true, Ordering::Release);
    for w in workers {
        let answered = w.join().expect("no panic escapes into traffic threads");
        assert!(answered > 0, "traffic actually flowed");
    }

    assert_eq!(h.slot.generation(), 0, "no broken candidate was published");
    for ctl in [&ctl, &ctl2] {
        let s = ctl.stats();
        assert_eq!(
            s.retrain_triggered,
            s.shadow_accepted + s.shadow_rejected + s.shadow_inconclusive + s.retrain_aborted,
            "conservation: {s:?}"
        );
    }
    let s1 = ctl.stats();
    assert_eq!((s1.retrain_aborted, s1.retrain_panicked), (1, 1));
    let s2 = ctl2.stats();
    assert_eq!((s2.retrain_aborted, s2.retrain_panicked), (1, 0));
    // Both controllers routed their events into the same service
    // recorder under the `adapt.` prefix: one panic abort + one stall
    // abort, of which exactly one was a panic.
    let snap = h.svc.metrics();
    assert_eq!(snap.counter("adapt.retrain.aborted"), 2);
    assert_eq!(snap.counter("adapt.retrain.panicked"), 1);
}

#[test]
fn garbage_truths_are_rejected_before_they_reach_the_loop() {
    let h = harness();
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        gbdt_trainer(Arc::clone(&h.db)),
        adapt_cfg(),
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    let query = &h.labeled.queries[0];
    assert_eq!(
        h.svc.observe_labeled(query, f64::NAN, 10.0),
        Err(FeedbackError::NonFiniteTruth)
    );
    assert_eq!(
        h.svc.observe_labeled(query, 0.0, 10.0),
        Err(FeedbackError::NonPositiveTruth)
    );
    assert_eq!(
        h.svc.observe_labeled(query, 10.0, f64::INFINITY),
        Err(FeedbackError::NonFiniteEstimate)
    );
    assert_eq!(
        ctl.stats().feedback_accepted,
        0,
        "nothing garbage reached the reservoir"
    );
    h.svc
        .observe_labeled(query, 10.0, 12.0)
        .expect("clean pair accepted");
    assert_eq!(ctl.stats().feedback_accepted, 1);
    assert_eq!(h.svc.metrics().counter("obs.truth.rejected"), 3);
}

#[test]
fn concurrent_feedback_racing_the_stepper_stays_coherent() {
    let h = harness();
    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&h.slot),
        gbdt_trainer(Arc::clone(&h.db)),
        adapt_cfg(),
        auto_clock(1),
    ));
    h.svc.attach_adaptation(&ctl);

    // Four threads pour drifted feedback straight into the sink while the
    // main thread steps as fast as it can — retrains race live feeds.
    let feeders: Vec<_> = (0..4)
        .map(|t| {
            let ctl = Arc::clone(&ctl);
            let labeled = LabeledQueries {
                queries: h.labeled.queries.clone(),
                cardinalities: h.labeled.cardinalities.clone(),
            };
            std::thread::spawn(move || {
                for (q, truth) in labeled
                    .queries
                    .iter()
                    .zip(labeled.cardinalities.iter())
                    .skip(t)
                    .step_by(4)
                {
                    ctl.feedback(q, truth * 64.0, truth.max(1.0));
                }
            })
        })
        .collect();
    let mut reports = Vec::new();
    for _ in 0..50 {
        reports.push(ctl.step());
    }
    for f in feeders {
        f.join().expect("feeder threads never panic");
    }
    // Quiesce: keep stepping until the controller settles.
    for _ in 0..10 {
        reports.push(ctl.step());
    }

    let s = ctl.stats();
    assert_eq!(s.feedback_accepted, 240);
    assert_eq!(
        s.retrain_triggered,
        s.shadow_accepted + s.shadow_rejected + s.shadow_inconclusive + s.retrain_aborted,
        "conservation under concurrency: {s:?}"
    );
    assert!(
        s.reservoir_len <= 96,
        "capacity bound holds under racing feeds"
    );
    // And the service still answers.
    h.svc
        .estimate_within(&h.labeled.queries[0], Deadline::within(BUDGET))
        .expect("service alive after the race");
}
