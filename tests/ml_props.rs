//! Property-based tests of the ML substrate: shape/finiteness guarantees
//! and algebraic identities of the matrix kernels, plus model-level
//! invariants (determinism, prediction bounds under the label scaler).

use proptest::prelude::*;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::matrix::Matrix;
use qfe::ml::scaling::LogScaler;
use qfe::ml::train::Regressor;

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_shapes_and_associativity_with_identity(m in arb_matrix(8, 8)) {
        // m · I = m
        let n = m.cols();
        let mut identity = Matrix::zeros(n, n);
        for i in 0..n {
            identity.set(i, i, 1.0);
        }
        let prod = m.matmul(&identity);
        prop_assert_eq!(&prod, &m);
    }

    #[test]
    fn matmul_transpose_b_agrees_with_matmul(
        (a, b) in (1usize..6, 1usize..6, 1usize..5).prop_flat_map(|(ra, rb, c)| {
            (
                prop::collection::vec(-10.0f32..10.0, ra * c)
                    .prop_map(move |d| Matrix::from_vec(ra, c, d)),
                prop::collection::vec(-10.0f32..10.0, rb * c)
                    .prop_map(move |d| Matrix::from_vec(rb, c, d)),
            )
        }),
    ) {
        // a · bᵀ computed directly vs via an explicit transpose.
        let direct = a.matmul_transpose_b(&b);
        let mut bt = Matrix::zeros(b.cols(), b.rows());
        for r in 0..b.rows() {
            for c in 0..b.cols() {
                bt.set(c, r, b.get(r, c));
            }
        }
        let explicit = a.matmul(&bt);
        prop_assert_eq!(direct.rows(), explicit.rows());
        prop_assert_eq!(direct.cols(), explicit.cols());
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn transpose_a_matmul_agrees_with_matmul(
        (a, b) in (1usize..6, 1usize..5, 1usize..5).prop_flat_map(|(r, ca, cb)| {
            (
                prop::collection::vec(-10.0f32..10.0, r * ca)
                    .prop_map(move |d| Matrix::from_vec(r, ca, d)),
                prop::collection::vec(-10.0f32..10.0, r * cb)
                    .prop_map(move |d| Matrix::from_vec(r, cb, d)),
            )
        }),
    ) {
        let direct = a.transpose_a_matmul(&b);
        let mut at = Matrix::zeros(a.cols(), a.rows());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                at.set(c, r, a.get(r, c));
            }
        }
        let explicit = at.matmul(&b);
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn scaler_round_trip_and_monotonicity(
        mut cards in prop::collection::vec(1.0f64..1e9, 2..40),
        probe in 1.0f64..1e9,
    ) {
        let scaler = LogScaler::fit(&cards).expect("valid featurizer config");
        // Round trip within the fitted range.
        cards.sort_by(f64::total_cmp);
        let (lo, hi) = (cards[0], *cards.last().unwrap());
        if probe >= lo && probe <= hi {
            let back = scaler.inverse(scaler.transform(probe));
            let rel = (back - probe).abs() / probe;
            prop_assert!(rel < 1e-2, "{} -> {}", probe, back);
        }
        // Monotone transform.
        let (a, b) = (lo, hi);
        if a < b {
            prop_assert!(scaler.transform(a) <= scaler.transform(b));
        }
        // Inverse is always >= 1 and finite.
        for y in [-1.0f32, 0.0, 0.5, 1.0, 2.0] {
            let v = scaler.inverse(y);
            prop_assert!(v >= 1.0 && v.is_finite());
        }
    }

    #[test]
    fn gbdt_predictions_are_finite_and_bounded_by_label_range(
        labels in prop::collection::vec(0.0f32..1.0, 30..80),
        probes in prop::collection::vec(-5.0f32..5.0, 1..10),
    ) {
        // One feature equal to the label index: the tree can always fit.
        let x = Matrix::from_rows(
            &(0..labels.len()).map(|i| vec![i as f32]).collect::<Vec<_>>(),
        );
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 10,
            min_samples_leaf: 2,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &labels);
        let lo = labels.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = labels.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let span = (hi - lo).max(0.1);
        for &p in &probes {
            let y = gb.predict(&[p]);
            prop_assert!(y.is_finite());
            // Trees cannot extrapolate beyond the label range (plus slack
            // for the shrinkage/base interaction).
            prop_assert!(
                y >= lo - span && y <= hi + span,
                "prediction {} outside [{}, {}] ± {}", y, lo, hi, span
            );
        }
    }
}
