//! End-to-end durability: adapted accuracy survives a process death.
//!
//! The full arc, over one simulated filesystem:
//!
//! 1. a learned GBDT serves behind a [`ModelSlot`] wired to an
//!    [`AsyncCheckpointer`] over a crash-safe [`CheckpointStore`];
//! 2. the workload drifts; the [`AdaptController`] confirms it, retrains,
//!    and swaps a better model in — which the slot checkpoints off the
//!    hot path;
//! 3. the process "dies": the in-memory filesystem tears all unsynced
//!    state, exactly as power loss would;
//! 4. [`EstimatorService::warm_restart`] recovers the newest valid
//!    checkpoint, rebuilds the model through the probe gate, and serves —
//!    with the *adapted* accuracy, not the cold baseline.
//!
//! Everything is deterministic: seeded data, seeded workloads, a virtual
//! clock for training budgets, and `MemFs` for the disk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, Featurizer, UniversalConjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{Deadline, Query, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::table::Database;
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::LearnedEstimator;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::obs::PageHinkleyConfig;
use qfe::serve::{
    AdaptConfig, AdaptController, AsyncCheckpointer, CandidateTrainer, EstimatorService,
    ModelPersister, ModelSlot, RestoreOutcome, ServiceConfig, SharedEstimator, StepReport,
};
use qfe::store::{Checkpoint, CheckpointStore, MemFs, StoreConfig, StoreFs};
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

const TABLE: TableId = TableId(0);
const BUDGET: Duration = Duration::from_secs(5);
const DRIFT: f64 = 64.0;

fn auto_clock(step_ms: u64) -> Arc<dyn Fn() -> Duration + Send + Sync> {
    let ticks = AtomicU64::new(0);
    Arc::new(move || {
        let t = ticks.fetch_add(1, Ordering::Relaxed);
        Duration::from_millis(t * step_ms)
    })
}

fn featurizer(db: &Database) -> Box<dyn Featurizer + Send + Sync> {
    let space = AttributeSpace::for_table(db.catalog(), TABLE);
    Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config"))
}

fn fresh_learned(db: &Database) -> LearnedEstimator {
    LearnedEstimator::new(
        featurizer(db),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 10,
            ..GbdtConfig::default()
        })),
    )
}

fn gbdt_trainer(db: Arc<Database>) -> Arc<dyn CandidateTrainer> {
    Arc::new(
        move |data: &[(Query, f64)],
              sc: &mut dyn FnMut() -> bool|
              -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            let labeled = LabeledQueries {
                queries: data.iter().map(|(q, _)| q.clone()).collect(),
                cardinalities: data.iter().map(|(_, t)| *t).collect(),
            };
            let mut model = fresh_learned(&db);
            model.fit_within(&labeled, sc).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as SharedEstimator)
        },
    )
}

fn open_store(mem: &Arc<MemFs>) -> Arc<CheckpointStore> {
    let mut store = CheckpointStore::open(
        Arc::clone(mem) as Arc<dyn StoreFs>,
        StoreConfig::new("/var/qfe/checkpoints"),
    )
    .expect("store opens over MemFs");
    store.set_sleeper(Arc::new(|_| {})); // no real backoff sleeps in tests
    Arc::new(store)
}

fn service_over(slot: &Arc<ModelSlot>) -> Arc<EstimatorService> {
    Arc::new(EstimatorService::new(
        vec![Arc::clone(slot) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    ))
}

fn median_q(
    svc: &EstimatorService,
    labeled: &LabeledQueries,
    range: std::ops::Range<usize>,
) -> f64 {
    let mut qs: Vec<f64> = range
        .map(|i| {
            let est = svc
                .estimate_within(&labeled.queries[i], Deadline::within(BUDGET))
                .expect("service answers");
            q_error(labeled.cardinalities[i] * DRIFT, est.value)
        })
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
    qs[qs.len() / 2]
}

#[test]
fn adapted_accuracy_survives_crash_and_warm_restart() {
    // ── Phase 0: seeded world ──────────────────────────────────────────
    let db = Arc::new(generate_forest(&ForestConfig {
        rows: 2_000,
        quantitative_only: true,
        seed: 11,
    }));
    let mut labeled = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 700, 23)),
    );
    assert!(
        labeled.len() >= 240,
        "workload too small: {}",
        labeled.len()
    );
    labeled.queries.truncate(240);
    labeled.cardinalities.truncate(240);
    let seed_slice = LabeledQueries {
        queries: labeled.queries[..60].to_vec(),
        cardinalities: labeled.cardinalities[..60].to_vec(),
    };

    // ── Phase 1: serve + adapt, checkpointing every accepted swap ──────
    let mem = Arc::new(MemFs::new());
    let store = open_store(&mem);
    let ckpt = Arc::new(AsyncCheckpointer::new(Arc::clone(&store), 8));

    let mut live = fresh_learned(&db);
    live.fit(&seed_slice).expect("seed training");
    let slot = Arc::new(ModelSlot::new(Arc::new(live) as SharedEstimator));
    slot.set_persister(Arc::clone(&ckpt) as Arc<dyn ModelPersister>);
    let svc = service_over(&slot);
    svc.attach_persistence(&ckpt);

    let ctl = Arc::new(AdaptController::with_clock(
        Arc::clone(&slot),
        gbdt_trainer(Arc::clone(&db)),
        AdaptConfig {
            reservoir_capacity: 96,
            detector: PageHinkleyConfig {
                delta: 0.05,
                lambda: 3.0,
                min_samples: 20,
            },
            confirm_window: 10,
            cooldown: Duration::ZERO,
            train_budget: Duration::from_secs(2),
            min_train_samples: 32,
            holdout_fraction: 0.25,
            min_holdout: 8,
            shadow_z: 1.0,
            min_improvement: 0.95,
            probation_samples: 16,
            rollback_ratio: 4.0,
        },
        auto_clock(1),
    ));
    svc.attach_adaptation(&ctl);

    // Healthy regime, then the drift: every truth grows 64×.
    for i in 0..60 {
        let q = &labeled.queries[i];
        let est = svc
            .estimate_within(q, Deadline::within(BUDGET))
            .expect("service answers");
        svc.observe_labeled(q, labeled.cardinalities[i], est.value)
            .expect("healthy truths accepted");
    }
    let baseline = median_q(&svc, &labeled, 200..240);

    let mut swapped = false;
    let mut i = 60;
    while i < 200 {
        let next = (i + 10).min(200);
        for j in i..next {
            let q = &labeled.queries[j];
            let est = svc
                .estimate_within(q, Deadline::within(BUDGET))
                .expect("service answers");
            svc.observe_labeled(q, labeled.cardinalities[j] * DRIFT, est.value)
                .expect("drifted truths accepted");
        }
        i = next;
        if matches!(ctl.step(), StepReport::SwapAccepted { .. }) {
            swapped = true;
            break;
        }
    }
    assert!(swapped, "drift must produce an accepted swap");
    let healed = median_q(&svc, &labeled, 200..240);
    assert!(
        healed * 4.0 < baseline,
        "adaptation must heal accuracy first: {healed:.2} vs {baseline:.2}"
    );

    // Quiesce the background writer so the accepted swap is durably on
    // "disk", then verify nothing was dropped or skipped along the way.
    ckpt.shutdown();
    let (enqueued, dropped, skipped) = ckpt.stats();
    assert!(enqueued >= 1, "the accepted swap was enqueued");
    assert_eq!((dropped, skipped), (0, 0), "no checkpoint lost in flight");
    let snap = svc.metrics();
    assert_eq!(snap.counter("persist.written"), enqueued);
    assert_eq!(snap.counter("persist.write_failed"), 0);

    // ── Phase 2: the process dies ──────────────────────────────────────
    // Power loss semantics: everything not fsynced tears. The store's
    // save protocol synced the checkpoint, so it must survive.
    mem.crash();
    drop(svc);
    drop(slot);
    drop(ctl);

    // ── Phase 3: warm restart over the same (torn) filesystem ──────────
    let store2 = open_store(&mem);
    let decode_db = Arc::clone(&db);
    let decode = move |ck: &Checkpoint| -> Option<SharedEstimator> {
        LearnedEstimator::from_snapshot(featurizer(&decode_db), &ck.model)
            .ok()
            .map(|m| Arc::new(m) as SharedEstimator)
    };
    let mut cold = fresh_learned(&db);
    cold.fit(&seed_slice).expect("cold fallback trains");
    let probe: Vec<Query> = labeled.queries[200..205].to_vec();
    let (svc2, slot2, report) = EstimatorService::warm_restart(
        &store2,
        &decode,
        Arc::new(cold) as SharedEstimator,
        &probe,
        vec![],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    )
    .expect("store directory is readable");

    assert!(
        matches!(report.outcome, RestoreOutcome::Restored(_)),
        "the durable checkpoint must restore: {report:?}"
    );
    assert!(report.recovery.conserved(), "recovery accounting conserves");
    assert_eq!(
        slot2.generation(),
        1,
        "restore is a probe-gated publication"
    );

    // The restored service serves the *adapted* model: its accuracy on
    // the held-back drifted slice matches what we measured pre-crash,
    // and decisively beats a cold restart.
    let restored = median_q(&svc2, &labeled, 200..240);
    assert!(
        (restored - healed).abs() <= healed * 1e-6,
        "warm restart must serve the adapted model byte-for-byte: \
         restored {restored:.4} vs pre-crash {healed:.4}"
    );
    assert!(
        restored * 4.0 < baseline,
        "warm restart must keep adapted accuracy, not cold baseline: \
         {restored:.2} vs {baseline:.2}"
    );

    // The whole durability loop is visible in one snapshot.
    let m = svc2.metrics();
    assert_eq!(m.counter("persist.restored"), 1);
    assert_eq!(m.counter("persist.restore_rejected"), 0);
    assert_eq!(m.gauge("slot.generation"), 1);
}

#[test]
fn warm_restart_on_virgin_disk_serves_the_cold_model() {
    let db = Arc::new(generate_forest(&ForestConfig {
        rows: 1_000,
        quantitative_only: true,
        seed: 7,
    }));
    let mut labeled = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 200, 13)),
    );
    assert!(labeled.len() >= 40, "workload too small: {}", labeled.len());
    labeled.queries.truncate(40);
    labeled.cardinalities.truncate(40);

    let mem = Arc::new(MemFs::new());
    let store = open_store(&mem);
    let mut cold = fresh_learned(&db);
    cold.fit(&labeled).expect("cold model trains");
    let decode_db = Arc::clone(&db);
    let decode = move |ck: &Checkpoint| -> Option<SharedEstimator> {
        LearnedEstimator::from_snapshot(featurizer(&decode_db), &ck.model)
            .ok()
            .map(|m| Arc::new(m) as SharedEstimator)
    };
    let probe: Vec<Query> = labeled.queries[..3].to_vec();
    let (svc, slot, report) = EstimatorService::warm_restart(
        &store,
        &decode,
        Arc::new(cold) as SharedEstimator,
        &probe,
        vec![],
        ServiceConfig::default(),
    )
    .expect("empty store is not an error");

    assert_eq!(report.outcome, RestoreOutcome::NoCheckpoint);
    assert_eq!(slot.generation(), 0, "nothing was published");
    svc.estimate_within(&labeled.queries[0], Deadline::within(BUDGET))
        .expect("cold model serves");
    assert_eq!(svc.metrics().counter("persist.restored"), 0);
}
