//! Batched execution must be *semantically invisible*: for every layer
//! that grew an `estimate_batch` fast path — [`LearnedEstimator`],
//! [`FallbackChain`], [`EstimatorService`] — a batch of N queries must
//! produce exactly the N results the singleton path produces, row for
//! row, including mixed per-row failures and deadline expiry mid-batch.
//!
//! [`LearnedEstimator`]: qfe::estimators::LearnedEstimator
//! [`FallbackChain`]: qfe::estimators::chain::FallbackChain
//! [`EstimatorService`]: qfe::serve::EstimatorService

use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::{
    AttributeDomain, CardinalityEstimator, CmpOp, ColumnId, ColumnRef, CompoundPredicate, Deadline,
    EstimateError, PredicateExpr, Query, SimplePredicate, TableId,
};
use qfe::estimators::chain::{ChaosEstimator, EstimatorFault, FallbackChain};
use qfe::estimators::labels::LabeledQueries;
use qfe::estimators::{BreakerConfig, LearnedEstimator};
use qfe::ml::linreg::LinearRegression;
use qfe::serve::{EstimatorService, ServeError, ServiceConfig, SharedEstimator};

fn space() -> AttributeSpace {
    AttributeSpace::new(vec![
        (
            ColumnRef::new(TableId(0), ColumnId(0)),
            AttributeDomain::integers(0, 19),
        ),
        (
            ColumnRef::new(TableId(0), ColumnId(1)),
            AttributeDomain::integers(0, 9),
        ),
    ])
}

fn le_query(col: usize, v: i64) -> Query {
    Query::single_table(
        TableId(0),
        vec![CompoundPredicate::conjunction(
            ColumnRef::new(TableId(0), ColumnId(col)),
            vec![SimplePredicate::new(CmpOp::Le, v)],
        )],
    )
}

/// A query with a disjunction — rejected by the conjunctive QFT.
fn or_query() -> Query {
    Query::single_table(
        TableId(0),
        vec![CompoundPredicate {
            column: ColumnRef::new(TableId(0), ColumnId(0)),
            expr: PredicateExpr::Or(vec![
                PredicateExpr::all_of(vec![SimplePredicate::new(CmpOp::Le, 3)]),
                PredicateExpr::all_of(vec![SimplePredicate::new(CmpOp::Ge, 15)]),
            ]),
        }],
    )
}

fn trained_estimator() -> LearnedEstimator {
    let featurizer = UniversalConjunctionEncoding::new(space(), 8)
        .expect("valid featurizer config")
        .with_attr_sel(true);
    let mut est = LearnedEstimator::new(Box::new(featurizer), Box::new(LinearRegression::new(0)));
    let queries: Vec<Query> = (0..40).map(|i| le_query(i % 2, (i % 20) as i64)).collect();
    let cardinalities: Vec<f64> = (0..40).map(|i| ((i % 20) + 1) as f64 * 25.0).collect();
    est.fit(&LabeledQueries {
        queries,
        cardinalities,
    })
    .expect("training a conjunctive workload must succeed");
    est
}

#[test]
fn learned_estimator_batch_equals_singleton_with_mixed_failures() {
    let est = trained_estimator();
    // Rows 1 and 4 carry disjunctions the conjunctive QFT rejects: the
    // batch must fail exactly those rows and answer the rest identically.
    let batch = vec![
        le_query(0, 7),
        or_query(),
        le_query(1, 3),
        le_query(0, 18),
        or_query(),
    ];
    let batched = est.estimate_batch(&batch);
    assert_eq!(batched.len(), batch.len());
    for (q, row) in batch.iter().zip(&batched) {
        let solo = est.try_estimate(q);
        match (row, solo) {
            (Ok(b), Ok(s)) => assert_eq!(b, &s, "batched row diverged from singleton"),
            (Err(b), Err(s)) => assert_eq!(b.kind(), s.kind(), "error kinds diverged"),
            (b, s) => panic!("outcome shape diverged: batch {b:?} vs solo {s:?}"),
        }
    }
    assert!(matches!(
        batched[1],
        Err(EstimateError::UnsupportedQuery(_))
    ));
    assert!(batched[3].is_ok());
}

#[test]
fn fallback_chain_batch_replays_the_singleton_walk() {
    // Two *identical* chains (same chaos seeds): walking queries one by
    // one through the first must be indistinguishable — results and
    // per-stage counters — from one batched walk through the second,
    // because per-row fault draws happen in the same order either way.
    let make_chain = || {
        FallbackChain::new(vec![
            Box::new(ChaosEstimator::new(
                Fixed(50.0),
                vec![EstimatorFault::Nan, EstimatorFault::Error],
                0.5,
                17,
            )) as Box<dyn CardinalityEstimator>,
            Box::new(ChaosEstimator::new(
                Fixed(8.0),
                vec![EstimatorFault::Error],
                0.3,
                23,
            )),
        ])
        .with_floor(2.0)
    };
    let queries: Vec<Query> = (0..48).map(|i| le_query(i % 2, (i % 20) as i64)).collect();

    let solo_chain = make_chain();
    let solo: Vec<_> = queries
        .iter()
        .map(|q| solo_chain.try_estimate(q).expect("chain always answers"))
        .collect();

    let batch_chain = make_chain();
    let batched: Vec<_> = batch_chain
        .estimate_batch(&queries)
        .into_iter()
        .map(|r| r.expect("chain always answers"))
        .collect();

    assert_eq!(
        solo, batched,
        "batched chain must replay the singleton walk"
    );
    assert_eq!(
        solo_chain.stage_stats(),
        batch_chain.stage_stats(),
        "per-stage accounting must match the singleton walk"
    );
    assert!(
        batched.iter().any(|e| e.fell_back()),
        "chaos at 50% must push some rows down the chain"
    );
}

struct Fixed(f64);
impl CardinalityEstimator for Fixed {
    fn name(&self) -> String {
        "fixed".into()
    }
    fn estimate(&self, _q: &Query) -> f64 {
        self.0
    }
}

/// Answers queries without predicates, NaNs the rest — a deterministic
/// per-row failure pattern for routing tests.
struct Picky(f64);
impl CardinalityEstimator for Picky {
    fn name(&self) -> String {
        "picky".into()
    }
    fn estimate(&self, q: &Query) -> f64 {
        if q.predicates.is_empty() {
            self.0
        } else {
            f64::NAN
        }
    }
}

struct Stall {
    delay: Duration,
}
impl CardinalityEstimator for Stall {
    fn name(&self) -> String {
        "stall".into()
    }
    fn estimate(&self, _q: &Query) -> f64 {
        std::thread::sleep(self.delay);
        9.0
    }
}

fn plain_query() -> Query {
    Query::single_table(TableId(0), vec![])
}

fn lenient() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 1_000_000,
        ..BreakerConfig::default()
    }
}

#[test]
fn service_batch_equals_singleton_with_per_row_routing() {
    let make_svc = || {
        EstimatorService::new(
            vec![
                Arc::new(Picky(123.0)) as SharedEstimator,
                Arc::new(Fixed(6.0)),
            ],
            ServiceConfig {
                breaker: lenient(),
                ..ServiceConfig::default()
            },
        )
    };
    let queries = vec![plain_query(), le_query(0, 4), plain_query(), le_query(1, 2)];
    let singleton = make_svc();
    let solo: Vec<_> = queries
        .iter()
        .map(|q| singleton.estimate(q).expect("always answers"))
        .collect();
    let batched_svc = make_svc();
    let batched: Vec<_> = batched_svc
        .estimate_batch(&queries)
        .into_iter()
        .map(|r| r.expect("always answers"))
        .collect();
    assert_eq!(solo, batched, "service batch must match the singleton path");
    // Routing actually mixed: depth 0 for predicate-free rows, depth 1
    // for the rows the picky stage NaN'd.
    assert_eq!(batched[0].fallback_depth, 0);
    assert_eq!(batched[1].fallback_depth, 1);
    let s1 = singleton.stats();
    let s2 = batched_svc.stats();
    assert_eq!(s1.answered, s2.answered);
    assert_eq!(s1.stages[0].hits, s2.stages[0].hits);
    assert_eq!(s1.stages[1].hits, s2.stages[1].hits);
}

#[test]
fn deadline_expiring_mid_batch_fails_only_the_unanswered_rows() {
    // Stage 0 answers predicate-free rows instantly; stage 1 stalls past
    // the budget. Rows answered at depth 0 must keep their estimates even
    // though the deadline dies while their batch-mates wait on stage 1.
    let svc = EstimatorService::new(
        vec![
            Arc::new(Picky(77.0)) as SharedEstimator,
            Arc::new(Stall {
                delay: Duration::from_secs(5),
            }),
        ],
        ServiceConfig {
            breaker: lenient(),
            ..ServiceConfig::default()
        },
    );
    let queries = vec![plain_query(), le_query(0, 3), plain_query(), le_query(1, 1)];
    let out = svc.estimate_batch_within(&queries, Deadline::within(Duration::from_millis(60)));
    assert_eq!(out.len(), 4);
    for (i, row) in out.iter().enumerate() {
        if queries[i].predicates.is_empty() {
            let est = row.as_ref().expect("depth-0 rows keep their answers");
            assert_eq!((est.value, est.fallback_depth), (77.0, 0));
        } else {
            assert!(
                matches!(
                    row,
                    Err(ServeError::DeadlineExceeded { admitted: true, .. })
                ),
                "unanswered row must fail with the deadline, got {row:?}"
            );
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.answered, 2);
    assert_eq!(stats.deadline_exceeded, 2);
    assert_eq!(stats.batched_requests, 4);
}
