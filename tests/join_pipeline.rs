//! Integration of the join pipeline: synthetic IMDB → JOB-light-shaped
//! suite → counting oracle ↔ optimizer ↔ executor consistency, plus local
//! learned models over sub-schemata.

use qfe::core::{CardinalityEstimator, Query};
use qfe::data::imdb::{generate_imdb, ImdbConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{PostgresEstimator, TrueCardinalityEstimator};
use qfe::exec::executor::execute_plan;
use qfe::exec::{true_cardinality, Optimizer};
use qfe::workload::{generate_join_workload, job_light_suite, JoinWorkloadConfig};

fn imdb() -> qfe::data::Database {
    generate_imdb(&ImdbConfig {
        titles: 3_000,
        seed: 17,
    })
}

#[test]
fn every_suite_query_counts_and_executes_consistently() {
    // The count-map oracle and the physical executor must agree on every
    // suite query, under plans from both estimator arms.
    let db = imdb();
    let suite: Vec<Query> = job_light_suite(db.catalog());
    let truth_est = TrueCardinalityEstimator::new(&db);
    let pg = PostgresEstimator::analyze_default(&db);
    for (arm, est) in [
        ("truth", &truth_est as &dyn CardinalityEstimator),
        ("postgres", &pg),
    ] {
        let optimizer = Optimizer::new(&est);
        for q in &suite {
            let oracle = true_cardinality(&db, q).unwrap();
            let plan = optimizer.optimize(q).unwrap();
            let stats = execute_plan(&db, q, &plan.plan, 50_000_000).unwrap();
            assert_eq!(
                stats.rows,
                oracle,
                "{arm} plan for {} produced {} rows, oracle says {}",
                q.to_sql(db.catalog()),
                stats.rows,
                oracle
            );
        }
    }
}

#[test]
fn generated_workload_labels_are_consistent_with_execution() {
    let db = imdb();
    let labeled = label_queries(
        &db,
        generate_join_workload(db.catalog(), &JoinWorkloadConfig::new(200, 23)),
    );
    assert!(labeled.len() > 100, "workload mostly non-empty");
    for (q, &c) in labeled.queries.iter().zip(&labeled.cardinalities) {
        assert_eq!(true_cardinality(&db, q).unwrap() as f64, c);
        assert!(c >= 1.0);
    }
}

#[test]
fn local_models_beat_postgres_on_joblight() {
    use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
    use qfe::core::metrics::{q_error, ErrorSummary};
    use qfe::estimators::LocalModelEstimator;
    use qfe::ml::gbdt::{Gbdt, GbdtConfig};

    let db = imdb();
    let train = label_queries(
        &db,
        generate_join_workload(db.catalog(), &JoinWorkloadConfig::new(3_000, 29)),
    );
    let suite = label_queries(&db, job_light_suite(db.catalog()));
    let local = LocalModelEstimator::train(
        db.catalog(),
        &train,
        15,
        &|space: AttributeSpace| {
            Box::new(UniversalConjunctionEncoding::new(space, 16).expect("valid featurizer config"))
        },
        &|| {
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 60,
                min_samples_leaf: 3,
                ..GbdtConfig::default()
            }))
        },
    )
    .unwrap();
    assert!(local.model_count() >= 8, "models: {}", local.model_count());

    let pg = PostgresEstimator::analyze_default(&db);
    let err = |est: &dyn CardinalityEstimator| {
        ErrorSummary::from_errors(
            &suite
                .queries
                .iter()
                .zip(&suite.cardinalities)
                .map(|(q, &c)| q_error(c, est.estimate(q)))
                .collect::<Vec<_>>(),
        )
    };
    let s_local = err(&local);
    let s_pg = err(&pg);
    assert!(
        s_local.median < s_pg.median,
        "local GB+conj median {} vs postgres {}",
        s_local.median,
        s_pg.median
    );
}

#[test]
fn optimizer_cost_never_below_best_arm() {
    // The plan chosen with true cardinalities must have executor work no
    // worse than (roughly) the plans chosen from misestimates — the
    // monotonic sanity behind Table 4. Allow slack for cost-model error.
    let db = imdb();
    let suite = job_light_suite(db.catalog());
    let truth_est = TrueCardinalityEstimator::new(&db);
    let pg = PostgresEstimator::analyze_default(&db);
    let work_of = |est: &dyn CardinalityEstimator| {
        let optimizer = Optimizer::new(&est);
        suite
            .iter()
            .map(|q| {
                let plan = optimizer.optimize(q).unwrap();
                execute_plan(&db, q, &plan.plan, 50_000_000).unwrap().work
            })
            .sum::<u64>()
    };
    let w_truth = work_of(&truth_est);
    let w_pg = work_of(&pg);
    assert!(
        w_truth as f64 <= w_pg as f64 * 1.10,
        "true-cardinality plans did substantially more work ({w_truth}) than PG plans ({w_pg})"
    );
}
