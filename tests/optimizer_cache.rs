//! Plan-equivalence and invalidation tests for the optimizer's sub-plan
//! estimate cache.
//!
//! The cache is an optimization, never a semantic change: with the same
//! estimator, cache-on and cache-off optimization must choose
//! bit-identical plans at bit-identical costs. And when the estimator
//! hot-swaps underneath a generation-tied cache (the serving layer's
//! `ModelSlot`), the cache must drop every pre-swap estimate — post-swap
//! plans must equal what a cache-free optimizer computes against the new
//! model.

use std::sync::Arc;

use qfe::core::estimator::CardinalityEstimator;
use qfe::core::fingerprint::QueryFingerprint;
use qfe::core::{
    CmpOp, ColumnId, ColumnRef, CompoundPredicate, JoinPredicate, Query, SimplePredicate, TableId,
};
use qfe::exec::{EstimateCache, Optimizer};
use qfe::serve::{ModelSlot, SharedEstimator};

/// Deterministic, content-sensitive estimator: the estimate is a pure
/// function of the query's semantic fingerprint, so semantically distinct
/// sub-plans get distinct cardinalities (exercising real plan choices)
/// while equal sub-plans always agree (the determinism the equivalence
/// assertions rely on).
struct Synthetic {
    scale: f64,
}

impl CardinalityEstimator for Synthetic {
    fn name(&self) -> String {
        format!("synthetic x{}", self.scale)
    }

    fn estimate(&self, query: &Query) -> f64 {
        let fp = QueryFingerprint::of(query).0;
        self.scale * (1.0 + (fp % 9973) as f64)
    }
}

fn pred(t: usize, c: usize, op: CmpOp, v: i64) -> CompoundPredicate {
    CompoundPredicate::conjunction(
        ColumnRef::new(TableId(t), ColumnId(c)),
        vec![SimplePredicate::new(op, v)],
    )
}

fn chain(n: usize, predicates: Vec<CompoundPredicate>) -> Query {
    Query {
        tables: (0..n).map(TableId).collect(),
        joins: (1..n)
            .map(|i| JoinPredicate {
                left: ColumnRef::new(TableId(i - 1), ColumnId(0)),
                right: ColumnRef::new(TableId(i), ColumnId(0)),
            })
            .collect(),
        predicates,
    }
}

/// A workload with overlapping sub-plans: repeated queries, shared
/// prefixes, and predicate reorderings of one another.
fn workload() -> Vec<Query> {
    vec![
        chain(1, vec![pred(0, 1, CmpOp::Ge, 5)]),
        chain(2, vec![pred(0, 1, CmpOp::Ge, 5)]),
        chain(3, vec![pred(0, 1, CmpOp::Ge, 5), pred(2, 1, CmpOp::Eq, 3)]),
        // Same query, predicates reordered — fingerprints collide.
        chain(3, vec![pred(2, 1, CmpOp::Eq, 3), pred(0, 1, CmpOp::Ge, 5)]),
        chain(4, vec![pred(0, 1, CmpOp::Ge, 5), pred(2, 1, CmpOp::Eq, 3)]),
        chain(4, vec![pred(1, 2, CmpOp::Lt, 40)]),
        chain(4, vec![]),
        chain(2, vec![pred(0, 1, CmpOp::Ge, 5)]),
    ]
}

#[test]
fn cached_and_uncached_optimization_choose_bit_identical_plans() {
    let est = Synthetic { scale: 3.0 };
    let uncached = Optimizer::new(&est);
    let cache = Arc::new(EstimateCache::new());
    let cached = Optimizer::new(&est).with_cache(cache.clone());

    let mut cross_hits = 0;
    for (i, q) in workload().iter().enumerate() {
        let off = uncached.optimize(q).unwrap();
        let on = cached.optimize(q).unwrap();
        assert_eq!(off.plan, on.plan, "query {i}: plans diverge");
        assert_eq!(
            off.cost.to_bits(),
            on.cost.to_bits(),
            "query {i}: costs diverge"
        );
        assert_eq!(
            off.estimated_cardinality.to_bits(),
            on.estimated_cardinality.to_bits(),
            "query {i}: cardinalities diverge"
        );
        // Per-call conservation holds for every single call.
        for s in [&off.stats, &on.stats] {
            assert_eq!(s.probes, s.call_hits + s.cross_hits + s.misses);
        }
        assert_eq!(off.stats.cross_hits, 0, "no cache installed");
        cross_hits += on.stats.cross_hits;
    }
    assert!(
        cross_hits > 0,
        "overlapping workload must hit the cross-call cache"
    );
    // Cache-level conservation across the whole workload.
    let s = cache.stats();
    assert_eq!(s.probes(), s.hits + s.misses);
    assert_eq!(s.hits, cross_hits);
}

#[test]
fn repeat_workload_is_answered_without_the_estimator() {
    let est = Synthetic { scale: 3.0 };
    let cache = Arc::new(EstimateCache::new());
    let opt = Optimizer::new(&est).with_cache(cache);
    let queries = workload();
    for q in &queries {
        opt.optimize(q).unwrap();
    }
    // Every sub-plan of the second pass is already cached.
    for q in &queries {
        let plan = opt.optimize(q).unwrap();
        assert_eq!(plan.stats.misses, 0, "second pass must be all hits");
        assert_eq!(plan.stats.hit_rate(), 1.0);
    }
}

#[test]
fn model_swap_mid_run_invalidates_and_matches_uncached_replan() {
    let model_a: SharedEstimator = Arc::new(Synthetic { scale: 2.0 });
    let model_b: SharedEstimator = Arc::new(Synthetic { scale: 1000.0 });
    let slot = Arc::new(ModelSlot::new(model_a));
    let cache = Arc::new(EstimateCache::with_generation_source(slot.clone()));

    let queries = workload();
    let probe = vec![queries[0].clone()];

    let slot_ref: &ModelSlot = &slot;
    let cached = Optimizer::new(&slot_ref).with_cache(cache.clone());
    // Warm the cache under model A.
    let before: Vec<_> = queries
        .iter()
        .map(|q| cached.optimize(q).unwrap())
        .collect();

    // Hot-swap to model B mid-run.
    slot.try_publish(model_b, &probe).expect("valid candidate");

    // Every post-swap plan must equal an uncached replan against the slot
    // (now serving B): no estimate computed under A may survive.
    let uncached = Optimizer::new(&slot_ref);
    for (i, q) in queries.iter().enumerate() {
        let on = cached.optimize(q).unwrap();
        let off = uncached.optimize(q).unwrap();
        assert_eq!(off.plan, on.plan, "query {i}: stale plan after swap");
        assert_eq!(
            off.estimated_cardinality.to_bits(),
            on.estimated_cardinality.to_bits(),
            "query {i}: stale estimate after swap"
        );
        // The models differ enough that estimates must actually change.
        assert_ne!(
            before[i].estimated_cardinality.to_bits(),
            on.estimated_cardinality.to_bits(),
            "query {i}: swap did not change the estimate"
        );
    }
    let stats = cache.stats();
    assert!(
        stats.invalidations > 0,
        "generation bump must drop pre-swap entries"
    );
}

#[test]
fn swap_between_optimize_calls_never_serves_stale_hits() {
    let model_a: SharedEstimator = Arc::new(Synthetic { scale: 2.0 });
    let slot = Arc::new(ModelSlot::new(model_a));
    let cache = Arc::new(EstimateCache::with_generation_source(slot.clone()));
    let slot_ref: &ModelSlot = &slot;
    let opt = Optimizer::new(&slot_ref).with_cache(cache.clone());

    let q = chain(3, vec![pred(0, 1, CmpOp::Ge, 5)]);
    opt.optimize(&q).unwrap();
    let warm = opt.optimize(&q).unwrap();
    assert_eq!(warm.stats.misses, 0);

    let model_b: SharedEstimator = Arc::new(Synthetic { scale: 77.0 });
    slot.try_publish(model_b, std::slice::from_ref(&q))
        .expect("valid candidate");

    // First call after the swap sees a cold cache: every probe misses.
    let cold = opt.optimize(&q).unwrap();
    assert_eq!(cold.stats.cross_hits, 0, "stale hit served after swap");
    assert_eq!(cold.stats.misses, cold.stats.probes - cold.stats.call_hits);
}
