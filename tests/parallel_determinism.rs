//! The tentpole's hard contract, end to end: training and featurizing
//! with a 1-thread pool and an 8-thread pool must produce **bit-identical**
//! artifacts — serialized GBDT bytes, MLP predictions, and the
//! featurization arena. Thread counts are pinned in-process via
//! `parallel::with_pool` (the same mechanism `QFE_THREADS` feeds); the
//! cross-process variant of this check is CI's `bench_accuracy` byte
//! diff.

use std::sync::Arc;

use qfe::core::featurize::{AttributeSpace, FeatureMatrix, UniversalConjunctionEncoding};
use qfe::core::parallel::{with_pool, ThreadPool};
use qfe::core::TableId;
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::label_queries;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::matrix::Matrix;
use qfe::ml::mlp::{Mlp, MlpConfig};
use qfe::ml::serialize::gbdt_to_bytes;
use qfe::ml::train::Regressor;
use qfe::workload::conjunctive::{generate_conjunctive_with_data, ConjunctiveConfig};

fn forest_db(rows: usize) -> qfe::data::Database {
    generate_forest(&ForestConfig {
        rows,
        quantitative_only: true,
        seed: 0xF0_4E57,
    })
}

/// Shared fixture: a featurized forest workload big enough that every
/// parallel path (row chunks, feature chunks, minibatch grad chunks)
/// actually fans out rather than falling back to its inline path.
fn fixture() -> (Matrix, Vec<f32>) {
    let db = forest_db(1500);
    let queries = generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 600, 11));
    let labeled = label_queries(&db, queries);
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    let featurizer = UniversalConjunctionEncoding::new(space, 16)
        .expect("valid featurizer config")
        .with_attr_sel(true);
    let fm = FeatureMatrix::build(&featurizer, &labeled.queries);
    assert_eq!(fm.ok_rows(), fm.rows(), "fixture queries must featurize");
    let (rows, cols, data, _) = fm.into_raw();
    let y: Vec<f32> = labeled
        .cardinalities
        .iter()
        .map(|&c| (1.0 + c).ln() as f32)
        .collect();
    (Matrix::from_vec(rows, cols, data), y)
}

fn at_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = Arc::new(ThreadPool::new(threads));
    with_pool(&pool, f)
}

#[test]
fn gbdt_bytes_identical_across_thread_counts() {
    let (x, y) = fixture();
    let train = |threads: usize| {
        at_threads(threads, || {
            let mut gb = Gbdt::new(GbdtConfig {
                n_trees: 12,
                min_samples_leaf: 3,
                max_leaves: 32,
                seed: 5,
                ..GbdtConfig::default()
            });
            gb.fit(&x, &y);
            gbdt_to_bytes(&gb)
        })
    };
    let reference = train(1);
    for threads in [2, 8] {
        assert_eq!(
            train(threads),
            reference,
            "GBDT bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn mlp_predictions_identical_across_thread_counts() {
    let (x, y) = fixture();
    let train = |threads: usize| {
        at_threads(threads, || {
            let mut nn = Mlp::new(MlpConfig {
                hidden: vec![32, 32],
                epochs: 3,
                batch_size: 128,
                learning_rate: 1e-3,
                seed: 9,
            });
            nn.fit(&x, &y);
            // Compare raw prediction bits, not just values: NaN-safe and
            // strict about the last ulp.
            nn.predict_batch(&x)
                .into_iter()
                .map(f32::to_bits)
                .collect::<Vec<u32>>()
        })
    };
    let reference = train(1);
    for threads in [2, 8] {
        assert_eq!(
            train(threads),
            reference,
            "MLP predictions diverged at {threads} threads"
        );
    }
}

#[test]
fn feature_arena_identical_across_thread_counts() {
    let db = forest_db(800);
    let queries = generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 400, 23));
    let build = |threads: usize| {
        at_threads(threads, || {
            let space = AttributeSpace::for_table(db.catalog(), TableId(0));
            let featurizer = UniversalConjunctionEncoding::new(space, 16)
                .expect("valid featurizer config")
                .with_attr_sel(true);
            let fm = FeatureMatrix::build(&featurizer, &queries);
            fm.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>()
        })
    };
    let reference = build(1);
    for threads in [2, 8] {
        assert_eq!(
            build(threads),
            reference,
            "feature arena diverged at {threads} threads"
        );
    }
}
