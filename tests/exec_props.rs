//! Property-based tests of the execution engine against brute-force
//! oracles: selection bitmaps vs row-by-row evaluation, the join-count
//! oracle vs nested loops, histogram bounds, and grouped counting.

use proptest::prelude::*;
use qfe::core::featurize::GroupedQuery;
use qfe::core::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
use qfe::core::query::{ColumnRef, JoinPredicate};
use qfe::core::{ColumnId, Query, TableId};
use qfe::data::table::{Database, ForeignKey, Table};
use qfe::data::Column;
use qfe::exec::count::{brute_force_count, grouped_cardinality};
use qfe::exec::eval::{eval_expr, row_matches};
use qfe::exec::true_cardinality;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne),
    ]
}

fn arb_expr(depth: u32) -> impl Strategy<Value = PredicateExpr> {
    let leaf = (arb_op(), -2i64..12).prop_map(|(op, v)| PredicateExpr::leaf(op, v));
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(PredicateExpr::And),
            prop::collection::vec(inner, 1..3).prop_map(PredicateExpr::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_evaluation_matches_scalar_evaluation(
        values in prop::collection::vec(0i64..10, 1..120),
        expr in arb_expr(2),
    ) {
        let column = Column::Int(values.clone());
        let bm = eval_expr(&column, &expr);
        for (row, &v) in values.iter().enumerate() {
            prop_assert_eq!(
                bm.get(row),
                expr.matches_f64(v as f64),
                "row {} value {}", row, v
            );
        }
    }

    #[test]
    fn join_count_matches_brute_force(
        dim_vals in prop::collection::vec(0i64..6, 2..12),
        fact_keys in prop::collection::vec(0i64..12, 0..25),
        sel in 0i64..6,
    ) {
        // dim has unique ids 0..n; fact references arbitrary keys (some
        // dangling). Build and compare against nested loops.
        let n = dim_vals.len();
        let dim = Table::new(
            "dim",
            vec![
                ("id".into(), Column::Int((0..n as i64).collect())),
                ("x".into(), Column::Int(dim_vals)),
            ],
        );
        let fact = Table::new(
            "fact",
            vec![("dim_id".into(), Column::Int(fact_keys))],
        );
        let db = Database::new(
            vec![dim, fact],
            &[ForeignKey {
                from: ("fact".into(), "dim_id".into()),
                to: ("dim".into(), "id".into()),
            }],
        );
        let q = Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Ge, sel)],
            )],
        };
        prop_assert_eq!(
            true_cardinality(&db, &q).unwrap(),
            brute_force_count(&db, &q).unwrap()
        );
    }

    #[test]
    fn grouped_count_matches_manual_group_set(
        a in prop::collection::vec(0i64..5, 1..80),
        threshold in 0i64..5,
    ) {
        let b: Vec<i64> = a.iter().map(|v| v * 2 % 3).collect();
        let table = Table::new(
            "t",
            vec![("a".into(), Column::Int(a.clone())), ("b".into(), Column::Int(b.clone()))],
        );
        let db = Database::new(vec![table], &[]);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Ge, threshold)],
            )],
        );
        let grouped = GroupedQuery::new(
            q.clone(),
            vec![ColumnRef::new(TableId(0), ColumnId(1))],
        );
        let counted = grouped_cardinality(&db, &grouped).unwrap();
        let mut manual = std::collections::HashSet::new();
        let t = db.table(TableId(0));
        let preds: Vec<&CompoundPredicate> = q.predicates.iter().collect();
        for (row, &group) in b.iter().enumerate() {
            if row_matches(t, &preds, row) {
                manual.insert(group);
            }
        }
        prop_assert_eq!(counted, manual.len() as u64);
    }

    #[test]
    fn histogram_selectivity_brackets_truth(
        values in prop::collection::vec(0i64..100, 20..200),
        literal in -10i64..110,
        op in arb_op(),
    ) {
        use qfe::data::histogram::EquiDepthHistogram;
        let column = Column::Int(values.clone());
        let h = EquiDepthHistogram::build(&column, 16, 8);
        let pred = SimplePredicate::new(op, literal);
        let sel = h.selectivity(&pred);
        prop_assert!((0.0..=1.0).contains(&sel), "selectivity {}", sel);
        let truth = values
            .iter()
            .filter(|&&v| pred.matches_f64(v as f64))
            .count() as f64
            / values.len() as f64;
        // Histograms are estimates: allow a generous band, but catch
        // systematic breakage.
        prop_assert!(
            (sel - truth).abs() < 0.35,
            "op {:?} literal {}: sel {} vs truth {}", op, literal, sel, truth
        );
    }
}
