//! Cross-crate pipeline tests beyond the core paper path: CSV ingestion,
//! MSCN end-to-end, grouped estimation, drift behaviour, and model
//! serialization through the facade API.

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::{q_error, ErrorSummary};
use qfe::core::{parse_single_table_query, CardinalityEstimator, TableId};
use qfe::data::csv::{parse_csv, CsvType};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::table::Database;
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::LearnedEstimator;
use qfe::exec::true_cardinality;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::{gbdt_from_bytes, gbdt_to_bytes};
use qfe::workload::{generate_conjunctive_with_data, ConjunctiveConfig};

#[test]
fn csv_ingestion_feeds_the_full_pipeline() {
    // CSV → Database → parser → oracle → featurize → train → estimate.
    let mut csv = String::from("a,b,label\n");
    for i in 0..2000 {
        let a = i % 50;
        let b = (i / 50) % 40;
        csv.push_str(&format!("{a},{b},{}\n", if a < 25 { "x" } else { "y" }));
    }
    let table = parse_csv(
        "t",
        csv.as_bytes(),
        &[CsvType::Int, CsvType::Int, CsvType::Str],
        true,
    )
    .unwrap();
    let db = Database::new(vec![table], &[]);
    let q = parse_single_table_query(db.catalog(), TableId(0), "a < 25 AND b >= 10").unwrap();
    let truth = true_cardinality(&db, &q).unwrap();
    assert_eq!(truth, 25 * 30); // a in 0..25, b in 10..40

    // Train a tiny estimator over the CSV-derived catalog.
    let train = label_queries(
        &db,
        generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 1200, 5)),
    );
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    let mut est = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 16).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 60,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        })),
    );
    est.fit(&train).unwrap();
    let e = est.estimate(&q);
    assert!(
        q_error(truth as f64, e) < 2.0,
        "csv-trained estimate {e} vs truth {truth}"
    );
}

#[test]
fn mscn_estimator_full_pipeline_on_forest() {
    use qfe::core::featurize::mscn::PredicateMode;
    use qfe::estimators::MscnEstimator;
    use qfe::ml::mscn::MscnConfig;

    let db = generate_forest(&ForestConfig {
        rows: 6_000,
        quantitative_only: true,
        seed: 77,
    });
    let train = label_queries(
        &db,
        generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 2_500, 78)),
    );
    let test = label_queries(
        &db,
        generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 400, 79)),
    );
    let mut est = MscnEstimator::new(
        db.catalog(),
        PredicateMode::PerAttribute {
            max_buckets: 16,
            attr_sel: true,
        },
        MscnConfig {
            hidden: 24,
            epochs: 40,
            batch_size: 32,
            learning_rate: 2e-3,
            seed: 5,
        },
    )
    .expect("valid featurizer config");
    est.fit(&train).unwrap();
    let errors: Vec<f64> = test
        .queries
        .iter()
        .zip(&test.cardinalities)
        .map(|(q, &c)| q_error(c, est.estimate(q)))
        .collect();
    let s = ErrorSummary::from_errors(&errors);
    assert!(s.median < 4.0, "MSCN median {}", s.median);
}

#[test]
fn drift_split_changes_output_distribution() {
    // The paper's motivation for §5.5.1: low-dimensional training queries
    // have much larger result sizes than high-dimensional test queries.
    use qfe::workload::drift::drift_split;
    let db = generate_forest(&ForestConfig {
        rows: 6_000,
        quantitative_only: true,
        seed: 80,
    });
    let labeled = label_queries(
        &db,
        generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 3_000, 81)),
    );
    let (low, high) = drift_split(&labeled.queries, 2);
    let mean = |idx: &[usize]| {
        idx.iter().map(|&i| labeled.cardinalities[i]).sum::<f64>() / idx.len().max(1) as f64
    };
    let (m_low, m_high) = (mean(&low), mean(&high));
    assert!(
        m_low > m_high * 1.5,
        "low-dim queries should have larger results: {m_low} vs {m_high}"
    );
}

#[test]
fn serialized_gbdt_survives_the_estimator_round_trip() {
    let db = generate_forest(&ForestConfig {
        rows: 4_000,
        quantitative_only: true,
        seed: 83,
    });
    let labeled: LabeledQueries = label_queries(
        &db,
        generate_conjunctive_with_data(&db, &ConjunctiveConfig::new(TableId(0), 1_500, 84)),
    );
    let space = AttributeSpace::for_table(db.catalog(), TableId(0));
    let enc = UniversalConjunctionEncoding::new(space, 16).expect("valid featurizer config");

    // Train a raw GBDT on the featurized workload.
    let mut est = LearnedEstimator::new(
        Box::new(enc.clone()),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 40,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        })),
    );
    est.fit(&labeled).unwrap();
    let x = est.featurize_matrix(&labeled.queries).unwrap();

    // Round-trip just the model through bytes and compare raw outputs.
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: 40,
        min_samples_leaf: 3,
        ..GbdtConfig::default()
    });
    use qfe::ml::scaling::LogScaler;
    use qfe::ml::train::Regressor;
    let scaler = LogScaler::fit(&labeled.cardinalities).expect("valid featurizer config");
    gb.fit(&x, &scaler.transform_batch(&labeled.cardinalities));
    let restored = gbdt_from_bytes(&gbdt_to_bytes(&gb)).unwrap();
    assert_eq!(gb.predict_batch(&x), restored.predict_batch(&x));
}
