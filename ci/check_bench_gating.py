#!/usr/bin/env python3
"""Fail if any committed BENCH_*.json is not regenerated and compared by CI.

A committed benchmark record that no job regenerates is worse than no
record: it silently goes stale and every later comparison against it is
fiction. This check closes the loop — every `BENCH_*.json` tracked by
git must appear as a `record:` entry in the bench-records matrix of
`.github/workflows/ci.yml`, whose steps regenerate it, compare it
against the committed copy via `ci/compare_bench.py`, and upload it.

Run from the repository root (CI runs it in the lint job).
"""

import pathlib
import re
import subprocess
import sys

CI_YML = pathlib.Path(".github/workflows/ci.yml")


def main():
    records = subprocess.check_output(
        ["git", "ls-files", "BENCH_*.json"], text=True
    ).split()
    if not records:
        raise SystemExit("no committed BENCH_*.json records found — wrong cwd?")
    ci = CI_YML.read_text()

    gated = set(re.findall(r"record:\s*(\S+)", ci))
    missing = [r for r in records if r not in gated]
    if missing:
        print(f"committed records not gated by any CI matrix entry: {missing}")
        print("add a bench-records matrix entry (bin + record) for each")
        raise SystemExit(1)

    # The matrix entries are only meaningful if the job actually runs the
    # bin, compares, and uploads using the matrix variables.
    for needle, why in [
        ("--bin ${{ matrix.bin }}", "bench-records must run the matrix bin"),
        (
            "ci/compare_bench.py ${{ matrix.bin }} ${{ matrix.record }}",
            "bench-records must compare against the committed record",
        ),
        ("path: ${{ matrix.record }}", "bench-records must upload the record"),
    ]:
        if needle not in ci:
            print(f"ci.yml lost its bench gating plumbing: {why}")
            raise SystemExit(1)

    for r in records:
        print(f"{r}: regenerated, compared and uploaded by bench-records")
    print("all committed bench records are CI-gated")


if __name__ == "__main__":
    main()
