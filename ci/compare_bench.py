#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against the committed copy.

Usage: compare_bench.py <bin> <record>

The benchmark binaries self-gate their hardware-independent invariants
(determinism, conservation, batched >= singleton) and exit non-zero on
violation before this script ever runs. What this script adds is the
*record-level* comparison against the committed JSON:

* every record must parse, both fresh and committed (a half-written or
  hand-edited record fails CI here, not at the next unlucky release);
* structural metrics that must not regress are gated per bin —
  generously, because CI containers vary wildly in cores and load:
    - bench_optimizer: cache hit rate is structural (recurring
      sub-plans in the suite) and must stay >= 0.90 at any scale;
    - bench_serve_net: correctness counters must be clean and fresh
      loopback throughput must be at least 10% of the committed qps —
      an order-of-magnitude collapse is a serving regression, a slow
      runner is not.

Timing fields are printed side by side for the log but never gated:
the committed record and the CI runner are different machines, and the
records carry an `environment` caveat saying exactly that.
"""

import json
import subprocess
import sys


def load_fresh(path):
    with open(path) as f:
        return json.load(f)


def load_committed(path):
    out = subprocess.check_output(["git", "show", f"HEAD:{path}"])
    return json.loads(out)


def gate_optimizer(fresh, committed):
    for name, rec in [("committed", committed), ("fresh", fresh)]:
        print(
            f"{name:>9}: scale={rec['scale']} hit_rate={rec['hit_rate']:.4f} "
            f"speedup={rec['speedup']:.2f}x"
        )
    if fresh["hit_rate"] < 0.90:
        raise SystemExit("optimizer cache hit rate regressed below 90%")


def gate_serve_net(fresh, committed):
    for name, rec in [("committed", committed), ("fresh", fresh)]:
        print(
            f"{name:>9}: scale={rec['scale']} cores={rec['cores']} "
            f"qps={rec['qps']:.0f} p50={rec['p50_micros']}us "
            f"p99={rec['p99_micros']}us"
        )
    if fresh["proto_anomalies"] != 0:
        raise SystemExit("serve-net record shows protocol anomalies")
    if fresh["estimate_errors"] != 0:
        raise SystemExit("serve-net record shows refused requests")
    if not fresh["conserved"]:
        raise SystemExit("serve-net record shows a conservation violation")
    if fresh["routed_total"] != fresh["requests"]:
        raise SystemExit("serve-net record shows lost or duplicated requests")
    if fresh["qps"] < 0.10 * committed["qps"]:
        raise SystemExit(
            f"serve-net throughput collapsed: fresh {fresh['qps']:.0f} qps "
            f"vs committed {committed['qps']:.0f} qps (floor is 10%)"
        )


def gate_generic(fresh, committed):
    # The binary already gated its invariants; here we only prove both
    # records parse and surface them for the log.
    for name, rec in [("committed", committed), ("fresh", fresh)]:
        summary = {
            k: v
            for k, v in rec.items()
            if isinstance(v, (int, float, str, bool)) and k != "environment"
        }
        print(f"{name:>9}: {summary}")


GATES = {
    "bench_optimizer": gate_optimizer,
    "bench_serve_net": gate_serve_net,
}


def main():
    if len(sys.argv) != 3:
        raise SystemExit(f"usage: {sys.argv[0]} <bin> <record>")
    bin_name, record = sys.argv[1], sys.argv[2]
    fresh = load_fresh(record)
    committed = load_committed(record)
    GATES.get(bin_name, gate_generic)(fresh, committed)
    print(f"{record}: OK")


if __name__ == "__main__":
    main()
