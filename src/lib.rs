//! # qfe — Enhanced Featurization of Queries with Mixed Combinations of Predicates
//!
//! Facade crate re-exporting the whole workspace: a reproduction of the
//! EDBT 2023 paper by Müller, Woltmann, and Lehner on query featurization
//! techniques (QFTs) for ML-based cardinality estimation.
//!
//! ## Crate map
//!
//! * [`core`] — query AST, the four QFTs, q-error metrics.
//! * [`data`] — columnar storage, statistics, synthetic dataset generators
//!   (forest-covertype-shaped and IMDB-shaped).
//! * [`exec`] — predicate/join execution for true-cardinality labeling,
//!   plus a cost-based optimizer and executor for the end-to-end
//!   experiment.
//! * [`ml`] — from-scratch ML substrate: MLP, gradient-boosted trees,
//!   MSCN, linear regression.
//! * [`estimators`] — cardinality estimators: Postgres-style independence,
//!   Bernoulli sampling, and learned local/global models.
//! * [`obs`] — pipeline observability: lock-free counters, log₂ latency
//!   histograms, metric snapshots with stable JSON, online q-error
//!   tracking.
//! * [`serve`] — deadline-aware serving front end: admission control and
//!   load shedding, per-stage circuit breakers, panic isolation, and
//!   validated hot model swap.
//! * [`store`] — durable model store: crash-safe checkpointing with
//!   atomic writes, checksum-verified recovery, and deterministic
//!   filesystem fault injection.
//! * [`workload`] — query generators: conjunctive, mixed, JOB-light-like
//!   join workloads, and drift splits.
//!
//! ## Quickstart
//!
//! ```
//! use qfe::core::featurize::{AttributeSpace, Featurizer, UniversalConjunctionEncoding};
//! use qfe::core::{CmpOp, CompoundPredicate, Query, SimplePredicate, TableId};
//! use qfe::data::forest::{ForestConfig, generate_forest};
//!
//! // A small forest-covertype-shaped dataset and its catalog.
//! let dataset = generate_forest(&ForestConfig { rows: 1_000, quantitative_only: true, seed: 7 });
//! let space = AttributeSpace::for_table(dataset.catalog(), TableId(0));
//! let qft = UniversalConjunctionEncoding::new(space, 32).expect("valid featurizer config");
//!
//! // SELECT count(*) FROM forest WHERE a0 BETWEEN 50 AND 150
//! let col = qfe::core::ColumnRef::new(TableId(0), qfe::core::ColumnId(0));
//! let query = Query::single_table(
//!     TableId(0),
//!     vec![CompoundPredicate::conjunction(
//!         col,
//!         vec![
//!             SimplePredicate::new(CmpOp::Ge, 50),
//!             SimplePredicate::new(CmpOp::Le, 150),
//!         ],
//!     )],
//! );
//! let features = qft.featurize(&query).unwrap();
//! assert_eq!(features.dim(), qft.dim());
//! ```

pub use qfe_core as core;
pub use qfe_data as data;
pub use qfe_estimators as estimators;
pub use qfe_exec as exec;
pub use qfe_ml as ml;
pub use qfe_obs as obs;
pub use qfe_serve as serve;
pub use qfe_store as store;
pub use qfe_workload as workload;
