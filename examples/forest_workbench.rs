//! Forest workbench: the single-table estimator bake-off the paper's
//! introduction motivates — correlated real-world-shaped data, many
//! predicates per attribute, and four estimator families side by side.
//!
//! ```sh
//! cargo run --release --example forest_workbench
//! ```

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::{q_error, ErrorSummary};
use qfe::core::{CardinalityEstimator, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{LearnedEstimator, PostgresEstimator, SamplingEstimator};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::mlp::{Mlp, MlpConfig};
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

fn main() {
    let db = generate_forest(&ForestConfig {
        rows: 50_000,
        quantitative_only: true,
        seed: 13,
    });
    let table = TableId(0);
    println!(
        "forest table: {} rows, {} attributes",
        db.table(table).row_count(),
        db.catalog().table(table).columns.len()
    );

    let train = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 5_000, 21)),
    );
    let test = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 1_000, 22)),
    );
    println!(
        "train {} / test {} labeled queries",
        train.len(),
        test.len()
    );

    // Learned estimators: GB + conj and NN + conj.
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut gb = LearnedEstimator::new(
        Box::new(
            UniversalConjunctionEncoding::new(space.clone(), 32).expect("valid featurizer config"),
        ),
        Box::new(Gbdt::new(GbdtConfig::default())),
    );
    gb.fit(&train).expect("GB training");
    let mut nn = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 32).expect("valid featurizer config")),
        Box::new(Mlp::new(MlpConfig {
            hidden: vec![64, 64],
            epochs: 30,
            ..MlpConfig::default()
        })),
    );
    nn.fit(&train).expect("NN training");

    // Baselines.
    let pg = PostgresEstimator::analyze_default(&db);
    let sampling = SamplingEstimator::new(&db, 0.001, 5);

    println!("\nq-error distributions over the test workload:");
    for est in [&gb as &dyn CardinalityEstimator, &nn, &pg, &sampling] {
        let errors: Vec<f64> = test
            .queries
            .iter()
            .zip(&test.cardinalities)
            .map(|(q, &c)| q_error(c, est.estimate(q)))
            .collect();
        let s = ErrorSummary::from_errors(&errors);
        println!(
            "  {:<16} median {:>7.2}  p95 {:>9.2}  p99 {:>10.2}  max {:>11.2}  ({})",
            est.name(),
            s.median,
            s.p95,
            s.p99,
            s.max,
            qfe_bytes(est.memory_bytes())
        );
    }
    println!("\n(GB + conj should dominate; sampling shows its heavy tail.)");
}

fn qfe_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} kB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}
