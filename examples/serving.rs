//! Deadline-aware serving under chaos: circuit breakers, panic isolation,
//! load shedding, and validated hot model swap.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Builds an [`EstimatorService`] over a realistic stack — a hot-swappable
//! learned GBDT, a flaky histogram stage (typed errors, NaNs, *panics*),
//! and a fallback model that sometimes stalls past the whole request
//! budget — then hammers it from four threads on a
//! per-request time budget while a background thread retrains and swaps
//! the learned model (validating candidates first, including a corrupted
//! serialized artifact that must bounce off the checksum gate).

use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::{CardinalityEstimator, Deadline, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{
    BreakerConfig, ChaosEstimator, EstimatorFault, LearnedEstimator, PostgresEstimator,
};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::serialize::gbdt_to_bytes;
use qfe::ml::train::Regressor as _;
use qfe::serve::{
    decode_validated, install_quiet_panic_hook, EstimatorService, ModelSlot, ServeError,
    ServiceConfig, SharedEstimator, ShedPolicy,
};
use qfe::workload::{generate_conjunctive, generate_mixed, ConjunctiveConfig, MixedConfig};

fn train_learned(db: &qfe::data::table::Database, n_trees: usize, seed: u64) -> LearnedEstimator {
    let table = TableId(0);
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut learned = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees,
            ..GbdtConfig::default()
        })),
    );
    let train = label_queries(
        db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(table, 300, seed)),
    );
    learned.fit(&train).expect("training");
    learned
}

fn main() {
    // Chaos-injected panics are part of the demo; keep stderr readable.
    install_quiet_panic_hook(vec![
        ChaosEstimator::<PostgresEstimator>::PANIC_MSG.to_owned()
    ]);

    let table = TableId(0);
    let db = generate_forest(&ForestConfig {
        rows: 5_000,
        quantitative_only: true,
        seed: 42,
    });
    let catalog = db.catalog();

    // ── 1. The serving stack ───────────────────────────────────────────
    // Primary: a learned model behind a hot-swap slot. Secondary: a
    // histogram estimator that errors, NaNs, and *panics* on 25 % of
    // calls. Tertiary: a cheap model that stalls 30 ms — past the whole
    // 20 ms request budget — on 40 % of calls.
    let slot = Arc::new(ModelSlot::new(Arc::new(train_learned(&db, 10, 7))));
    let stages: Vec<SharedEstimator> = vec![
        Arc::clone(&slot) as SharedEstimator,
        Arc::new(ChaosEstimator::new(
            PostgresEstimator::analyze_default(&db),
            vec![
                EstimatorFault::Error,
                EstimatorFault::Nan,
                EstimatorFault::Panic,
            ],
            0.25,
            2,
        )),
        Arc::new(
            ChaosEstimator::new(
                train_learned(&db, 3, 13),
                vec![EstimatorFault::Latency],
                0.4,
                3,
            )
            .with_latency(Duration::from_millis(30)),
        ),
    ];
    let svc = Arc::new(EstimatorService::new(
        stages,
        ServiceConfig {
            max_concurrency: 4,
            queue_capacity: 8,
            shed_policy: ShedPolicy::ShedOldest,
            default_budget: Duration::from_millis(20),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(10),
                max_cooldown: Duration::from_millis(100),
            },
            floor: 1.0,
            ..ServiceConfig::default()
        },
    ));
    println!("── serving stack ──");
    println!("stage 0: {}", slot.name());
    println!("stage 1: chaos(postgres)  25% error/NaN/panic");
    println!("stage 2: chaos(learned)   40% 30ms stalls");
    println!("budget per request: 20ms, 4-way concurrency, queue of 8\n");

    // ── 2. Validated hot swap, corrupted artifact first ────────────────
    // A retrained GBDT arrives as checksummed bytes. A bit-flipped copy
    // must be rejected before it is even constructed; the intact copy
    // decodes and validates against a probe feature matrix.
    let retrained = train_learned(&db, 30, 99);
    let mut raw_gbdt = Gbdt::new(GbdtConfig {
        n_trees: 20,
        ..GbdtConfig::default()
    });
    let labeled = label_queries(
        &db,
        generate_conjunctive(catalog, &ConjunctiveConfig::new(table, 200, 5)),
    );
    let x = retrained
        .featurize_matrix(&labeled.queries)
        .expect("featurizable probe workload");
    let y: Vec<f32> = labeled
        .cardinalities
        .iter()
        .map(|c| (*c as f32).max(1.0).ln())
        .collect();
    raw_gbdt.fit(&x, &y);
    let bytes = gbdt_to_bytes(&raw_gbdt);
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;

    println!("── artifact gate ──");
    println!(
        "corrupted bytes → {}",
        decode_validated(&corrupt, &x).expect_err("corruption must be caught")
    );
    println!(
        "intact bytes    → decoded + probe-validated ({} trees)",
        decode_validated(&bytes, &x)
            .map(|_| 20)
            .expect("round trip")
    );

    // ── 3. Four threads of traffic + a mid-flight swap ─────────────────
    // Label the serving workload up front so every answered request can
    // feed the service's online q-error tracker.
    let labeled = {
        let mut qs = generate_conjunctive(catalog, &ConjunctiveConfig::new(table, 200, 21));
        qs.extend(generate_mixed(catalog, &MixedConfig::new(table, 200, 22)));
        Arc::new(label_queries(&db, qs))
    };
    let queries = &labeled.queries;
    let probe: Vec<_> = queries.iter().take(16).cloned().collect();
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let labeled = Arc::clone(&labeled);
            std::thread::spawn(move || {
                let (mut ok, mut deadline, mut overload) = (0u64, 0u64, 0u64);
                for (q, &truth) in labeled
                    .queries
                    .iter()
                    .zip(labeled.cardinalities.iter())
                    .skip(t)
                    .step_by(4)
                {
                    match svc.estimate_within(q, Deadline::within(Duration::from_millis(20))) {
                        Ok(est) => {
                            assert!(est.value.is_finite() && est.value >= 1.0);
                            let _ = svc.observe_truth(truth, est.value);
                            ok += 1;
                        }
                        Err(ServeError::DeadlineExceeded { .. }) => deadline += 1,
                        Err(ServeError::Overloaded { .. }) => overload += 1,
                    }
                }
                (ok, deadline, overload)
            })
        })
        .collect();

    // Meanwhile: reject a NaN-spewing candidate, publish the retrained one.
    std::thread::sleep(Duration::from_millis(5));
    let bad = slot.try_publish(
        Arc::new(ChaosEstimator::new(
            train_learned(&db, 5, 1),
            vec![EstimatorFault::Nan],
            1.0,
            4,
        )),
        &probe,
    );
    println!("\n── hot swap (mid-traffic) ──");
    println!("NaN candidate  → {}", bad.expect_err("must be rejected"));
    let generation = slot
        .try_publish(Arc::new(retrained), &probe)
        .expect("retrained model passes the probe");
    println!("retrained GBDT → published as generation {generation}");

    let mut totals = (0u64, 0u64, 0u64);
    for w in workers {
        let (ok, deadline, overload) = w.join().expect("no panic escapes the service");
        totals = (totals.0 + ok, totals.1 + deadline, totals.2 + overload);
    }

    // ── 4. What the service saw ────────────────────────────────────────
    let stats = svc.stats();
    println!("\n── outcome ({} requests) ──", queries.len());
    println!(
        "answered {} (floor {}), deadline-exceeded {}, overloaded {}",
        totals.0, stats.floor_answers, totals.1, totals.2
    );
    println!(
        "admission: {} admitted, {} shed, {} rejected, {} queue timeouts",
        stats.admission.admitted,
        stats.admission.shed,
        stats.admission.rejected,
        stats.admission.queue_timeouts
    );
    println!("\n  stage                          hits  t/o  panics  skipped  breaker");
    for s in &stats.stages {
        println!(
            "  {:<30} {:>4} {:>4} {:>7} {:>8}  {:?} (opened {}, reclosed {})",
            s.name,
            s.hits,
            s.timeouts,
            s.panics,
            s.skipped_open,
            s.breaker.state,
            s.breaker.opened,
            s.breaker.reclosed
        );
    }
    let (published, rejected) = slot.swap_counts();
    println!(
        "\nmodel slot: generation {}, {} published, {} rejected — now serving {}",
        slot.generation(),
        published,
        rejected,
        slot.name()
    );

    // ── 5. The metrics snapshot ────────────────────────────────────────
    // One `MetricsSnapshot` over the whole pipeline: end-to-end and
    // per-stage latency histograms, queue depth/wait, live breaker
    // transitions, and the sliding-window q-error over the ground truth
    // the workers fed back.
    let metrics = svc.metrics();
    println!("\n── metrics snapshot ──");
    print!("{}", metrics.render_text());
    if let Ok(path) = std::env::var("QFE_METRICS_JSON") {
        let path = std::path::PathBuf::from(path);
        metrics
            .write_json_to(&path)
            .expect("metrics JSON must be writable");
        println!("\nmetrics JSON written to {}", path.display());
    }
}
