//! Durability, end to end on a real disk: adapt, checkpoint, die
//! mid-checkpoint, warm-restart with the adapted accuracy intact.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```
//!
//! The run replays the drift-recovery arc of `examples/adaptation.rs`,
//! but with the [`ModelSlot`] wired to an [`AsyncCheckpointer`] over a
//! [`CheckpointStore`] on the real filesystem. After the adapted model is
//! durably checkpointed, the run starts one more save through a
//! [`ChaosFs`] with a planted crash point, so the process leaves exactly
//! what a mid-checkpoint power loss would: a torn `.tmp` file next to a
//! valid checkpoint. A warm restart then recovers, quarantines the
//! debris, probe-validates the rebuilt model, and proves it still beats
//! the no-adaptation baseline on unseen drifted queries.
//!
//! CI drives the same binary as a *two-process* crash test:
//!
//! - `QFE_PHASE=serve` — run phase 1, then SIGKILL itself mid-checkpoint
//!   (no destructors, no flushes: a genuine kill);
//! - `QFE_PHASE=restart` — a fresh process recovers from the same
//!   `QFE_STORE_DIR` and asserts adapted accuracy survived.
//!
//! Set `QFE_PERSIST_JSON=/path/out.json` in the restart phase to dump the
//! full metrics snapshot — `persist.*`, `slot.*`, `serve.*` — as an
//! artifact.

use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, Featurizer, UniversalConjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{Deadline, Query, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::table::Database;
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::LearnedEstimator;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::obs::PageHinkleyConfig;
use qfe::serve::{
    AdaptConfig, AdaptController, AsyncCheckpointer, CandidateTrainer, EstimatorService,
    ModelPersister, ModelSlot, RestoreOutcome, ServiceConfig, SharedEstimator, StepReport,
};
use qfe::store::{
    ChaosFs, Checkpoint, CheckpointMeta, CheckpointStore, Fault, FaultPlan, RealFs, StoreConfig,
    StoreFs,
};
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

const TABLE: TableId = TableId(0);
const BUDGET: Duration = Duration::from_secs(5);
const DRIFT: f64 = 64.0;

/// The seeded world both phases independently reconstruct: database,
/// labeled workload, and the low-dimensional training slice.
fn world() -> (Arc<Database>, LabeledQueries, LabeledQueries) {
    let db = Arc::new(generate_forest(&ForestConfig {
        rows: 2_000,
        quantitative_only: true,
        seed: 11,
    }));
    let mut labeled = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 700, 23)),
    );
    assert!(
        labeled.len() >= 240,
        "workload too small: {}",
        labeled.len()
    );
    labeled.queries.truncate(240);
    labeled.cardinalities.truncate(240);
    let seed_slice = LabeledQueries {
        queries: labeled.queries[..60].to_vec(),
        cardinalities: labeled.cardinalities[..60].to_vec(),
    };
    (db, labeled, seed_slice)
}

fn featurizer(db: &Database) -> Box<dyn Featurizer + Send + Sync> {
    let space = AttributeSpace::for_table(db.catalog(), TABLE);
    Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config"))
}

fn fresh_learned(db: &Database) -> LearnedEstimator {
    LearnedEstimator::new(
        featurizer(db),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 10,
            ..GbdtConfig::default()
        })),
    )
}

fn gbdt_trainer(db: Arc<Database>) -> Arc<dyn CandidateTrainer> {
    Arc::new(
        move |data: &[(Query, f64)],
              sc: &mut dyn FnMut() -> bool|
              -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            let labeled = LabeledQueries {
                queries: data.iter().map(|(q, _)| q.clone()).collect(),
                cardinalities: data.iter().map(|(_, t)| *t).collect(),
            };
            let mut model = fresh_learned(&db);
            model.fit_within(&labeled, sc).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as SharedEstimator)
        },
    )
}

fn median_q(
    svc: &EstimatorService,
    labeled: &LabeledQueries,
    range: std::ops::Range<usize>,
) -> f64 {
    let mut qs: Vec<f64> = range
        .map(|i| {
            let est = svc
                .estimate_within(&labeled.queries[i], Deadline::within(BUDGET))
                .expect("service answers");
            q_error(labeled.cardinalities[i] * DRIFT, est.value)
        })
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
    qs[qs.len() / 2]
}

/// Phase 1: serve, drift, adapt, checkpoint — then leave a torn
/// mid-checkpoint write behind, exactly as a crash would.
fn serve_phase(dir: &std::path::Path) {
    let (db, labeled, seed_slice) = world();
    let chaos = Arc::new(ChaosFs::new(
        Arc::new(RealFs) as Arc<dyn StoreFs>,
        FaultPlan::new(),
    ));
    let store = Arc::new(
        CheckpointStore::open(
            Arc::clone(&chaos) as Arc<dyn StoreFs>,
            StoreConfig::new(dir),
        )
        .expect("store opens"),
    );
    let ckpt = Arc::new(AsyncCheckpointer::new(Arc::clone(&store), 8));

    let mut live = fresh_learned(&db);
    live.fit(&seed_slice).expect("seed training");
    let slot = Arc::new(ModelSlot::new(Arc::new(live) as SharedEstimator));
    slot.set_persister(Arc::clone(&ckpt) as Arc<dyn ModelPersister>);
    let svc = Arc::new(EstimatorService::new(
        vec![Arc::clone(&slot) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    ));
    svc.attach_persistence(&ckpt);
    let ctl = Arc::new(AdaptController::new(
        Arc::clone(&slot),
        gbdt_trainer(Arc::clone(&db)),
        AdaptConfig {
            reservoir_capacity: 96,
            detector: PageHinkleyConfig {
                delta: 0.05,
                lambda: 3.0,
                min_samples: 20,
            },
            confirm_window: 10,
            cooldown: Duration::ZERO,
            train_budget: Duration::from_secs(2),
            min_train_samples: 32,
            holdout_fraction: 0.25,
            min_holdout: 8,
            shadow_z: 1.0,
            min_improvement: 0.95,
            probation_samples: 16,
            rollback_ratio: 4.0,
        },
    ));
    svc.attach_adaptation(&ctl);

    // Healthy regime, then drift: every cardinality grows 64×.
    for i in 0..60 {
        let q = &labeled.queries[i];
        let est = svc
            .estimate_within(q, Deadline::within(BUDGET))
            .expect("service answers");
        svc.observe_labeled(q, labeled.cardinalities[i], est.value)
            .expect("healthy truths accepted");
    }
    let baseline = median_q(&svc, &labeled, 200..240);
    println!("baseline (no adaptation) median q-error: {baseline:.2}");

    let mut swapped = false;
    let mut i = 60;
    while i < 200 {
        let next = (i + 10).min(200);
        for j in i..next {
            let q = &labeled.queries[j];
            let est = svc
                .estimate_within(q, Deadline::within(BUDGET))
                .expect("service answers");
            svc.observe_labeled(q, labeled.cardinalities[j] * DRIFT, est.value)
                .expect("drifted truths accepted");
        }
        i = next;
        if let StepReport::SwapAccepted { generation } = ctl.step() {
            println!("adapted model swapped in as slot generation {generation}");
            swapped = true;
            break;
        }
    }
    assert!(swapped, "drift must produce an accepted swap");
    let healed = median_q(&svc, &labeled, 200..240);
    println!("adapted median q-error: {healed:.2} (baseline {baseline:.2})");
    assert!(healed < baseline, "adaptation must help before the crash");

    // Quiesce the writer: the adapted checkpoint is now durable on disk.
    ckpt.shutdown();
    let snap = svc.metrics();
    assert!(snap.counter("persist.written") >= 1, "checkpoint landed");
    assert_eq!(snap.counter("persist.write_failed"), 0);

    // Now die mid-checkpoint: plant a crash point two filesystem ops into
    // the *next* save — the tmp file is written and synced, but the
    // atomic rename never happens. This is the torn state recovery must
    // cope with.
    chaos.plant(chaos.ops_seen() + 2, Fault::CrashPoint);
    let doomed = store.save(
        &CheckpointMeta {
            kind: "doomed".into(),
            note: "in flight at crash".into(),
            ..CheckpointMeta::default()
        },
        vec![0xEE; 4096],
    );
    assert!(doomed.is_err(), "the crash point cuts the save off");
    println!("mid-checkpoint crash injected: torn tmp file left on disk");
}

/// Phase 2: a fresh process recovers from the same directory.
fn restart_phase(dir: &std::path::Path) {
    let (db, labeled, seed_slice) = world();
    let store = Arc::new(
        CheckpointStore::open(Arc::new(RealFs) as Arc<dyn StoreFs>, StoreConfig::new(dir))
            .expect("store reopens"),
    );
    let decode_db = Arc::clone(&db);
    let decode = move |ck: &Checkpoint| -> Option<SharedEstimator> {
        LearnedEstimator::from_snapshot(featurizer(&decode_db), &ck.model)
            .ok()
            .map(|m| Arc::new(m) as SharedEstimator)
    };
    // The cold fallback is what a restart *without* a store would serve:
    // the model trained before the drift.
    let mut cold = fresh_learned(&db);
    cold.fit(&seed_slice).expect("cold fallback trains");
    let probe: Vec<Query> = labeled.queries[200..205].to_vec();
    let (svc, slot, report) = EstimatorService::warm_restart(
        &store,
        &decode,
        Arc::new(cold) as SharedEstimator,
        &probe,
        vec![],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    )
    .expect("store directory is readable");

    println!(
        "recovery: {} scanned, {} valid, {} quarantined, {} tmp debris, outcome {:?}",
        report.recovery.scanned,
        report.recovery.valid,
        report.recovery.quarantined,
        report.recovery.tmp_debris,
        report.outcome
    );
    assert!(
        matches!(report.outcome, RestoreOutcome::Restored(_)),
        "the durable checkpoint must restore: {report:?}"
    );
    assert!(report.recovery.conserved(), "recovery accounting conserves");
    assert!(
        report.recovery.tmp_debris >= 1,
        "the torn mid-checkpoint write must have been found and set aside"
    );
    assert_eq!(slot.generation(), 1, "restore is a probe-gated publication");

    // The verdict: the restored generation serves with *adapted*
    // accuracy, decisively better than the cold baseline it replaced.
    let cold_baseline = {
        let mut again = fresh_learned(&db);
        again.fit(&seed_slice).expect("baseline trains");
        let cold_slot = Arc::new(ModelSlot::new(Arc::new(again) as SharedEstimator));
        let cold_svc = EstimatorService::new(
            vec![Arc::clone(&cold_slot) as SharedEstimator],
            ServiceConfig::default(),
        );
        median_q(&cold_svc, &labeled, 200..240)
    };
    let restored = median_q(&svc, &labeled, 200..240);
    println!(
        "median q-error on unseen drifted queries: cold restart {cold_baseline:.2} \
         → warm restart {restored:.2}"
    );
    assert!(
        restored < cold_baseline,
        "warm restart must keep adapted accuracy: {restored:.2} vs cold {cold_baseline:.2}"
    );

    let metrics = svc.metrics();
    assert!(metrics.counter("persist.restored") >= 1);
    if let Ok(path) = std::env::var("QFE_PERSIST_JSON") {
        let path = std::path::PathBuf::from(path);
        metrics
            .write_json_to(&path)
            .expect("metrics JSON must be writable");
        println!("persist metrics JSON written to {}", path.display());
    } else {
        print!("\n── metrics snapshot ──\n{}", metrics.render_text());
    }
    println!("\nwarm restart kept the adapted model through the crash ✓");
}

/// SIGKILL this process — no destructors, no flushes, no atexit. The
/// closest a test can get to power loss without pulling a plug.
fn kill_self() -> ! {
    #[cfg(unix)]
    {
        let pid = std::process::id().to_string();
        let _ = std::process::Command::new("kill")
            .args(["-9", &pid])
            .status();
        // If `kill` somehow failed, fall through to abort below.
    }
    std::process::abort();
}

fn main() {
    let dir = std::env::var("QFE_STORE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/persistence-demo"));
    let phase = std::env::var("QFE_PHASE").unwrap_or_else(|_| "all".into());
    match phase.as_str() {
        "serve" => {
            let _ = std::fs::remove_dir_all(&dir);
            serve_phase(&dir);
            println!("dying mid-checkpoint (SIGKILL)…");
            kill_self();
        }
        "restart" => restart_phase(&dir),
        "all" => {
            let _ = std::fs::remove_dir_all(&dir);
            serve_phase(&dir);
            println!("(single-process run: skipping the SIGKILL, restarting in place)\n");
            restart_phase(&dir);
        }
        other => panic!("unknown QFE_PHASE {other:?} (expected serve|restart|all)"),
    }
}
