//! Mixed queries end-to-end: the paper's Section 3.3 scenario on a
//! TPC-H-like `orders` table — disjunctions over dates, a categorical
//! status with dictionary-encoded strings, and a price range.
//!
//! ```sh
//! cargo run --release --example mixed_queries
//! ```

use qfe::core::featurize::{AttributeSpace, Featurizer, LimitedDisjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{
    CardinalityEstimator, CmpOp, ColumnRef, CompoundPredicate, PredicateExpr, Query, TableId,
};
use qfe::data::table::{Database, Table};
use qfe::data::{Column, Dictionary};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{LearnedEstimator, PostgresEstimator};
use qfe::exec::true_cardinality;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::workload::{generate_mixed, MixedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a TPC-H-flavoured orders table: order date (days since
/// 1992-01-01), status in {F, O, P}, total price.
fn orders_table(rows: usize) -> (Database, Dictionary) {
    let mut rng = StdRng::seed_from_u64(7);
    let dict = Dictionary::from_values(vec!["F".into(), "O".into(), "P".into()]);
    let mut dates = Vec::with_capacity(rows);
    let mut statuses = Vec::with_capacity(rows);
    let mut prices = Vec::with_capacity(rows);
    for _ in 0..rows {
        let date = rng.gen_range(0..2556i64); // seven years of days
        dates.push(date);
        // Status correlates with date: old orders are finished.
        let status = if date < 1200 {
            "F"
        } else if rng.gen_bool(0.8) {
            "O"
        } else {
            "P"
        };
        statuses.push(dict.code(status).unwrap());
        prices.push(rng.gen_range(900.0..250_000.0f64));
    }
    let table = Table::new(
        "orders",
        vec![
            ("o_orderdate".into(), Column::Int(dates)),
            (
                "o_orderstatus".into(),
                Column::Dict {
                    codes: statuses,
                    dict: dict.clone(),
                },
            ),
            ("o_totalprice".into(), Column::Float(prices)),
        ],
    );
    (Database::new(vec![table], &[]), dict)
}

fn main() {
    let (db, dict) = orders_table(100_000);
    let t = TableId(0);
    let catalog = db.catalog();
    let orderdate = ColumnRef::new(t, qfe::core::ColumnId(0));
    let orderstatus = ColumnRef::new(t, qfe::core::ColumnId(1));
    let totalprice = ColumnRef::new(t, qfe::core::ColumnId(2));

    // The paper's example query (Section 3.3), with dates as day numbers:
    // orders from year 2 or year 4, each with one excluded day, status P
    // or F, price in (1000, 2000).
    let year = |y: i64| (y * 365, y * 365 + 364);
    let (y2_lo, y2_hi) = year(2);
    let (y4_lo, y4_hi) = year(4);
    let status = |s: &str| PredicateExpr::leaf(CmpOp::Eq, dict.code(s).unwrap() as i64);
    let query = Query::single_table(
        t,
        vec![
            CompoundPredicate {
                column: orderdate,
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::And(vec![
                        PredicateExpr::leaf(CmpOp::Ge, y2_lo),
                        PredicateExpr::leaf(CmpOp::Le, y2_hi),
                        PredicateExpr::leaf(CmpOp::Ne, y2_lo + 185),
                    ]),
                    PredicateExpr::And(vec![
                        PredicateExpr::leaf(CmpOp::Ge, y4_lo),
                        PredicateExpr::leaf(CmpOp::Le, y4_hi),
                        PredicateExpr::leaf(CmpOp::Ne, y4_lo + 185),
                    ]),
                ]),
            },
            CompoundPredicate {
                column: orderstatus,
                expr: PredicateExpr::Or(vec![status("P"), status("F")]),
            },
            CompoundPredicate {
                column: totalprice,
                expr: PredicateExpr::And(vec![
                    PredicateExpr::leaf(CmpOp::Gt, 1000.0),
                    PredicateExpr::leaf(CmpOp::Lt, 2000.0),
                ]),
            },
        ],
    );
    println!("query: {}", query.to_sql(catalog));
    let truth = true_cardinality(&db, &query).unwrap();
    println!("true cardinality: {truth}");

    // Train GB + Limited Disjunction Encoding on a mixed workload.
    println!("\ntraining GB + complex on a mixed workload…");
    let workload = generate_mixed(catalog, &MixedConfig::new(t, 4_000, 11));
    let labeled = label_queries(&db, workload);
    println!("labeled {} non-empty training queries", labeled.len());
    let space = AttributeSpace::for_table(catalog, t);
    let qft = LimitedDisjunctionEncoding::new(space, 48).expect("valid featurizer config");
    println!("feature vector dimension: {}", qft.dim());
    let mut learned =
        LearnedEstimator::new(Box::new(qft), Box::new(Gbdt::new(GbdtConfig::default())));
    learned.fit(&labeled).expect("training succeeds");

    // Compare against the Postgres-style baseline on the example query and
    // on a mixed test workload.
    let pg = PostgresEstimator::analyze_default(&db);
    let e_learned = learned.estimate(&query);
    let e_pg = pg.estimate(&query);
    println!("\nexample query:");
    println!(
        "  {:<14} estimate {:>10.0}  q-error {:>8.2}",
        learned.name(),
        e_learned,
        q_error(truth as f64, e_learned)
    );
    println!(
        "  {:<14} estimate {:>10.0}  q-error {:>8.2}",
        pg.name(),
        e_pg,
        q_error(truth as f64, e_pg)
    );

    let test = label_queries(&db, generate_mixed(catalog, &MixedConfig::new(t, 500, 77)));
    let mut sum_learned = 0.0;
    let mut sum_pg = 0.0;
    for (q, &c) in test.queries.iter().zip(&test.cardinalities) {
        sum_learned += q_error(c, learned.estimate(q));
        sum_pg += q_error(c, pg.estimate(q));
    }
    let n = test.len() as f64;
    println!("\nmixed test workload ({} queries):", test.len());
    println!(
        "  mean q-error {:<14} {:>8.2}",
        learned.name(),
        sum_learned / n
    );
    println!("  mean q-error {:<14} {:>8.2}", pg.name(), sum_pg / n);
}
