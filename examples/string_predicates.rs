//! String predicates via order-preserving dictionaries (paper Section 6).
//!
//! "Universal Conjunction Encoding and Limited Disjunction Encoding
//! naturally support the encoding of such predicates" — a sorted
//! dictionary turns equality, range, and `LIKE 'prefix%'` predicates into
//! numeric code ranges, which the bucketized QFTs featurize natively.
//!
//! ```sh
//! cargo run --release --example string_predicates
//! ```

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{
    parse_single_table_query, CardinalityEstimator, CmpOp, ColumnRef, CompoundPredicate, Query,
    SimplePredicate, TableId,
};
use qfe::data::table::{Database, Table};
use qfe::data::{Column, Dictionary};
use qfe::estimators::labels::label_queries;
use qfe::estimators::LearnedEstimator;
use qfe::exec::true_cardinality;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A products table with a string category column.
    let categories = [
        "appliance",
        "apparel",
        "audio",
        "book",
        "bicycle",
        "camera",
        "chair",
        "desk",
        "display",
        "garden",
        "game",
        "keyboard",
        "lamp",
        "laptop",
        "phone",
        "printer",
        "router",
        "sofa",
        "speaker",
        "tablet",
    ];
    let mut rng = StdRng::seed_from_u64(21);
    let mut names = Vec::with_capacity(50_000);
    let mut prices = Vec::with_capacity(50_000);
    for _ in 0..50_000 {
        // Zipf-ish category popularity.
        let idx = (categories.len() as f64 * rng.gen::<f64>().powf(2.0)) as usize;
        names.push(categories[idx.min(categories.len() - 1)].to_owned());
        prices.push(rng.gen_range(1..2000i64));
    }
    let dict = Dictionary::from_values(names.clone());
    let codes: Vec<u32> = names.iter().map(|n| dict.code(n).unwrap()).collect();
    let db = Database::new(
        vec![Table::new(
            "products",
            vec![
                (
                    "category".into(),
                    Column::Dict {
                        codes,
                        dict: dict.clone(),
                    },
                ),
                ("price".into(), Column::Int(prices)),
            ],
        )],
        &[],
    );
    let table = TableId(0);
    let category = ColumnRef::new(table, qfe::core::ColumnId(0));

    // Train GB + conj on random category-code ranges × price ranges.
    println!("training GB + conj on dictionary-encoded string ranges…");
    let mut queries = Vec::new();
    let max_code = dict.len() as i64 - 1;
    for _ in 0..4000 {
        let a = rng.gen_range(0..=max_code);
        let b = rng.gen_range(0..=max_code);
        let p = rng.gen_range(1..2000i64);
        let q = rng.gen_range(1..2000i64);
        queries.push(Query::single_table(
            table,
            vec![
                CompoundPredicate::conjunction(
                    category,
                    vec![
                        SimplePredicate::new(CmpOp::Ge, a.min(b)),
                        SimplePredicate::new(CmpOp::Le, a.max(b)),
                    ],
                ),
                CompoundPredicate::conjunction(
                    ColumnRef::new(table, qfe::core::ColumnId(1)),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, p.min(q)),
                        SimplePredicate::new(CmpOp::Le, p.max(q)),
                    ],
                ),
            ],
        ));
    }
    let labeled = label_queries(&db, queries);
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut est = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 32).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig::default())),
    );
    est.fit(&labeled).expect("training");

    // 1. An equality predicate written as a string, via the parser + the
    //    dictionary.
    let parsed =
        parse_single_table_query(db.catalog(), table, "category = 'laptop' AND price <= 500")
            .expect("parses");
    let encoded = Query::single_table(
        table,
        parsed
            .predicates
            .iter()
            .map(|cp| {
                let dnf = cp.expr.to_dnf().unwrap();
                let preds: Vec<SimplePredicate> = dnf[0]
                    .iter()
                    .map(|p| dict.encode_predicate(p).expect("in dictionary"))
                    .collect();
                CompoundPredicate::conjunction(cp.column, preds)
            })
            .collect(),
    );
    let truth = true_cardinality(&db, &encoded).unwrap();
    let estimate = est.estimate(&encoded);
    println!(
        "category = 'laptop' AND price <= 500 → truth {truth}, estimate {estimate:.0} \
         (q-error {:.2})",
        q_error(truth as f64, estimate)
    );

    // 2. Prefix predicates LIKE 'p%' become code ranges.
    for prefix in ["a", "ap", "la", "s", "z"] {
        let expr = dict.prefix_expr(prefix);
        let q = Query::single_table(
            table,
            vec![CompoundPredicate {
                column: category,
                expr,
            }],
        );
        let truth = true_cardinality(&db, &q).unwrap();
        let estimate = est.estimate(&q);
        println!(
            "category LIKE '{prefix}%' → truth {truth:>6}, estimate {estimate:>9.0}  \
             (q-error {:.2})",
            q_error(truth as f64, estimate)
        );
    }

    // 3. String ranges: category between 'b' and 'd'.
    let lo = dict
        .encode_predicate(&SimplePredicate::new(CmpOp::Ge, "b"))
        .unwrap();
    let hi = dict
        .encode_predicate(&SimplePredicate::new(CmpOp::Lt, "e"))
        .unwrap();
    let q = Query::single_table(
        table,
        vec![CompoundPredicate::conjunction(category, vec![lo, hi])],
    );
    let truth = true_cardinality(&db, &q).unwrap();
    let estimate = est.estimate(&q);
    println!(
        "category >= 'b' AND category < 'e' → truth {truth}, estimate {estimate:.0} \
         (q-error {:.2})",
        q_error(truth as f64, estimate)
    );
}
