//! Join pipeline: synthetic IMDB → JOB-light-shaped suite → local learned
//! models → cost-based optimizer → executed plans.
//!
//! Shows the full production path the paper targets: a learned estimator
//! plugged into an optimizer, with measured plan quality against the
//! Postgres-style baseline and true cardinalities.
//!
//! ```sh
//! cargo run --release --example joblight_pipeline
//! ```

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::ErrorSummary;
use qfe::core::CardinalityEstimator;
use qfe::data::imdb::{generate_imdb, ImdbConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{LocalModelEstimator, PostgresEstimator, TrueCardinalityEstimator};
use qfe::exec::executor::execute_plan;
use qfe::exec::Optimizer;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::workload::{generate_join_workload, job_light_suite, JoinWorkloadConfig};

fn main() {
    // 1. Data + workloads.
    let db = generate_imdb(&ImdbConfig {
        titles: 10_000,
        seed: 3,
    });
    println!(
        "IMDB-shaped database: {} tables, {} FK edges",
        db.tables().len(),
        db.catalog().fk_edges().len()
    );
    let train = label_queries(
        &db,
        generate_join_workload(db.catalog(), &JoinWorkloadConfig::new(4_000, 9)),
    );
    let suite = label_queries(&db, job_light_suite(db.catalog()));
    println!(
        "training queries: {}   JOB-light suite: {} queries",
        train.len(),
        suite.len()
    );

    // 2. Local GB + conj models, one per sub-schema.
    let local = LocalModelEstimator::train(
        db.catalog(),
        &train,
        20,
        &|space: AttributeSpace| {
            Box::new(UniversalConjunctionEncoding::new(space, 32).expect("valid featurizer config"))
        },
        &|| Box::new(Gbdt::new(GbdtConfig::default())),
    )
    .expect("local training");
    println!("trained {} local models", local.model_count());

    // 3. Suite accuracy vs the Postgres-style baseline.
    let pg = PostgresEstimator::analyze_default(&db);
    let q_local: Vec<f64> = suite
        .queries
        .iter()
        .zip(&suite.cardinalities)
        .map(|(q, &c)| qfe::core::metrics::q_error(c, local.estimate(q)))
        .collect();
    let q_pg: Vec<f64> = suite
        .queries
        .iter()
        .zip(&suite.cardinalities)
        .map(|(q, &c)| qfe::core::metrics::q_error(c, pg.estimate(q)))
        .collect();
    println!("\nJOB-light q-errors:");
    println!(
        "  GB+conj (local): {}",
        ErrorSummary::from_errors(&q_local).table_row()
    );
    println!(
        "  postgres:        {}",
        ErrorSummary::from_errors(&q_pg).table_row()
    );

    // 4. Optimize + execute every suite query under each estimator.
    let truth = TrueCardinalityEstimator::new(&db);
    for (name, est) in [
        ("postgres", &pg as &dyn CardinalityEstimator),
        ("GB+conj (local)", &local),
        ("true cards", &truth),
    ] {
        let optimizer = Optimizer::new(&est);
        let mut secs = 0.0;
        let mut work = 0u64;
        for q in &suite.queries {
            let plan = optimizer.optimize(q).expect("optimizable");
            let stats = execute_plan(&db, q, &plan.plan, 100_000_000).expect("executes");
            secs += stats.elapsed.as_secs_f64();
            work += stats.work;
        }
        println!("plans from {name:<16} total exec {secs:>7.3}s, executor work {work}");
    }
}
