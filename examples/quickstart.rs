//! Quickstart: featurize queries with all four QFTs and train a learned
//! cardinality estimator on a synthetic forest table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qfe::core::featurize::{
    AttributeSpace, Featurizer, LimitedDisjunctionEncoding, RangePredicateEncoding,
    SingularPredicateEncoding, UniversalConjunctionEncoding,
};
use qfe::core::metrics::q_error;
use qfe::core::{
    CardinalityEstimator, CmpOp, ColumnId, ColumnRef, CompoundPredicate, PredicateExpr, Query,
    SimplePredicate, TableId,
};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::LearnedEstimator;
use qfe::exec::true_cardinality;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

fn main() {
    // 1. A forest-covertype-shaped table (10 quantitative attributes +
    //    cover_type) and its catalog.
    let db = generate_forest(&ForestConfig {
        rows: 20_000,
        quantitative_only: true,
        seed: 42,
    });
    let table = TableId(0);
    let catalog = db.catalog();
    println!(
        "dataset: {} rows × {} columns",
        db.table(table).row_count(),
        catalog.table(table).columns.len()
    );

    // 2. A count query with several predicates per attribute:
    //    SELECT count(*) FROM forest
    //    WHERE elevation >= 2500 AND elevation <= 3000 AND elevation <> 2750
    //      AND (slope <= 10 OR slope >= 40)
    let elevation = ColumnRef::new(table, ColumnId(0));
    let slope = ColumnRef::new(table, ColumnId(2));
    let query = Query::single_table(
        table,
        vec![
            CompoundPredicate::conjunction(
                elevation,
                vec![
                    SimplePredicate::new(CmpOp::Ge, 2500),
                    SimplePredicate::new(CmpOp::Le, 3000),
                    SimplePredicate::new(CmpOp::Ne, 2750),
                ],
            ),
            CompoundPredicate {
                column: slope,
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Le, 10),
                    PredicateExpr::leaf(CmpOp::Ge, 40),
                ]),
            },
        ],
    );
    println!("\nquery: {}", query.to_sql(catalog));
    let truth = true_cardinality(&db, &query).unwrap();
    println!("true cardinality: {truth}");

    // 3. Featurize it with each QFT. Only Limited Disjunction Encoding
    //    supports the OR on `slope`; the others report why they cannot.
    let space = AttributeSpace::for_table(catalog, table);
    let qfts: Vec<Box<dyn Featurizer>> = vec![
        Box::new(SingularPredicateEncoding::new(space.clone())),
        Box::new(RangePredicateEncoding::new(space.clone())),
        Box::new(
            UniversalConjunctionEncoding::new(space.clone(), 32).expect("valid featurizer config"),
        ),
        Box::new(
            LimitedDisjunctionEncoding::new(space.clone(), 32).expect("valid featurizer config"),
        ),
    ];
    println!();
    for qft in &qfts {
        match qft.featurize(&query) {
            Ok(vec) => println!("{:<12} → {} feature entries", qft.name(), vec.dim()),
            Err(e) => println!("{:<12} → unsupported: {e}", qft.name()),
        }
    }

    // 4. Train GB + Limited Disjunction Encoding on a generated workload
    //    and estimate the query.
    println!("\ntraining GB + complex on 3000 conjunctive queries…");
    let workload = generate_conjunctive(catalog, &ConjunctiveConfig::new(table, 3_000, 7));
    let labeled = label_queries(&db, workload);
    let mut estimator = LearnedEstimator::new(
        Box::new(LimitedDisjunctionEncoding::new(space, 32).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig::default())),
    );
    estimator.fit(&labeled).expect("training succeeds");
    let estimate = estimator.estimate(&query);
    println!(
        "estimate: {estimate:.0} (truth {truth}, q-error {:.2})",
        q_error(truth as f64, estimate)
    );
}
