//! Fault-tolerant estimation: typed errors, the fallback chain, and
//! deterministic fault injection.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Walks the robustness surface end to end: a learned estimator that
//! classifies its failures instead of silently answering `1.0`, a
//! [`FallbackChain`] that degrades learned → histogram → sampling → floor
//! with per-stage observability, chaos injection that makes stages fail
//! deterministically, and the checksummed model serialization that
//! rejects corrupted bytes with a typed error.

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::{
    CardinalityEstimator, CmpOp, ColumnId, ColumnRef, CompoundPredicate, PredicateExpr, Query,
    SimplePredicate, TableId,
};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::estimators::labels::label_queries;
use qfe::estimators::{
    ChaosEstimator, EstimatorFault, FallbackChain, LearnedEstimator, PostgresEstimator,
    SamplingEstimator,
};
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::ml::matrix::Matrix;
use qfe::ml::serialize::{gbdt_from_bytes, gbdt_to_bytes};
use qfe::ml::train::Regressor;
use qfe::workload::{generate_conjunctive, generate_mixed, ConjunctiveConfig, MixedConfig};

fn main() {
    let table = TableId(0);
    let db = generate_forest(&ForestConfig {
        rows: 5_000,
        quantitative_only: true,
        seed: 42,
    });
    let catalog = db.catalog();

    // ── 1. Typed failure classification ────────────────────────────────
    let space = AttributeSpace::for_table(catalog, table);
    let mut learned = LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 30,
            ..GbdtConfig::default()
        })),
    );
    let probe = Query::single_table(
        table,
        vec![CompoundPredicate::conjunction(
            ColumnRef::new(table, ColumnId(0)),
            vec![SimplePredicate::new(CmpOp::Ge, 100)],
        )],
    );
    println!("── typed errors ──");
    println!(
        "untrained try_estimate  → {:?}",
        learned.try_estimate(&probe).unwrap_err()
    );

    let train = label_queries(
        &db,
        generate_conjunctive(catalog, &ConjunctiveConfig::new(table, 400, 7)),
    );
    learned.fit(&train).expect("training");
    let est = learned.try_estimate(&probe).expect("trained estimate");
    println!(
        "trained  try_estimate  → {:.1} rows from {:?} (fallback depth {})",
        est.value, est.estimator, est.fallback_depth
    );
    let disjunction = Query::single_table(
        table,
        vec![CompoundPredicate {
            column: ColumnRef::new(table, ColumnId(0)),
            expr: PredicateExpr::Or(vec![
                PredicateExpr::leaf(CmpOp::Eq, 10),
                PredicateExpr::leaf(CmpOp::Eq, 20),
            ]),
        }],
    );
    println!(
        "unsupported (OR) query → {:?}",
        learned.try_estimate(&disjunction).unwrap_err()
    );
    println!(
        "infallible estimate()  → {} (counted fallbacks: {})",
        learned.estimate(&disjunction),
        learned.fallback_count()
    );

    // ── 2. The fallback chain under chaos ──────────────────────────────
    // Every stage is wrapped in a seeded fault injector: 30 % of calls
    // fail with a typed error, a NaN, or garbage. The chain's guarantee —
    // always finite, always >= 1, never a panic — must hold anyway.
    let faults = vec![
        EstimatorFault::Error,
        EstimatorFault::Nan,
        EstimatorFault::Garbage,
    ];
    let chain = FallbackChain::new(vec![
        Box::new(ChaosEstimator::new(&learned, faults.clone(), 0.3, 1)),
        Box::new(ChaosEstimator::new(
            PostgresEstimator::analyze_default(&db),
            faults.clone(),
            0.3,
            2,
        )),
        Box::new(ChaosEstimator::new(
            SamplingEstimator::new(&db, 0.05, 7),
            faults,
            0.3,
            3,
        )),
    ]);
    println!("\n── fallback chain under 30 % chaos ──");
    println!("chain: {}", chain.name());
    let mut queries = generate_conjunctive(catalog, &ConjunctiveConfig::new(table, 100, 99));
    queries.extend(generate_mixed(catalog, &MixedConfig::new(table, 100, 100)));
    for q in &queries {
        let e = chain.try_estimate(q).expect("the chain is total");
        assert!(e.value.is_finite() && e.value >= 1.0, "guarantee broken");
    }
    println!(
        "{} queries estimated; stage hits {:?} (last = constant floor)",
        queries.len(),
        chain.stage_hits()
    );
    println!("stage failures by class:");
    for (label, count) in chain.error_counts() {
        if count > 0 {
            println!("  {label:<17} {count}");
        }
    }

    // ── 3. Corrupt model bytes are rejected, not mis-parsed ────────────
    println!("\n── checksummed serialization ──");
    let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![(i % 13) as f32]).collect();
    let y: Vec<f32> = rows.iter().map(|r| r[0] * 2.0).collect();
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: 3,
        ..GbdtConfig::default()
    });
    gb.try_fit(&Matrix::from_rows(&rows), &y)
        .expect("clean fit");
    let bytes = gbdt_to_bytes(&gb);
    println!(
        "{} model bytes round-trip: {}",
        bytes.len(),
        gbdt_from_bytes(&bytes).is_ok()
    );
    let mut corrupt = bytes.clone();
    corrupt[bytes.len() / 2] ^= 0x04; // single bit flip in the payload
    println!(
        "single bit flipped     → {:?}",
        gbdt_from_bytes(&corrupt).unwrap_err()
    );
    println!(
        "truncated to 10 bytes  → {:?}",
        gbdt_from_bytes(&bytes[..10]).unwrap_err()
    );

    // ── 4. Divergent training aborts without poisoning the model ───────
    println!("\n── fail-fast training ──");
    let bad_y = vec![f32::MAX; rows.len()];
    let err = gb.try_fit(&Matrix::from_rows(&rows), &bad_y).unwrap_err();
    println!("divergent labels       → {err:?}");
    println!(
        "model unpoisoned: still {} trees, still decodes old bytes: {}",
        gb.tree_count(),
        gbdt_from_bytes(&bytes).is_ok()
    );
}
