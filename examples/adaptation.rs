//! Drift recovery, end to end: the serving stack detects workload drift,
//! retrains itself, and swaps in a better model — with rollback armed.
//!
//! ```sh
//! cargo run --release --example adaptation
//! ```
//!
//! The drift is the paper's own (Section 5.5.1): a model trained on
//! low-dimensional queries (at most two distinct attributes) is suddenly
//! served high-dimensional queries (three or more). An
//! [`AdaptController`] watches ground-truth feedback through the
//! [`EstimatorService`], confirms the drift with Page-Hinkley hysteresis,
//! retrains a candidate GBDT on the accumulated feedback reservoir under
//! a wall-clock budget, shadow-scores it against the live model on a
//! held-out slice, and publishes it through the probe-gated
//! [`ModelSlot`] — then holds it on probation, ready to roll back.
//!
//! The run *asserts* its own success criteria (at least one accepted
//! swap; post-swap median q-error on unseen drifted queries better than
//! the no-adaptation baseline), so CI can use it as a drift-recovery
//! smoke test. Set `QFE_ADAPT_JSON=/path/out.json` to dump the full
//! metrics snapshot — `adapt.*`, `slot.*`, `serve.*` — as an artifact.

use std::sync::Arc;
use std::time::Duration;

use qfe::core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe::core::metrics::q_error;
use qfe::core::{Deadline, Query, TableId};
use qfe::data::forest::{generate_forest, ForestConfig};
use qfe::data::table::Database;
use qfe::estimators::labels::{label_queries, LabeledQueries};
use qfe::estimators::LearnedEstimator;
use qfe::ml::gbdt::{Gbdt, GbdtConfig};
use qfe::obs::PageHinkleyConfig;
use qfe::serve::{
    AdaptConfig, AdaptController, CandidateTrainer, EstimatorService, ModelSlot, ServiceConfig,
    SharedEstimator, StepReport,
};
use qfe::workload::drift::drift_split;
use qfe::workload::{generate_conjunctive, ConjunctiveConfig};

const TABLE: TableId = TableId(0);
const BUDGET: Duration = Duration::from_secs(5);

fn fresh_learned(db: &Database) -> LearnedEstimator {
    let space = AttributeSpace::for_table(db.catalog(), TABLE);
    LearnedEstimator::new(
        Box::new(UniversalConjunctionEncoding::new(space, 8).expect("valid featurizer config")),
        Box::new(Gbdt::new(GbdtConfig {
            n_trees: 20,
            ..GbdtConfig::default()
        })),
    )
}

fn select(labeled: &LabeledQueries, idx: &[usize]) -> LabeledQueries {
    LabeledQueries {
        queries: idx.iter().map(|&i| labeled.queries[i].clone()).collect(),
        cardinalities: idx.iter().map(|&i| labeled.cardinalities[i]).collect(),
    }
}

fn median(mut qs: Vec<f64>) -> f64 {
    qs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
    qs[qs.len() / 2]
}

fn median_q(svc: &EstimatorService, slice: &LabeledQueries) -> f64 {
    median(
        slice
            .queries
            .iter()
            .zip(slice.cardinalities.iter())
            .map(|(q, &truth)| {
                let est = svc
                    .estimate_within(q, Deadline::within(BUDGET))
                    .expect("service answers within a generous budget");
                q_error(truth, est.value)
            })
            .collect(),
    )
}

fn main() {
    // ── 1. Data, workload, and the paper's query-drift split ───────────
    let db = Arc::new(generate_forest(&ForestConfig {
        rows: 5_000,
        quantitative_only: true,
        seed: 42,
    }));
    let labeled = label_queries(
        &db,
        generate_conjunctive(db.catalog(), &ConjunctiveConfig::new(TABLE, 1_500, 31)),
    );
    let (low_idx, high_idx) = drift_split(&labeled.queries, 2);
    let low = select(&labeled, &low_idx);
    let high = select(&labeled, &high_idx);
    // The drifted stream feeds the controller; a held-back slice measures
    // accuracy before and after, untouched by retraining.
    let stream_len = high.len() * 3 / 4;
    let (stream, eval) = {
        let (s, e) = (
            select(&high, &(0..stream_len).collect::<Vec<_>>()),
            select(&high, &(stream_len..high.len()).collect::<Vec<_>>()),
        );
        (s, e)
    };
    println!("── workload drift (paper §5.5.1) ──");
    println!(
        "{} low-dim queries (≤2 attrs) train the live model; {} high-dim \
         queries (≥3 attrs) arrive as the drifted stream, {} held back for eval\n",
        low.len(),
        stream.len(),
        eval.len()
    );

    // ── 2. Live model + service + adaptation controller ────────────────
    let mut live = fresh_learned(&db);
    live.fit(&low).expect("seed training on low-dim queries");
    let slot = Arc::new(ModelSlot::new(Arc::new(live) as SharedEstimator));
    let svc = Arc::new(EstimatorService::new(
        vec![Arc::clone(&slot) as SharedEstimator],
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 64,
            default_budget: BUDGET,
            ..ServiceConfig::default()
        },
    ));
    let trainer_db = Arc::clone(&db);
    let trainer: Arc<dyn CandidateTrainer> = Arc::new(
        move |data: &[(Query, f64)],
              sc: &mut dyn FnMut() -> bool|
              -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
            let pairs = LabeledQueries {
                queries: data.iter().map(|(q, _)| q.clone()).collect(),
                cardinalities: data.iter().map(|(_, t)| *t).collect(),
            };
            let mut model = fresh_learned(&trainer_db);
            model.fit_within(&pairs, sc).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as SharedEstimator)
        },
    );
    let ctl = Arc::new(AdaptController::new(
        Arc::clone(&slot),
        trainer,
        AdaptConfig {
            // Small enough that the drifted stream displaces the healthy
            // pairs before retraining reads the reservoir; a candidate
            // trained on stale low-dim pairs can only tie the live model.
            reservoir_capacity: 256,
            detector: PageHinkleyConfig {
                delta: 0.05,
                lambda: 3.0,
                min_samples: 30,
            },
            confirm_window: 25,
            cooldown: Duration::ZERO,
            train_budget: Duration::from_secs(2),
            min_train_samples: 48,
            holdout_fraction: 0.25,
            min_holdout: 12,
            shadow_z: 1.0,
            min_improvement: 0.98,
            probation_samples: 64,
            rollback_ratio: 4.0,
        },
    ));
    svc.attach_adaptation(&ctl);

    // ── 3. Baseline: how bad is the drift without adaptation? ──────────
    let baseline = median_q(&svc, &eval);
    println!("── baseline (no adaptation) ──");
    println!("median q-error on unseen drifted queries: {baseline:.2}\n");

    // ── 4. Replay: healthy regime, then the drifted stream ─────────────
    // Every answered request feeds its ground truth back; the controller
    // steps every 20 observations, exactly as a background cadence would.
    let mut swaps = 0u64;
    let mut feed = |slice: &LabeledQueries, label: &str| {
        for (i, (q, &truth)) in slice
            .queries
            .iter()
            .zip(slice.cardinalities.iter())
            .enumerate()
        {
            let est = svc
                .estimate_within(q, Deadline::within(BUDGET))
                .expect("service answers");
            svc.observe_labeled(q, truth, est.value)
                .expect("labeled truths are sane");
            if (i + 1) % 20 == 0 {
                match ctl.step() {
                    StepReport::Idle => {}
                    StepReport::SwapAccepted { generation } => {
                        swaps += 1;
                        println!("[{label}] candidate swapped in as generation {generation}");
                    }
                    report => println!("[{label}] {report:?}"),
                }
            }
        }
    };
    feed(&low, "healthy");
    feed(&stream, "drifted");

    // ── 5. Verdict ─────────────────────────────────────────────────────
    let healed = median_q(&svc, &eval);
    let stats = ctl.stats();
    println!("\n── adaptation outcome ──");
    println!(
        "drift: {} suspected, {} confirmed, {} false alarms",
        stats.drift_suspected, stats.drift_confirmed, stats.drift_false_alarm
    );
    println!(
        "retrain: {} triggered, {} aborted; shadow: {} accepted, {} rejected, {} inconclusive",
        stats.retrain_triggered,
        stats.retrain_aborted,
        stats.shadow_accepted,
        stats.shadow_rejected,
        stats.shadow_inconclusive
    );
    println!(
        "probation: {} passed, {} rolled back; slot generation {}",
        stats.probation_passed,
        stats.probation_rolled_back,
        slot.generation()
    );
    println!("median q-error on unseen drifted queries: {baseline:.2} → {healed:.2}");

    assert!(swaps >= 1, "drift recovery must swap at least once");
    assert!(
        healed < baseline,
        "adaptation must improve post-drift accuracy: {healed:.2} vs baseline {baseline:.2}"
    );
    assert_eq!(
        stats.retrain_triggered,
        stats.shadow_accepted
            + stats.shadow_rejected
            + stats.shadow_inconclusive
            + stats.retrain_aborted,
        "counter conservation: {stats:?}"
    );
    println!("\nrecovered: post-swap accuracy beats the no-adaptation baseline ✓");

    // ── 6. Metrics artifact ────────────────────────────────────────────
    let metrics = svc.metrics();
    if let Ok(path) = std::env::var("QFE_ADAPT_JSON") {
        let path = std::path::PathBuf::from(path);
        metrics
            .write_json_to(&path)
            .expect("metrics JSON must be writable");
        println!("metrics JSON written to {}", path.display());
    } else {
        print!("\n── metrics snapshot ──\n{}", metrics.render_text());
    }
}
