//! Offline shim of the `rand` crate — the API subset this workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic, API-compatible
//! implementation (see `vendor/README.md`). The generator is
//! xoshiro256** seeded via splitmix64 — high-quality and fast; all
//! consumers in this workspace seed explicitly, so there is no OS
//! entropy path at all (and none is provided: `thread_rng`/
//! `from_entropy` are deliberately absent to keep every experiment
//! reproducible).
//!
//! Implemented surface:
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng`]: `gen`, `gen_range`, `gen_bool`, `fill` (u8 slices)
//! * [`seq::SliceRandom`]: `shuffle`, `choose`
//!
//! The streams differ from upstream `rand` (different generator), but
//! every property the workspace relies on — determinism given a seed,
//! uniformity, independence across seeds — holds.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// `StdRng`; different stream, same contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard01: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard01 for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a half-open or closed range (rand's
/// `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as crate::Standard01>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as crate::Standard01>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`] (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        T::sample_closed(start, end, rng)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard01>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
        let opts = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*opts.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_fills_all_bytes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
