//! Offline shim of the `proptest` crate — the API subset this workspace
//! uses (see `vendor/README.md` for why the workspace vendors shims).
//!
//! This is a deterministic random-testing harness, not a full property
//! testing framework: inputs are generated from seeded strategies and
//! assertions panic on failure, but there is **no shrinking** and no
//! failure persistence (`*.proptest-regressions` files are ignored).
//! Each test case `i` runs with an RNG seeded as `base_seed + i`, so a
//! failing case prints its case index and can be replayed exactly.
//!
//! Implemented surface: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, [`strategy::Strategy`] (`prop_map`, `prop_flat_map`,
//! `prop_recursive`, `boxed`), [`strategy::Just`], ranges over numeric
//! types as strategies, tuple strategies, [`collection::vec`], and
//! [`test_runner::Config`] (re-exported as `ProptestConfig`).

pub mod strategy {
    use rand::rngs::StdRng;
    use std::sync::Arc;

    /// A generator of random values of one type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy: 'static {
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `self` is the leaf case, `recurse`
        /// builds one additional level from the strategy for the level
        /// below. Depth is capped at `depth`; the `_desired_size` and
        /// `_expected_branch_size` parameters exist for signature
        /// compatibility and are ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                // 1/3 leaf, 2/3 recurse at every level keeps generated
                // trees small but deep enough to exercise nesting.
                cur = union(vec![(1, leaf.clone()), (2, branch)]);
            }
            cur
        }

        /// Type-erase (and make cheaply clonable via `Arc`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait StrategyDyn<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> StrategyDyn<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn StrategyDyn<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + 'static,
        O: 'static,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + 'static,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted union of strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    /// Build a weighted union; weights must sum to a positive value.
    pub fn union<T>(options: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
        .boxed()
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            // Unreachable: pick < total_weight by construction.
            self.options[0].1.generate(rng)
        }
    }

    macro_rules! strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! strategy_for_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    strategy_for_float_ranges!(f32, f64);

    macro_rules! strategy_for_tuples {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    strategy_for_tuples!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a range.
    pub trait SizeRange: Clone + 'static {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Test-run configuration (subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
        /// Base RNG seed; case `i` uses `rng_seed + i`.
        pub rng_seed: u64,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 128,
                rng_seed: 0x5EED,
            }
        }
    }
}

/// Drive one property: run `body` for each seeded case.
///
/// Called by the `proptest!` macro; public so the macro expansion can
/// reach it from other crates.
pub fn run_property(config: test_runner::Config, body: impl Fn(&mut rand::rngs::StdRng)) {
    use rand::SeedableRng;
    for case in 0..config.cases {
        let seed = config.rng_seed + u64::from(case);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: case {case}/{} failed (rng seed {seed}); \
                 re-run with ProptestConfig {{ cases: 1, rng_seed: {seed} }} to replay",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_property(config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// Assert inside a property (no shrinking: equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (equivalent to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (equivalent to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip a case when its inputs don't satisfy a precondition.
///
/// The shim cannot resample, so it simply returns from the case body —
/// statistically equivalent to discarding the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Union of strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

pub mod prelude {
    /// `prop::collection::vec(...)` etc., as in upstream proptest.
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let strat = (0i64..10, 5usize..=6).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
        let vs = prop::collection::vec(-1.0f32..1.0, 3..7);
        for _ in 0..50 {
            let v = vs.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_all_arms_and_weights_skew() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [0u32; 4];
        for _ in 0..300 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert!(seen[1] > 0 && seen[2] > 0 && seen[3] > 0);
        let weighted = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| weighted.generate(&mut rng)).count();
        assert!(trues > 800, "{trues}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        use rand::SeedableRng;
        #[derive(Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..5)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth cap violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips(a in 0i64..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }
    }
}
