//! Offline shim of the `criterion` crate — the API subset this
//! workspace's benches use (see `vendor/README.md`).
//!
//! A real measurement loop (warm-up + timed iterations, median-of-runs
//! reporting) without criterion's statistics machinery, plotting, or
//! CLI. Good enough to spot order-of-magnitude regressions and to keep
//! `cargo bench` compiling and running offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_bench(name, samples, self.parent.measurement_time, f);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time `f`, collecting one sample per configured round.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: aim for ≥ ~100 µs per sample so Instant overhead
        // stays negligible for fast bodies.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_micros(100).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;
        self.iters_per_sample = iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench(name: &str, samples: usize, _budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / f64::from(b.iters_per_sample))
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!(
        "  {name}: median {} (best {})",
        fmt_time(median),
        fmt_time(best)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran += 1;
        });
        assert!(ran >= 1);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_function("inner", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
