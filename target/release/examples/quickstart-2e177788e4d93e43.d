/root/repo/target/release/examples/quickstart-2e177788e4d93e43.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2e177788e4d93e43: examples/quickstart.rs

examples/quickstart.rs:
