/root/repo/target/release/examples/fault_tolerance-a9e4b6c3cc0dfc42.d: examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-a9e4b6c3cc0dfc42: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
