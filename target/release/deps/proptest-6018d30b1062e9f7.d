/root/repo/target/release/deps/proptest-6018d30b1062e9f7.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6018d30b1062e9f7.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6018d30b1062e9f7.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
