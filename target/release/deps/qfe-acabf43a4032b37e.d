/root/repo/target/release/deps/qfe-acabf43a4032b37e.d: src/lib.rs

/root/repo/target/release/deps/libqfe-acabf43a4032b37e.rlib: src/lib.rs

/root/repo/target/release/deps/libqfe-acabf43a4032b37e.rmeta: src/lib.rs

src/lib.rs:
