/root/repo/target/release/deps/qfe_workload-42b92141565d467e.d: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

/root/repo/target/release/deps/libqfe_workload-42b92141565d467e.rlib: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

/root/repo/target/release/deps/libqfe_workload-42b92141565d467e.rmeta: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

crates/workload/src/lib.rs:
crates/workload/src/conjunctive.rs:
crates/workload/src/drift.rs:
crates/workload/src/grouped.rs:
crates/workload/src/job_light.rs:
crates/workload/src/mixed.rs:
