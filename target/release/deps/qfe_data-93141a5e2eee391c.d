/root/repo/target/release/deps/qfe_data-93141a5e2eee391c.d: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

/root/repo/target/release/deps/libqfe_data-93141a5e2eee391c.rlib: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

/root/repo/target/release/deps/libqfe_data-93141a5e2eee391c.rmeta: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

crates/data/src/lib.rs:
crates/data/src/column.rs:
crates/data/src/csv.rs:
crates/data/src/dictionary.rs:
crates/data/src/forest.rs:
crates/data/src/generator.rs:
crates/data/src/histogram.rs:
crates/data/src/imdb.rs:
crates/data/src/sample.rs:
crates/data/src/table.rs:
crates/data/src/voptimal.rs:
