/root/repo/target/release/deps/qfe_exec-aff29eea1f9bdccc.d: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

/root/repo/target/release/deps/libqfe_exec-aff29eea1f9bdccc.rlib: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

/root/repo/target/release/deps/libqfe_exec-aff29eea1f9bdccc.rmeta: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

crates/exec/src/lib.rs:
crates/exec/src/bitmap.rs:
crates/exec/src/count.rs:
crates/exec/src/eval.rs:
crates/exec/src/executor.rs:
crates/exec/src/join.rs:
crates/exec/src/optimizer.rs:
