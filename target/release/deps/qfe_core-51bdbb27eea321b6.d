/root/repo/target/release/deps/qfe_core-51bdbb27eea321b6.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/estimator.rs crates/core/src/featurize/mod.rs crates/core/src/featurize/complex.rs crates/core/src/featurize/conjunctive.rs crates/core/src/featurize/equidepth.rs crates/core/src/featurize/groupby.rs crates/core/src/featurize/join.rs crates/core/src/featurize/lossless.rs crates/core/src/featurize/mscn.rs crates/core/src/featurize/range.rs crates/core/src/featurize/simple.rs crates/core/src/featurize/space.rs crates/core/src/interval.rs crates/core/src/metrics.rs crates/core/src/parse.rs crates/core/src/predicate.rs crates/core/src/query.rs crates/core/src/schema.rs crates/core/src/value.rs

/root/repo/target/release/deps/libqfe_core-51bdbb27eea321b6.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/estimator.rs crates/core/src/featurize/mod.rs crates/core/src/featurize/complex.rs crates/core/src/featurize/conjunctive.rs crates/core/src/featurize/equidepth.rs crates/core/src/featurize/groupby.rs crates/core/src/featurize/join.rs crates/core/src/featurize/lossless.rs crates/core/src/featurize/mscn.rs crates/core/src/featurize/range.rs crates/core/src/featurize/simple.rs crates/core/src/featurize/space.rs crates/core/src/interval.rs crates/core/src/metrics.rs crates/core/src/parse.rs crates/core/src/predicate.rs crates/core/src/query.rs crates/core/src/schema.rs crates/core/src/value.rs

/root/repo/target/release/deps/libqfe_core-51bdbb27eea321b6.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/estimator.rs crates/core/src/featurize/mod.rs crates/core/src/featurize/complex.rs crates/core/src/featurize/conjunctive.rs crates/core/src/featurize/equidepth.rs crates/core/src/featurize/groupby.rs crates/core/src/featurize/join.rs crates/core/src/featurize/lossless.rs crates/core/src/featurize/mscn.rs crates/core/src/featurize/range.rs crates/core/src/featurize/simple.rs crates/core/src/featurize/space.rs crates/core/src/interval.rs crates/core/src/metrics.rs crates/core/src/parse.rs crates/core/src/predicate.rs crates/core/src/query.rs crates/core/src/schema.rs crates/core/src/value.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/estimator.rs:
crates/core/src/featurize/mod.rs:
crates/core/src/featurize/complex.rs:
crates/core/src/featurize/conjunctive.rs:
crates/core/src/featurize/equidepth.rs:
crates/core/src/featurize/groupby.rs:
crates/core/src/featurize/join.rs:
crates/core/src/featurize/lossless.rs:
crates/core/src/featurize/mscn.rs:
crates/core/src/featurize/range.rs:
crates/core/src/featurize/simple.rs:
crates/core/src/featurize/space.rs:
crates/core/src/interval.rs:
crates/core/src/metrics.rs:
crates/core/src/parse.rs:
crates/core/src/predicate.rs:
crates/core/src/query.rs:
crates/core/src/schema.rs:
crates/core/src/value.rs:
