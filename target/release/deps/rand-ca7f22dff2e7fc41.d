/root/repo/target/release/deps/rand-ca7f22dff2e7fc41.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ca7f22dff2e7fc41.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ca7f22dff2e7fc41.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
