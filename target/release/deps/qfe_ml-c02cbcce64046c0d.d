/root/repo/target/release/deps/qfe_ml-c02cbcce64046c0d.d: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

/root/repo/target/release/deps/libqfe_ml-c02cbcce64046c0d.rlib: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

/root/repo/target/release/deps/libqfe_ml-c02cbcce64046c0d.rmeta: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

crates/ml/src/lib.rs:
crates/ml/src/chaos.rs:
crates/ml/src/gbdt.rs:
crates/ml/src/linreg.rs:
crates/ml/src/matrix.rs:
crates/ml/src/mlp.rs:
crates/ml/src/mscn.rs:
crates/ml/src/scaling.rs:
crates/ml/src/serialize.rs:
crates/ml/src/train.rs:
