/root/repo/target/debug/examples/fault_tolerance-421c8770a6762d84.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-421c8770a6762d84: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
