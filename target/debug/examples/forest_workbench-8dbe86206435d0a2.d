/root/repo/target/debug/examples/forest_workbench-8dbe86206435d0a2.d: examples/forest_workbench.rs Cargo.toml

/root/repo/target/debug/examples/libforest_workbench-8dbe86206435d0a2.rmeta: examples/forest_workbench.rs Cargo.toml

examples/forest_workbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
