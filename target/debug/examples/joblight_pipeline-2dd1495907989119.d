/root/repo/target/debug/examples/joblight_pipeline-2dd1495907989119.d: examples/joblight_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libjoblight_pipeline-2dd1495907989119.rmeta: examples/joblight_pipeline.rs Cargo.toml

examples/joblight_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
