/root/repo/target/debug/examples/string_predicates-9f8aa56d5db017e6.d: examples/string_predicates.rs Cargo.toml

/root/repo/target/debug/examples/libstring_predicates-9f8aa56d5db017e6.rmeta: examples/string_predicates.rs Cargo.toml

examples/string_predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
