/root/repo/target/debug/examples/mixed_queries-c70bc0992d25e7ca.d: examples/mixed_queries.rs

/root/repo/target/debug/examples/mixed_queries-c70bc0992d25e7ca: examples/mixed_queries.rs

examples/mixed_queries.rs:
