/root/repo/target/debug/examples/string_predicates-3116a4d15ec7b7b6.d: examples/string_predicates.rs

/root/repo/target/debug/examples/string_predicates-3116a4d15ec7b7b6: examples/string_predicates.rs

examples/string_predicates.rs:
