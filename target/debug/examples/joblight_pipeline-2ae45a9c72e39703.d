/root/repo/target/debug/examples/joblight_pipeline-2ae45a9c72e39703.d: examples/joblight_pipeline.rs

/root/repo/target/debug/examples/joblight_pipeline-2ae45a9c72e39703: examples/joblight_pipeline.rs

examples/joblight_pipeline.rs:
