/root/repo/target/debug/examples/forest_workbench-390897bf8063a8f5.d: examples/forest_workbench.rs

/root/repo/target/debug/examples/forest_workbench-390897bf8063a8f5: examples/forest_workbench.rs

examples/forest_workbench.rs:
