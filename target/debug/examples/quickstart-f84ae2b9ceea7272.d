/root/repo/target/debug/examples/quickstart-f84ae2b9ceea7272.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f84ae2b9ceea7272: examples/quickstart.rs

examples/quickstart.rs:
