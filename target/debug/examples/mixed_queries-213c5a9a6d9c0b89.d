/root/repo/target/debug/examples/mixed_queries-213c5a9a6d9c0b89.d: examples/mixed_queries.rs Cargo.toml

/root/repo/target/debug/examples/libmixed_queries-213c5a9a6d9c0b89.rmeta: examples/mixed_queries.rs Cargo.toml

examples/mixed_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
