/root/repo/target/debug/deps/qfe_estimators-009e469c7eb4d819.d: crates/estimators/src/lib.rs crates/estimators/src/chain.rs crates/estimators/src/correlated.rs crates/estimators/src/global.rs crates/estimators/src/grouped.rs crates/estimators/src/iep.rs crates/estimators/src/labels.rs crates/estimators/src/learned.rs crates/estimators/src/local.rs crates/estimators/src/postgres.rs crates/estimators/src/sampling.rs crates/estimators/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_estimators-009e469c7eb4d819.rmeta: crates/estimators/src/lib.rs crates/estimators/src/chain.rs crates/estimators/src/correlated.rs crates/estimators/src/global.rs crates/estimators/src/grouped.rs crates/estimators/src/iep.rs crates/estimators/src/labels.rs crates/estimators/src/learned.rs crates/estimators/src/local.rs crates/estimators/src/postgres.rs crates/estimators/src/sampling.rs crates/estimators/src/truth.rs Cargo.toml

crates/estimators/src/lib.rs:
crates/estimators/src/chain.rs:
crates/estimators/src/correlated.rs:
crates/estimators/src/global.rs:
crates/estimators/src/grouped.rs:
crates/estimators/src/iep.rs:
crates/estimators/src/labels.rs:
crates/estimators/src/learned.rs:
crates/estimators/src/local.rs:
crates/estimators/src/postgres.rs:
crates/estimators/src/sampling.rs:
crates/estimators/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
