/root/repo/target/debug/deps/exec_props-4b2431723585826b.d: tests/exec_props.rs Cargo.toml

/root/repo/target/debug/deps/libexec_props-4b2431723585826b.rmeta: tests/exec_props.rs Cargo.toml

tests/exec_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
