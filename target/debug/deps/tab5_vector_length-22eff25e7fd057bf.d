/root/repo/target/debug/deps/tab5_vector_length-22eff25e7fd057bf.d: crates/bench/src/bin/tab5_vector_length.rs

/root/repo/target/debug/deps/tab5_vector_length-22eff25e7fd057bf: crates/bench/src/bin/tab5_vector_length.rs

crates/bench/src/bin/tab5_vector_length.rs:
