/root/repo/target/debug/deps/tab5_vector_length-5acd327f977a6d18.d: crates/bench/src/bin/tab5_vector_length.rs

/root/repo/target/debug/deps/tab5_vector_length-5acd327f977a6d18: crates/bench/src/bin/tab5_vector_length.rs

crates/bench/src/bin/tab5_vector_length.rs:
