/root/repo/target/debug/deps/sec6_extensions-795cc4c7acfb6b35.d: crates/bench/src/bin/sec6_extensions.rs

/root/repo/target/debug/deps/sec6_extensions-795cc4c7acfb6b35: crates/bench/src/bin/sec6_extensions.rs

crates/bench/src/bin/sec6_extensions.rs:
