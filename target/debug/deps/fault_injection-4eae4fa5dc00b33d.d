/root/repo/target/debug/deps/fault_injection-4eae4fa5dc00b33d.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-4eae4fa5dc00b33d: tests/fault_injection.rs

tests/fault_injection.rs:
