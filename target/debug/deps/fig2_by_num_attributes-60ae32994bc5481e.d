/root/repo/target/debug/deps/fig2_by_num_attributes-60ae32994bc5481e.d: crates/bench/src/bin/fig2_by_num_attributes.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_by_num_attributes-60ae32994bc5481e.rmeta: crates/bench/src/bin/fig2_by_num_attributes.rs Cargo.toml

crates/bench/src/bin/fig2_by_num_attributes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
