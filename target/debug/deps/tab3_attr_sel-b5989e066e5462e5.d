/root/repo/target/debug/deps/tab3_attr_sel-b5989e066e5462e5.d: crates/bench/src/bin/tab3_attr_sel.rs Cargo.toml

/root/repo/target/debug/deps/libtab3_attr_sel-b5989e066e5462e5.rmeta: crates/bench/src/bin/tab3_attr_sel.rs Cargo.toml

crates/bench/src/bin/tab3_attr_sel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
