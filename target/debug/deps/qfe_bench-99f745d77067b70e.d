/root/repo/target/debug/deps/qfe_bench-99f745d77067b70e.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/sec552.rs crates/bench/src/experiments/sec6.rs crates/bench/src/experiments/tab1.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab4.rs crates/bench/src/experiments/tab5.rs crates/bench/src/experiments/tab6.rs crates/bench/src/experiments/tab7.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/trainers.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_bench-99f745d77067b70e.rmeta: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/sec552.rs crates/bench/src/experiments/sec6.rs crates/bench/src/experiments/tab1.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab4.rs crates/bench/src/experiments/tab5.rs crates/bench/src/experiments/tab6.rs crates/bench/src/experiments/tab7.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/trainers.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/fig1.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/sec552.rs:
crates/bench/src/experiments/sec6.rs:
crates/bench/src/experiments/tab1.rs:
crates/bench/src/experiments/tab2.rs:
crates/bench/src/experiments/tab3.rs:
crates/bench/src/experiments/tab4.rs:
crates/bench/src/experiments/tab5.rs:
crates/bench/src/experiments/tab6.rs:
crates/bench/src/experiments/tab7.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
crates/bench/src/trainers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
