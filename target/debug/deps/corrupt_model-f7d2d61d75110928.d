/root/repo/target/debug/deps/corrupt_model-f7d2d61d75110928.d: crates/ml/tests/corrupt_model.rs Cargo.toml

/root/repo/target/debug/deps/libcorrupt_model-f7d2d61d75110928.rmeta: crates/ml/tests/corrupt_model.rs Cargo.toml

crates/ml/tests/corrupt_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
