/root/repo/target/debug/deps/qfe_ml-4791198d71ab1b2d.d: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_ml-4791198d71ab1b2d.rmeta: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/chaos.rs:
crates/ml/src/gbdt.rs:
crates/ml/src/linreg.rs:
crates/ml/src/matrix.rs:
crates/ml/src/mlp.rs:
crates/ml/src/mscn.rs:
crates/ml/src/scaling.rs:
crates/ml/src/serialize.rs:
crates/ml/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
