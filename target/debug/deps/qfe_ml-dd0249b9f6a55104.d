/root/repo/target/debug/deps/qfe_ml-dd0249b9f6a55104.d: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_ml-dd0249b9f6a55104.rmeta: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/chaos.rs:
crates/ml/src/gbdt.rs:
crates/ml/src/linreg.rs:
crates/ml/src/matrix.rs:
crates/ml/src/mlp.rs:
crates/ml/src/mscn.rs:
crates/ml/src/scaling.rs:
crates/ml/src/serialize.rs:
crates/ml/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
