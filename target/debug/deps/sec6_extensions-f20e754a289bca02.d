/root/repo/target/debug/deps/sec6_extensions-f20e754a289bca02.d: crates/bench/src/bin/sec6_extensions.rs

/root/repo/target/debug/deps/sec6_extensions-f20e754a289bca02: crates/bench/src/bin/sec6_extensions.rs

crates/bench/src/bin/sec6_extensions.rs:
