/root/repo/target/debug/deps/featurization_props-d9cade8c0f5c54d3.d: tests/featurization_props.rs Cargo.toml

/root/repo/target/debug/deps/libfeaturization_props-d9cade8c0f5c54d3.rmeta: tests/featurization_props.rs Cargo.toml

tests/featurization_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
