/root/repo/target/debug/deps/fig3_by_num_predicates-8913c8bbaa7d574d.d: crates/bench/src/bin/fig3_by_num_predicates.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_by_num_predicates-8913c8bbaa7d574d.rmeta: crates/bench/src/bin/fig3_by_num_predicates.rs Cargo.toml

crates/bench/src/bin/fig3_by_num_predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
