/root/repo/target/debug/deps/fig1_qft_model_matrix-12b33f3b034b5d50.d: crates/bench/src/bin/fig1_qft_model_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_qft_model_matrix-12b33f3b034b5d50.rmeta: crates/bench/src/bin/fig1_qft_model_matrix.rs Cargo.toml

crates/bench/src/bin/fig1_qft_model_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
