/root/repo/target/debug/deps/tab4_end_to_end-d57a369d520220f7.d: crates/bench/src/bin/tab4_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_end_to_end-d57a369d520220f7.rmeta: crates/bench/src/bin/tab4_end_to_end.rs Cargo.toml

crates/bench/src/bin/tab4_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
