/root/repo/target/debug/deps/featurize-dca2cb12c6863646.d: crates/bench/benches/featurize.rs Cargo.toml

/root/repo/target/debug/deps/libfeaturize-dca2cb12c6863646.rmeta: crates/bench/benches/featurize.rs Cargo.toml

crates/bench/benches/featurize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
