/root/repo/target/debug/deps/fig4_vs_established-69417beb5f5a8999.d: crates/bench/src/bin/fig4_vs_established.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_vs_established-69417beb5f5a8999.rmeta: crates/bench/src/bin/fig4_vs_established.rs Cargo.toml

crates/bench/src/bin/fig4_vs_established.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
