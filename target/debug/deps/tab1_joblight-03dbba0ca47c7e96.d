/root/repo/target/debug/deps/tab1_joblight-03dbba0ca47c7e96.d: crates/bench/src/bin/tab1_joblight.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_joblight-03dbba0ca47c7e96.rmeta: crates/bench/src/bin/tab1_joblight.rs Cargo.toml

crates/bench/src/bin/tab1_joblight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
