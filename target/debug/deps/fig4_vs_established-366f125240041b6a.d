/root/repo/target/debug/deps/fig4_vs_established-366f125240041b6a.d: crates/bench/src/bin/fig4_vs_established.rs

/root/repo/target/debug/deps/fig4_vs_established-366f125240041b6a: crates/bench/src/bin/fig4_vs_established.rs

crates/bench/src/bin/fig4_vs_established.rs:
