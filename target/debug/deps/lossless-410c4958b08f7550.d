/root/repo/target/debug/deps/lossless-410c4958b08f7550.d: tests/lossless.rs Cargo.toml

/root/repo/target/debug/deps/liblossless-410c4958b08f7550.rmeta: tests/lossless.rs Cargo.toml

tests/lossless.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
