/root/repo/target/debug/deps/tab6_convergence-3270c187d9002ac6.d: crates/bench/src/bin/tab6_convergence.rs

/root/repo/target/debug/deps/tab6_convergence-3270c187d9002ac6: crates/bench/src/bin/tab6_convergence.rs

crates/bench/src/bin/tab6_convergence.rs:
