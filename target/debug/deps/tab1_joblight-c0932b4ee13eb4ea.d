/root/repo/target/debug/deps/tab1_joblight-c0932b4ee13eb4ea.d: crates/bench/src/bin/tab1_joblight.rs

/root/repo/target/debug/deps/tab1_joblight-c0932b4ee13eb4ea: crates/bench/src/bin/tab1_joblight.rs

crates/bench/src/bin/tab1_joblight.rs:
