/root/repo/target/debug/deps/fig2_by_num_attributes-77ab1d2749c63d13.d: crates/bench/src/bin/fig2_by_num_attributes.rs

/root/repo/target/debug/deps/fig2_by_num_attributes-77ab1d2749c63d13: crates/bench/src/bin/fig2_by_num_attributes.rs

crates/bench/src/bin/fig2_by_num_attributes.rs:
