/root/repo/target/debug/deps/qfe_data-1a8374468aba29f7.d: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

/root/repo/target/debug/deps/libqfe_data-1a8374468aba29f7.rlib: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

/root/repo/target/debug/deps/libqfe_data-1a8374468aba29f7.rmeta: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

crates/data/src/lib.rs:
crates/data/src/column.rs:
crates/data/src/csv.rs:
crates/data/src/dictionary.rs:
crates/data/src/forest.rs:
crates/data/src/generator.rs:
crates/data/src/histogram.rs:
crates/data/src/imdb.rs:
crates/data/src/sample.rs:
crates/data/src/table.rs:
crates/data/src/voptimal.rs:
