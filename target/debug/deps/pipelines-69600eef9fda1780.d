/root/repo/target/debug/deps/pipelines-69600eef9fda1780.d: tests/pipelines.rs

/root/repo/target/debug/deps/pipelines-69600eef9fda1780: tests/pipelines.rs

tests/pipelines.rs:
