/root/repo/target/debug/deps/fig5_query_drift-18d8957f82e0dc8f.d: crates/bench/src/bin/fig5_query_drift.rs

/root/repo/target/debug/deps/fig5_query_drift-18d8957f82e0dc8f: crates/bench/src/bin/fig5_query_drift.rs

crates/bench/src/bin/fig5_query_drift.rs:
