/root/repo/target/debug/deps/sec552_retraining_cost-896711b7491230a3.d: crates/bench/src/bin/sec552_retraining_cost.rs

/root/repo/target/debug/deps/sec552_retraining_cost-896711b7491230a3: crates/bench/src/bin/sec552_retraining_cost.rs

crates/bench/src/bin/sec552_retraining_cost.rs:
