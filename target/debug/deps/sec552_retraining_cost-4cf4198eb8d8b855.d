/root/repo/target/debug/deps/sec552_retraining_cost-4cf4198eb8d8b855.d: crates/bench/src/bin/sec552_retraining_cost.rs

/root/repo/target/debug/deps/sec552_retraining_cost-4cf4198eb8d8b855: crates/bench/src/bin/sec552_retraining_cost.rs

crates/bench/src/bin/sec552_retraining_cost.rs:
