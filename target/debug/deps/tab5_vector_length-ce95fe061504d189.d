/root/repo/target/debug/deps/tab5_vector_length-ce95fe061504d189.d: crates/bench/src/bin/tab5_vector_length.rs Cargo.toml

/root/repo/target/debug/deps/libtab5_vector_length-ce95fe061504d189.rmeta: crates/bench/src/bin/tab5_vector_length.rs Cargo.toml

crates/bench/src/bin/tab5_vector_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
