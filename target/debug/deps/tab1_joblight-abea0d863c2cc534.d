/root/repo/target/debug/deps/tab1_joblight-abea0d863c2cc534.d: crates/bench/src/bin/tab1_joblight.rs

/root/repo/target/debug/deps/tab1_joblight-abea0d863c2cc534: crates/bench/src/bin/tab1_joblight.rs

crates/bench/src/bin/tab1_joblight.rs:
