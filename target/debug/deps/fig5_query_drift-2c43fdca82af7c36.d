/root/repo/target/debug/deps/fig5_query_drift-2c43fdca82af7c36.d: crates/bench/src/bin/fig5_query_drift.rs

/root/repo/target/debug/deps/fig5_query_drift-2c43fdca82af7c36: crates/bench/src/bin/fig5_query_drift.rs

crates/bench/src/bin/fig5_query_drift.rs:
