/root/repo/target/debug/deps/fig1_qft_model_matrix-c2801ba293ed653b.d: crates/bench/src/bin/fig1_qft_model_matrix.rs

/root/repo/target/debug/deps/fig1_qft_model_matrix-c2801ba293ed653b: crates/bench/src/bin/fig1_qft_model_matrix.rs

crates/bench/src/bin/fig1_qft_model_matrix.rs:
