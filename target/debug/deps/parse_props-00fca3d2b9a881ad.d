/root/repo/target/debug/deps/parse_props-00fca3d2b9a881ad.d: crates/core/tests/parse_props.rs Cargo.toml

/root/repo/target/debug/deps/libparse_props-00fca3d2b9a881ad.rmeta: crates/core/tests/parse_props.rs Cargo.toml

crates/core/tests/parse_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
