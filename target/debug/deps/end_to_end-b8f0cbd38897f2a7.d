/root/repo/target/debug/deps/end_to_end-b8f0cbd38897f2a7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b8f0cbd38897f2a7: tests/end_to_end.rs

tests/end_to_end.rs:
