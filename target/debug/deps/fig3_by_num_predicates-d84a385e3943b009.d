/root/repo/target/debug/deps/fig3_by_num_predicates-d84a385e3943b009.d: crates/bench/src/bin/fig3_by_num_predicates.rs

/root/repo/target/debug/deps/fig3_by_num_predicates-d84a385e3943b009: crates/bench/src/bin/fig3_by_num_predicates.rs

crates/bench/src/bin/fig3_by_num_predicates.rs:
