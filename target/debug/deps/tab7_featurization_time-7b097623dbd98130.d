/root/repo/target/debug/deps/tab7_featurization_time-7b097623dbd98130.d: crates/bench/src/bin/tab7_featurization_time.rs Cargo.toml

/root/repo/target/debug/deps/libtab7_featurization_time-7b097623dbd98130.rmeta: crates/bench/src/bin/tab7_featurization_time.rs Cargo.toml

crates/bench/src/bin/tab7_featurization_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
