/root/repo/target/debug/deps/ablations-1de84e3be9b43b50.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1de84e3be9b43b50: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
