/root/repo/target/debug/deps/fig1_qft_model_matrix-d4b36f9e4a8d0d2b.d: crates/bench/src/bin/fig1_qft_model_matrix.rs

/root/repo/target/debug/deps/fig1_qft_model_matrix-d4b36f9e4a8d0d2b: crates/bench/src/bin/fig1_qft_model_matrix.rs

crates/bench/src/bin/fig1_qft_model_matrix.rs:
