/root/repo/target/debug/deps/ablations-ab8edc0ac189538d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-ab8edc0ac189538d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
