/root/repo/target/debug/deps/tab2_local_vs_global-06cb7195de7ee554.d: crates/bench/src/bin/tab2_local_vs_global.rs

/root/repo/target/debug/deps/tab2_local_vs_global-06cb7195de7ee554: crates/bench/src/bin/tab2_local_vs_global.rs

crates/bench/src/bin/tab2_local_vs_global.rs:
