/root/repo/target/debug/deps/qfe_workload-7d2c6389aec768f1.d: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_workload-7d2c6389aec768f1.rmeta: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/conjunctive.rs:
crates/workload/src/drift.rs:
crates/workload/src/grouped.rs:
crates/workload/src/job_light.rs:
crates/workload/src/mixed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
