/root/repo/target/debug/deps/tab7_featurization_time-4d993ed1a66f5f41.d: crates/bench/src/bin/tab7_featurization_time.rs

/root/repo/target/debug/deps/tab7_featurization_time-4d993ed1a66f5f41: crates/bench/src/bin/tab7_featurization_time.rs

crates/bench/src/bin/tab7_featurization_time.rs:
