/root/repo/target/debug/deps/qfe_workload-89abf82ea0e08701.d: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

/root/repo/target/debug/deps/libqfe_workload-89abf82ea0e08701.rlib: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

/root/repo/target/debug/deps/libqfe_workload-89abf82ea0e08701.rmeta: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

crates/workload/src/lib.rs:
crates/workload/src/conjunctive.rs:
crates/workload/src/drift.rs:
crates/workload/src/grouped.rs:
crates/workload/src/job_light.rs:
crates/workload/src/mixed.rs:
