/root/repo/target/debug/deps/qfe_exec-de533008f8a56c32.d: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

/root/repo/target/debug/deps/qfe_exec-de533008f8a56c32: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

crates/exec/src/lib.rs:
crates/exec/src/bitmap.rs:
crates/exec/src/count.rs:
crates/exec/src/eval.rs:
crates/exec/src/executor.rs:
crates/exec/src/join.rs:
crates/exec/src/optimizer.rs:
