/root/repo/target/debug/deps/join_pipeline-65728ce4c5e14f0b.d: tests/join_pipeline.rs

/root/repo/target/debug/deps/join_pipeline-65728ce4c5e14f0b: tests/join_pipeline.rs

tests/join_pipeline.rs:
