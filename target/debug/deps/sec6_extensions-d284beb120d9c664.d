/root/repo/target/debug/deps/sec6_extensions-d284beb120d9c664.d: crates/bench/src/bin/sec6_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_extensions-d284beb120d9c664.rmeta: crates/bench/src/bin/sec6_extensions.rs Cargo.toml

crates/bench/src/bin/sec6_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
