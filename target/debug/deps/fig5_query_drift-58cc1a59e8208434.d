/root/repo/target/debug/deps/fig5_query_drift-58cc1a59e8208434.d: crates/bench/src/bin/fig5_query_drift.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_query_drift-58cc1a59e8208434.rmeta: crates/bench/src/bin/fig5_query_drift.rs Cargo.toml

crates/bench/src/bin/fig5_query_drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
