/root/repo/target/debug/deps/tab4_end_to_end-c840a3f08fd0ae83.d: crates/bench/src/bin/tab4_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_end_to_end-c840a3f08fd0ae83.rmeta: crates/bench/src/bin/tab4_end_to_end.rs Cargo.toml

crates/bench/src/bin/tab4_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
