/root/repo/target/debug/deps/exec_props-047fe6fed5136caa.d: tests/exec_props.rs

/root/repo/target/debug/deps/exec_props-047fe6fed5136caa: tests/exec_props.rs

tests/exec_props.rs:
