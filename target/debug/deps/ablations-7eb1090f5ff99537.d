/root/repo/target/debug/deps/ablations-7eb1090f5ff99537.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-7eb1090f5ff99537.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
