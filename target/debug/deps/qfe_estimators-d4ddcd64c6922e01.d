/root/repo/target/debug/deps/qfe_estimators-d4ddcd64c6922e01.d: crates/estimators/src/lib.rs crates/estimators/src/chain.rs crates/estimators/src/correlated.rs crates/estimators/src/global.rs crates/estimators/src/grouped.rs crates/estimators/src/iep.rs crates/estimators/src/labels.rs crates/estimators/src/learned.rs crates/estimators/src/local.rs crates/estimators/src/postgres.rs crates/estimators/src/sampling.rs crates/estimators/src/truth.rs

/root/repo/target/debug/deps/qfe_estimators-d4ddcd64c6922e01: crates/estimators/src/lib.rs crates/estimators/src/chain.rs crates/estimators/src/correlated.rs crates/estimators/src/global.rs crates/estimators/src/grouped.rs crates/estimators/src/iep.rs crates/estimators/src/labels.rs crates/estimators/src/learned.rs crates/estimators/src/local.rs crates/estimators/src/postgres.rs crates/estimators/src/sampling.rs crates/estimators/src/truth.rs

crates/estimators/src/lib.rs:
crates/estimators/src/chain.rs:
crates/estimators/src/correlated.rs:
crates/estimators/src/global.rs:
crates/estimators/src/grouped.rs:
crates/estimators/src/iep.rs:
crates/estimators/src/labels.rs:
crates/estimators/src/learned.rs:
crates/estimators/src/local.rs:
crates/estimators/src/postgres.rs:
crates/estimators/src/sampling.rs:
crates/estimators/src/truth.rs:
