/root/repo/target/debug/deps/qfe-66328f5c90d02a32.d: src/lib.rs

/root/repo/target/debug/deps/qfe-66328f5c90d02a32: src/lib.rs

src/lib.rs:
