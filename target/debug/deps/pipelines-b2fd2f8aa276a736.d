/root/repo/target/debug/deps/pipelines-b2fd2f8aa276a736.d: tests/pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libpipelines-b2fd2f8aa276a736.rmeta: tests/pipelines.rs Cargo.toml

tests/pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
