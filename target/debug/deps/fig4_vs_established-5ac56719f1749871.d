/root/repo/target/debug/deps/fig4_vs_established-5ac56719f1749871.d: crates/bench/src/bin/fig4_vs_established.rs

/root/repo/target/debug/deps/fig4_vs_established-5ac56719f1749871: crates/bench/src/bin/fig4_vs_established.rs

crates/bench/src/bin/fig4_vs_established.rs:
