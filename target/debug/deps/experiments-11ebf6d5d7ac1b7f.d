/root/repo/target/debug/deps/experiments-11ebf6d5d7ac1b7f.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-11ebf6d5d7ac1b7f.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
