/root/repo/target/debug/deps/tab6_convergence-82019d2550c77205.d: crates/bench/src/bin/tab6_convergence.rs

/root/repo/target/debug/deps/tab6_convergence-82019d2550c77205: crates/bench/src/bin/tab6_convergence.rs

crates/bench/src/bin/tab6_convergence.rs:
