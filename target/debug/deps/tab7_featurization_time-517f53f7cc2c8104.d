/root/repo/target/debug/deps/tab7_featurization_time-517f53f7cc2c8104.d: crates/bench/src/bin/tab7_featurization_time.rs

/root/repo/target/debug/deps/tab7_featurization_time-517f53f7cc2c8104: crates/bench/src/bin/tab7_featurization_time.rs

crates/bench/src/bin/tab7_featurization_time.rs:
