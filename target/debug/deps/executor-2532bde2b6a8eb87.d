/root/repo/target/debug/deps/executor-2532bde2b6a8eb87.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-2532bde2b6a8eb87.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
