/root/repo/target/debug/deps/fig2_by_num_attributes-cb14dc4a06b348e1.d: crates/bench/src/bin/fig2_by_num_attributes.rs

/root/repo/target/debug/deps/fig2_by_num_attributes-cb14dc4a06b348e1: crates/bench/src/bin/fig2_by_num_attributes.rs

crates/bench/src/bin/fig2_by_num_attributes.rs:
