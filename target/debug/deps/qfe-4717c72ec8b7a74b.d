/root/repo/target/debug/deps/qfe-4717c72ec8b7a74b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqfe-4717c72ec8b7a74b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
