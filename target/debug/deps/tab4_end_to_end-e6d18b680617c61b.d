/root/repo/target/debug/deps/tab4_end_to_end-e6d18b680617c61b.d: crates/bench/src/bin/tab4_end_to_end.rs

/root/repo/target/debug/deps/tab4_end_to_end-e6d18b680617c61b: crates/bench/src/bin/tab4_end_to_end.rs

crates/bench/src/bin/tab4_end_to_end.rs:
