/root/repo/target/debug/deps/sec552_retraining_cost-ce29a1c635cb4e48.d: crates/bench/src/bin/sec552_retraining_cost.rs Cargo.toml

/root/repo/target/debug/deps/libsec552_retraining_cost-ce29a1c635cb4e48.rmeta: crates/bench/src/bin/sec552_retraining_cost.rs Cargo.toml

crates/bench/src/bin/sec552_retraining_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
