/root/repo/target/debug/deps/qfe_workload-8b02ff28d38e7eb2.d: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

/root/repo/target/debug/deps/qfe_workload-8b02ff28d38e7eb2: crates/workload/src/lib.rs crates/workload/src/conjunctive.rs crates/workload/src/drift.rs crates/workload/src/grouped.rs crates/workload/src/job_light.rs crates/workload/src/mixed.rs

crates/workload/src/lib.rs:
crates/workload/src/conjunctive.rs:
crates/workload/src/drift.rs:
crates/workload/src/grouped.rs:
crates/workload/src/job_light.rs:
crates/workload/src/mixed.rs:
