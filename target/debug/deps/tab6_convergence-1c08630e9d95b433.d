/root/repo/target/debug/deps/tab6_convergence-1c08630e9d95b433.d: crates/bench/src/bin/tab6_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libtab6_convergence-1c08630e9d95b433.rmeta: crates/bench/src/bin/tab6_convergence.rs Cargo.toml

crates/bench/src/bin/tab6_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
