/root/repo/target/debug/deps/tab1_joblight-09c467102f1f0aee.d: crates/bench/src/bin/tab1_joblight.rs Cargo.toml

/root/repo/target/debug/deps/libtab1_joblight-09c467102f1f0aee.rmeta: crates/bench/src/bin/tab1_joblight.rs Cargo.toml

crates/bench/src/bin/tab1_joblight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
