/root/repo/target/debug/deps/fig5_query_drift-8ca14ccc639e0699.d: crates/bench/src/bin/fig5_query_drift.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_query_drift-8ca14ccc639e0699.rmeta: crates/bench/src/bin/fig5_query_drift.rs Cargo.toml

crates/bench/src/bin/fig5_query_drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
