/root/repo/target/debug/deps/corrupt_model-59b935718ba78b71.d: crates/ml/tests/corrupt_model.rs

/root/repo/target/debug/deps/corrupt_model-59b935718ba78b71: crates/ml/tests/corrupt_model.rs

crates/ml/tests/corrupt_model.rs:
