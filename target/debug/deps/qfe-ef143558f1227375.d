/root/repo/target/debug/deps/qfe-ef143558f1227375.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqfe-ef143558f1227375.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
