/root/repo/target/debug/deps/parse_props-c8e1710e4ebf220d.d: crates/core/tests/parse_props.rs

/root/repo/target/debug/deps/parse_props-c8e1710e4ebf220d: crates/core/tests/parse_props.rs

crates/core/tests/parse_props.rs:
