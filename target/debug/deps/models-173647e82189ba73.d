/root/repo/target/debug/deps/models-173647e82189ba73.d: crates/bench/benches/models.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-173647e82189ba73.rmeta: crates/bench/benches/models.rs Cargo.toml

crates/bench/benches/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
