/root/repo/target/debug/deps/tab2_local_vs_global-61dbf1c74a7cc705.d: crates/bench/src/bin/tab2_local_vs_global.rs

/root/repo/target/debug/deps/tab2_local_vs_global-61dbf1c74a7cc705: crates/bench/src/bin/tab2_local_vs_global.rs

crates/bench/src/bin/tab2_local_vs_global.rs:
