/root/repo/target/debug/deps/qfe_exec-07dbebd1c367952e.d: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

/root/repo/target/debug/deps/libqfe_exec-07dbebd1c367952e.rlib: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

/root/repo/target/debug/deps/libqfe_exec-07dbebd1c367952e.rmeta: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs

crates/exec/src/lib.rs:
crates/exec/src/bitmap.rs:
crates/exec/src/count.rs:
crates/exec/src/eval.rs:
crates/exec/src/executor.rs:
crates/exec/src/join.rs:
crates/exec/src/optimizer.rs:
