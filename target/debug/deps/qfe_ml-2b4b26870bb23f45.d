/root/repo/target/debug/deps/qfe_ml-2b4b26870bb23f45.d: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

/root/repo/target/debug/deps/libqfe_ml-2b4b26870bb23f45.rlib: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

/root/repo/target/debug/deps/libqfe_ml-2b4b26870bb23f45.rmeta: crates/ml/src/lib.rs crates/ml/src/chaos.rs crates/ml/src/gbdt.rs crates/ml/src/linreg.rs crates/ml/src/matrix.rs crates/ml/src/mlp.rs crates/ml/src/mscn.rs crates/ml/src/scaling.rs crates/ml/src/serialize.rs crates/ml/src/train.rs

crates/ml/src/lib.rs:
crates/ml/src/chaos.rs:
crates/ml/src/gbdt.rs:
crates/ml/src/linreg.rs:
crates/ml/src/matrix.rs:
crates/ml/src/mlp.rs:
crates/ml/src/mscn.rs:
crates/ml/src/scaling.rs:
crates/ml/src/serialize.rs:
crates/ml/src/train.rs:
