/root/repo/target/debug/deps/tab3_attr_sel-69a853c198982a17.d: crates/bench/src/bin/tab3_attr_sel.rs

/root/repo/target/debug/deps/tab3_attr_sel-69a853c198982a17: crates/bench/src/bin/tab3_attr_sel.rs

crates/bench/src/bin/tab3_attr_sel.rs:
