/root/repo/target/debug/deps/tab6_convergence-4ce43412162f8e78.d: crates/bench/src/bin/tab6_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libtab6_convergence-4ce43412162f8e78.rmeta: crates/bench/src/bin/tab6_convergence.rs Cargo.toml

crates/bench/src/bin/tab6_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
