/root/repo/target/debug/deps/qfe-420d585889bb4892.d: src/lib.rs

/root/repo/target/debug/deps/libqfe-420d585889bb4892.rlib: src/lib.rs

/root/repo/target/debug/deps/libqfe-420d585889bb4892.rmeta: src/lib.rs

src/lib.rs:
