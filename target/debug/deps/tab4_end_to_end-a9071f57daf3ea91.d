/root/repo/target/debug/deps/tab4_end_to_end-a9071f57daf3ea91.d: crates/bench/src/bin/tab4_end_to_end.rs

/root/repo/target/debug/deps/tab4_end_to_end-a9071f57daf3ea91: crates/bench/src/bin/tab4_end_to_end.rs

crates/bench/src/bin/tab4_end_to_end.rs:
