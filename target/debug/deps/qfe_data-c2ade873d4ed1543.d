/root/repo/target/debug/deps/qfe_data-c2ade873d4ed1543.d: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_data-c2ade873d4ed1543.rmeta: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/column.rs:
crates/data/src/csv.rs:
crates/data/src/dictionary.rs:
crates/data/src/forest.rs:
crates/data/src/generator.rs:
crates/data/src/histogram.rs:
crates/data/src/imdb.rs:
crates/data/src/sample.rs:
crates/data/src/table.rs:
crates/data/src/voptimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
