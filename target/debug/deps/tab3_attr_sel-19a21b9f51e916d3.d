/root/repo/target/debug/deps/tab3_attr_sel-19a21b9f51e916d3.d: crates/bench/src/bin/tab3_attr_sel.rs

/root/repo/target/debug/deps/tab3_attr_sel-19a21b9f51e916d3: crates/bench/src/bin/tab3_attr_sel.rs

crates/bench/src/bin/tab3_attr_sel.rs:
