/root/repo/target/debug/deps/ml_props-e4579d6d97eb1979.d: tests/ml_props.rs

/root/repo/target/debug/deps/ml_props-e4579d6d97eb1979: tests/ml_props.rs

tests/ml_props.rs:
