/root/repo/target/debug/deps/join_pipeline-a9042ae9eff86558.d: tests/join_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libjoin_pipeline-a9042ae9eff86558.rmeta: tests/join_pipeline.rs Cargo.toml

tests/join_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
