/root/repo/target/debug/deps/fig2_by_num_attributes-6a3a0a8b88e1ee4a.d: crates/bench/src/bin/fig2_by_num_attributes.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_by_num_attributes-6a3a0a8b88e1ee4a.rmeta: crates/bench/src/bin/fig2_by_num_attributes.rs Cargo.toml

crates/bench/src/bin/fig2_by_num_attributes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
