/root/repo/target/debug/deps/fig3_by_num_predicates-bd7dd9d7f2184020.d: crates/bench/src/bin/fig3_by_num_predicates.rs

/root/repo/target/debug/deps/fig3_by_num_predicates-bd7dd9d7f2184020: crates/bench/src/bin/fig3_by_num_predicates.rs

crates/bench/src/bin/fig3_by_num_predicates.rs:
