/root/repo/target/debug/deps/qfe_exec-29ec3a3908be889a.d: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs Cargo.toml

/root/repo/target/debug/deps/libqfe_exec-29ec3a3908be889a.rmeta: crates/exec/src/lib.rs crates/exec/src/bitmap.rs crates/exec/src/count.rs crates/exec/src/eval.rs crates/exec/src/executor.rs crates/exec/src/join.rs crates/exec/src/optimizer.rs Cargo.toml

crates/exec/src/lib.rs:
crates/exec/src/bitmap.rs:
crates/exec/src/count.rs:
crates/exec/src/eval.rs:
crates/exec/src/executor.rs:
crates/exec/src/join.rs:
crates/exec/src/optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
