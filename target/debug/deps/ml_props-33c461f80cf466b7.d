/root/repo/target/debug/deps/ml_props-33c461f80cf466b7.d: tests/ml_props.rs Cargo.toml

/root/repo/target/debug/deps/libml_props-33c461f80cf466b7.rmeta: tests/ml_props.rs Cargo.toml

tests/ml_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
