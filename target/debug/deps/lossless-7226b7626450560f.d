/root/repo/target/debug/deps/lossless-7226b7626450560f.d: tests/lossless.rs

/root/repo/target/debug/deps/lossless-7226b7626450560f: tests/lossless.rs

tests/lossless.rs:
