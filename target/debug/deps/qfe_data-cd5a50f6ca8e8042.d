/root/repo/target/debug/deps/qfe_data-cd5a50f6ca8e8042.d: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

/root/repo/target/debug/deps/qfe_data-cd5a50f6ca8e8042: crates/data/src/lib.rs crates/data/src/column.rs crates/data/src/csv.rs crates/data/src/dictionary.rs crates/data/src/forest.rs crates/data/src/generator.rs crates/data/src/histogram.rs crates/data/src/imdb.rs crates/data/src/sample.rs crates/data/src/table.rs crates/data/src/voptimal.rs

crates/data/src/lib.rs:
crates/data/src/column.rs:
crates/data/src/csv.rs:
crates/data/src/dictionary.rs:
crates/data/src/forest.rs:
crates/data/src/generator.rs:
crates/data/src/histogram.rs:
crates/data/src/imdb.rs:
crates/data/src/sample.rs:
crates/data/src/table.rs:
crates/data/src/voptimal.rs:
