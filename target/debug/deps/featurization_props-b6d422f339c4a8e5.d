/root/repo/target/debug/deps/featurization_props-b6d422f339c4a8e5.d: tests/featurization_props.rs

/root/repo/target/debug/deps/featurization_props-b6d422f339c4a8e5: tests/featurization_props.rs

tests/featurization_props.rs:
