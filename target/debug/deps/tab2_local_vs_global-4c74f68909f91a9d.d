/root/repo/target/debug/deps/tab2_local_vs_global-4c74f68909f91a9d.d: crates/bench/src/bin/tab2_local_vs_global.rs Cargo.toml

/root/repo/target/debug/deps/libtab2_local_vs_global-4c74f68909f91a9d.rmeta: crates/bench/src/bin/tab2_local_vs_global.rs Cargo.toml

crates/bench/src/bin/tab2_local_vs_global.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
