/root/repo/target/debug/deps/sec552_retraining_cost-dc47ab3c60e1575f.d: crates/bench/src/bin/sec552_retraining_cost.rs Cargo.toml

/root/repo/target/debug/deps/libsec552_retraining_cost-dc47ab3c60e1575f.rmeta: crates/bench/src/bin/sec552_retraining_cost.rs Cargo.toml

crates/bench/src/bin/sec552_retraining_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
