//! Learned estimation of grouped-query result sizes (paper Section 6).
//!
//! Uses [`GroupByEncoding`]: any QFT featurizes the selection part, and
//! the binary grouping vector tells the model which attributes group the
//! result. The label is the number of result groups.

use qfe_core::featurize::AttributeSpace;
use qfe_core::featurize::{Featurizer, GroupByEncoding, GroupedQuery};
use qfe_core::QfeError;
use qfe_data::Database;
use qfe_exec::count::grouped_cardinality;
use qfe_ml::matrix::Matrix;
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;

/// A labeled grouped workload.
#[derive(Debug, Clone, Default)]
pub struct LabeledGroupedQueries {
    /// The grouped queries.
    pub queries: Vec<GroupedQuery>,
    /// Number of result groups per query.
    pub group_counts: Vec<f64>,
}

impl LabeledGroupedQueries {
    /// Number of labeled queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Label grouped queries with their exact group counts, dropping empty
/// results.
pub fn label_grouped_queries(db: &Database, queries: Vec<GroupedQuery>) -> LabeledGroupedQueries {
    let mut out = LabeledGroupedQueries::default();
    for g in queries {
        if let Ok(card) = grouped_cardinality(db, &g) {
            if card > 0 {
                out.group_counts.push(card as f64);
                out.queries.push(g);
            }
        }
    }
    out
}

/// A grouped-query cardinality estimator: QFT + grouping bits + model.
pub struct GroupedLearnedEstimator {
    encoding: GroupByEncoding<Box<dyn Featurizer + Send + Sync>>,
    model: Box<dyn Regressor + Send + Sync>,
    scaler: Option<LogScaler>,
}

impl GroupedLearnedEstimator {
    /// Pair a selection featurizer (over `space`) with a model.
    pub fn new(
        featurizer: Box<dyn Featurizer + Send + Sync>,
        space: AttributeSpace,
        model: Box<dyn Regressor + Send + Sync>,
    ) -> Self {
        GroupedLearnedEstimator {
            encoding: GroupByEncoding::new(featurizer, space),
            model,
            scaler: None,
        }
    }

    fn featurize_matrix(&self, queries: &[GroupedQuery]) -> Result<Matrix, QfeError> {
        let mut rows = Vec::with_capacity(queries.len());
        for g in queries {
            rows.push(self.encoding.featurize(g)?.0);
        }
        Ok(Matrix::from_rows(&rows))
    }

    /// Train on labeled grouped queries.
    pub fn fit(&mut self, data: &LabeledGroupedQueries) -> Result<(), QfeError> {
        assert!(!data.is_empty(), "cannot train on an empty workload");
        let x = self.featurize_matrix(&data.queries)?;
        let scaler = LogScaler::fit(&data.group_counts)?;
        let y = scaler.transform_batch(&data.group_counts);
        self.model.fit(&x, &y);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Estimate the number of result groups.
    pub fn estimate(&self, grouped: &GroupedQuery) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 1.0;
        };
        match self.encoding.featurize(grouped) {
            Ok(f) => scaler.inverse(self.model.predict(f.as_slice())),
            Err(_) => 1.0,
        }
    }

    /// Model footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::featurize::UniversalConjunctionEncoding;
    use qfe_core::metrics::q_error;
    use qfe_core::TableId;
    use qfe_data::forest::{generate_forest, ForestConfig};
    use qfe_ml::gbdt::{Gbdt, GbdtConfig};
    use qfe_workload::{generate_grouped, GroupedConfig};

    #[test]
    fn learns_group_counts() {
        let db = generate_forest(&ForestConfig {
            rows: 6_000,
            quantitative_only: true,
            seed: 41,
        });
        let table = TableId(0);
        let space = AttributeSpace::for_table(db.catalog(), table);
        let train = label_grouped_queries(
            &db,
            generate_grouped(db.catalog(), &GroupedConfig::new(table, 2_500, 42)),
        );
        let test = label_grouped_queries(
            &db,
            generate_grouped(db.catalog(), &GroupedConfig::new(table, 300, 43)),
        );
        assert!(train.len() > 800, "train size {}", train.len());
        let mut est = GroupedLearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space.clone(), 16).unwrap()),
            space,
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 80,
                min_samples_leaf: 3,
                ..GbdtConfig::default()
            })),
        );
        est.fit(&train).unwrap();
        let mut errors: Vec<f64> = test
            .queries
            .iter()
            .zip(&test.group_counts)
            .map(|(g, &c)| q_error(c, est.estimate(g)))
            .collect();
        errors.sort_by(f64::total_cmp);
        let median = errors[errors.len() / 2];
        assert!(median < 3.0, "median group-count q-error {median}");
    }

    #[test]
    fn grouping_bits_matter() {
        // The same selection with different GROUP BY sets must produce
        // different estimates once trained (the bits carry signal).
        let db = generate_forest(&ForestConfig {
            rows: 4_000,
            quantitative_only: true,
            seed: 44,
        });
        let table = TableId(0);
        let space = AttributeSpace::for_table(db.catalog(), table);
        let train = label_grouped_queries(
            &db,
            generate_grouped(db.catalog(), &GroupedConfig::new(table, 2_000, 45)),
        );
        let mut est = GroupedLearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space.clone(), 16).unwrap()),
            space,
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 60,
                min_samples_leaf: 3,
                ..GbdtConfig::default()
            })),
        );
        est.fit(&train).unwrap();
        let selection = qfe_core::Query::single_table(table, vec![]);
        // Grouping by cover_type (7 values) vs elevation (~2000 values).
        let by_cover = GroupedQuery::new(
            selection.clone(),
            vec![qfe_core::ColumnRef::new(table, qfe_core::ColumnId(10))],
        );
        let by_elevation = GroupedQuery::new(
            selection,
            vec![qfe_core::ColumnRef::new(table, qfe_core::ColumnId(0))],
        );
        let e_cover = est.estimate(&by_cover);
        let e_elev = est.estimate(&by_elevation);
        assert!(
            e_elev > e_cover * 3.0,
            "estimates should separate: cover {e_cover}, elevation {e_elev}"
        );
    }

    #[test]
    fn untrained_returns_one() {
        let db = generate_forest(&ForestConfig {
            rows: 100,
            quantitative_only: true,
            seed: 46,
        });
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = GroupedLearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space.clone(), 8).unwrap()),
            space,
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        let g = GroupedQuery::new(qfe_core::Query::single_table(TableId(0), vec![]), vec![]);
        assert_eq!(est.estimate(&g), 1.0);
    }

    #[test]
    fn selection_fingerprint_is_stable_for_routing() {
        // Grouped shards are keyed by the selection's canonical
        // fingerprint in the serving registry: two ways of writing the
        // same selection must collide (route to the same shard) and a
        // different selection must not.
        use qfe_core::predicate::{CmpOp, CompoundPredicate, PredicateExpr};
        use qfe_core::{ColumnId, ColumnRef, QueryFingerprint, Value};
        let table = TableId(0);
        let pred = |col: usize, v: i64| CompoundPredicate {
            column: ColumnRef::new(table, ColumnId(col)),
            expr: PredicateExpr::leaf(CmpOp::Le, Value::Int(v)),
        };
        let ordered = qfe_core::Query::single_table(table, vec![pred(0, 5), pred(1, 9)]);
        let reordered = qfe_core::Query::single_table(table, vec![pred(1, 9), pred(0, 5)]);
        let different = qfe_core::Query::single_table(table, vec![pred(0, 6), pred(1, 9)]);
        let group = vec![ColumnRef::new(table, ColumnId(10))];
        let a = GroupedQuery::new(ordered, group.clone());
        let b = GroupedQuery::new(reordered, group.clone());
        let c = GroupedQuery::new(different, group);
        assert_eq!(
            QueryFingerprint::of(&a.query),
            QueryFingerprint::of(&b.query),
            "predicate order must not split a grouped tenant across shards"
        );
        assert_ne!(
            QueryFingerprint::of(&a.query),
            QueryFingerprint::of(&c.query),
            "distinct selections must not collide"
        );
        // And the sub-schema (the coarser routing key) agrees too.
        assert_eq!(a.query.sub_schema(), b.query.sub_schema());
    }
}
