//! PostgreSQL-style baseline estimator.
//!
//! The paper compares against "the cardinality estimator from PostgreSQL
//! version 13.2, essentially independence assumption" (Section 5.2 /
//! Section 7). This implementation mirrors the relevant parts of PG's
//! `selfuncs.c` / `clauselist_selectivity`:
//!
//! * per-column equi-depth histograms plus MCV lists
//!   ([`qfe_data::histogram`]),
//! * per-attribute compound predicates estimated exactly like PG estimates
//!   range pairs: the conjunct's closed range is looked up in the
//!   histogram, `<>` values are subtracted via MCV/equality estimates, and
//!   disjuncts combine with `s1 + s2 − s1·s2`,
//! * independence **across** attributes: selectivities multiply,
//! * key/foreign-key joins via `|R| · |S| / max(nd(R.a), nd(S.b))`.

use std::collections::HashMap;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::interval::Region;
use qfe_core::predicate::{CmpOp, SimplePredicate};
use qfe_core::query::ColumnRef;
use qfe_core::{Query, TableId};
use qfe_data::histogram::ColumnStats;
use qfe_data::Database;

/// The PG-style estimator: histogram + independence assumption.
pub struct PostgresEstimator {
    stats: HashMap<ColumnRef, ColumnStats>,
    row_counts: Vec<f64>,
}

impl PostgresEstimator {
    /// Build statistics over all columns of the database (like `ANALYZE`).
    pub fn analyze(db: &Database, buckets: usize, mcv_count: usize) -> Self {
        let mut stats = HashMap::new();
        let mut row_counts = Vec::new();
        for (ti, table) in db.tables().iter().enumerate() {
            row_counts.push(table.row_count() as f64);
            for (ci, (_, column)) in table.columns.iter().enumerate() {
                if column.is_empty() {
                    continue;
                }
                stats.insert(
                    ColumnRef::new(TableId(ti), qfe_core::ColumnId(ci)),
                    ColumnStats::build(column, buckets, mcv_count),
                );
            }
        }
        PostgresEstimator { stats, row_counts }
    }

    /// Default statistics target (32 buckets, 8 MCVs).
    pub fn analyze_default(db: &Database) -> Self {
        Self::analyze(db, 32, 8)
    }

    /// Selectivity of one conjunct (list of simple predicates on one
    /// attribute): closed-range lookup minus `<>` equality estimates —
    /// PG's range-pair special case generalized.
    fn conjunct_selectivity(&self, col: ColumnRef, preds: &[SimplePredicate]) -> f64 {
        let Some(stats) = self.stats.get(&col) else {
            return 1.0;
        };
        let region = Region::from_conjunct(preds, &stats.domain);
        if region.is_empty() {
            return 0.0;
        }
        let hist = &stats.histogram;
        // P(lo <= v <= hi) = P(v <= hi) - P(v < lo).
        let le_hi = hist.selectivity(&SimplePredicate::new(CmpOp::Le, region.hi));
        let lt_lo = hist.selectivity(&SimplePredicate::new(CmpOp::Lt, region.lo));
        let mut sel = (le_hi - lt_lo).max(0.0);
        for &not in &region.nots {
            sel -= hist.selectivity(&SimplePredicate::new(CmpOp::Eq, not));
        }
        sel.clamp(0.0, 1.0)
    }

    /// Selectivity of a compound predicate: DNF, disjuncts combined with
    /// `s1 + s2 − s1·s2` (PG's `clauselist_selectivity` OR handling).
    fn compound_selectivity(&self, col: ColumnRef, expr: &qfe_core::PredicateExpr) -> f64 {
        let Ok(dnf) = expr.to_dnf() else {
            return 1.0; // conservatively no restriction
        };
        let mut sel = 0.0f64;
        for conjunct in dnf {
            let s = self.conjunct_selectivity(col, &conjunct);
            sel = sel + s - sel * s;
        }
        sel.clamp(0.0, 1.0)
    }
}

impl CardinalityEstimator for PostgresEstimator {
    fn name(&self) -> String {
        "postgres".into()
    }

    fn estimate(&self, query: &Query) -> f64 {
        // Base cardinality: product of table sizes.
        let mut card: f64 = query
            .sub_schema()
            .tables()
            .iter()
            .map(|t| self.row_counts.get(t.0).copied().unwrap_or(1.0))
            .product();
        // Selection selectivities, independent across attributes.
        for cp in &query.predicates {
            card *= self.compound_selectivity(cp.column, &cp.expr);
        }
        // FK joins: 1 / max(nd(left), nd(right)) each.
        for j in &query.joins {
            let nd_left = self.stats.get(&j.left).map_or(1.0, |s| s.distinct as f64);
            let nd_right = self.stats.get(&j.right).map_or(1.0, |s| s.distinct as f64);
            card /= nd_left.max(nd_right).max(1.0);
        }
        card.max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.stats
            .values()
            .map(|s| s.histogram.memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::{CompoundPredicate, PredicateExpr};
    use qfe_core::query::JoinPredicate;
    use qfe_core::{ColumnId, SimplePredicate};
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::Column;
    use qfe_exec::true_cardinality;

    fn uniform_db() -> Database {
        // Two independent uniform columns: independence assumption is
        // exact here.
        let a: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..10_000).map(|i| (i / 100) % 100).collect();
        Database::new(
            vec![Table::new(
                "t",
                vec![("a".into(), Column::Int(a)), ("b".into(), Column::Int(b))],
            )],
            &[],
        )
    }

    fn correlated_db() -> Database {
        // b == a: independence underestimates conjunctions badly.
        let a: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let b = a.clone();
        Database::new(
            vec![Table::new(
                "t",
                vec![("a".into(), Column::Int(a)), ("b".into(), Column::Int(b))],
            )],
            &[],
        )
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn uniform_independent_case_is_accurate() {
        let db = uniform_db();
        let est = PostgresEstimator::analyze_default(&db);
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(
                    col(0),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 10),
                        SimplePredicate::new(CmpOp::Lt, 30),
                    ],
                ),
                CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Lt, 50)]),
            ],
        );
        let truth = true_cardinality(&db, &q).unwrap() as f64;
        let estimate = est.estimate(&q);
        let q_err = (truth / estimate).max(estimate / truth);
        assert!(
            q_err < 1.5,
            "q-error {q_err} (truth {truth}, est {estimate})"
        );
    }

    #[test]
    fn correlation_breaks_independence() {
        // The defining weakness the paper exploits: correlated attributes.
        let db = correlated_db();
        let est = PostgresEstimator::analyze_default(&db);
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(col(0), vec![SimplePredicate::new(CmpOp::Lt, 10)]),
                CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Lt, 10)]),
            ],
        );
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 1000
        let estimate = est.estimate(&q); // ≈ 10000 · 0.1 · 0.1 = 100
        let q_err = (truth / estimate).max(estimate / truth);
        assert!(q_err > 5.0, "independence should err here, q-error {q_err}");
    }

    #[test]
    fn disjunction_combination() {
        let db = uniform_db();
        let est = PostgresEstimator::analyze_default(&db);
        // a < 10 OR a >= 90: two disjoint 10% ranges → ~20%.
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Lt, 10),
                    PredicateExpr::leaf(CmpOp::Ge, 90),
                ]),
            }],
        );
        let truth = true_cardinality(&db, &q).unwrap() as f64;
        let estimate = est.estimate(&q);
        let q_err = (truth / estimate).max(estimate / truth);
        // s1+s2−s1·s2 slightly overlaps-corrects, still close on uniform data.
        assert!(
            q_err < 1.6,
            "q-error {q_err} (truth {truth}, est {estimate})"
        );
    }

    #[test]
    fn not_equal_is_subtracted() {
        let db = uniform_db();
        let est = PostgresEstimator::analyze_default(&db);
        let with_ne = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 0),
                    SimplePredicate::new(CmpOp::Le, 9),
                    SimplePredicate::new(CmpOp::Ne, 5),
                ],
            )],
        );
        let without = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 0),
                    SimplePredicate::new(CmpOp::Le, 9),
                ],
            )],
        );
        assert!(est.estimate(&with_ne) < est.estimate(&without));
    }

    #[test]
    fn fk_join_estimate() {
        let dim = Table::new("dim", vec![("id".into(), Column::Int((0..100).collect()))]);
        let fact = Table::new(
            "fact",
            vec![(
                "dim_id".into(),
                Column::Int((0..1000).map(|i| i % 100).collect()),
            )],
        );
        let db = Database::new(
            vec![dim, fact],
            &[ForeignKey {
                from: ("fact".into(), "dim_id".into()),
                to: ("dim".into(), "id".into()),
            }],
        );
        let est = PostgresEstimator::analyze_default(&db);
        let q = Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![],
        };
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 1000
        let estimate = est.estimate(&q); // 100·1000/100 = 1000
        assert!((estimate - truth).abs() / truth < 0.05, "est {estimate}");
    }

    #[test]
    fn empty_range_estimates_minimum() {
        let db = uniform_db();
        let est = PostgresEstimator::analyze_default(&db);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Gt, 90),
                    SimplePredicate::new(CmpOp::Lt, 10),
                ],
            )],
        );
        assert_eq!(est.estimate(&q), 1.0);
    }

    #[test]
    fn memory_is_reported() {
        let db = uniform_db();
        let est = PostgresEstimator::analyze_default(&db);
        assert!(est.memory_bytes() > 0);
        assert_eq!(est.name(), "postgres");
    }
}
