//! Bernoulli-sampling estimator.
//!
//! Section 5.2: "*Sampling* is a 0.1 % Bernoulli sample of the data. The
//! sample is drawn independently per query." For single tables the
//! estimate is `|R'(Q)| / p`; for joins, each table is sampled and the
//! sampled join count is scaled by `p^{-k}` — which is what produces the
//! heavy tail errors the paper observes ("it works in most cases but has
//! large tail errors").

use std::cell::Cell;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::predicate::CompoundPredicate;
use qfe_core::Query;
use qfe_data::sample::BernoulliSample;
use qfe_data::Database;

use qfe_exec::eval::row_matches;
use qfe_exec::join::HashJoinTable;

/// Per-query Bernoulli sampling over a database.
pub struct SamplingEstimator<'a> {
    db: &'a Database,
    rate: f64,
    base_seed: u64,
    counter: Cell<u64>,
    /// Track the size of the most recent samples for memory reporting.
    last_sample_bytes: Cell<usize>,
}

impl<'a> SamplingEstimator<'a> {
    /// Create with sampling rate `rate` (the paper uses `0.001`).
    pub fn new(db: &'a Database, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        SamplingEstimator {
            db,
            rate,
            base_seed: seed,
            counter: Cell::new(0),
            last_sample_bytes: Cell::new(0),
        }
    }

    fn next_seed(&self) -> u64 {
        let c = self.counter.get();
        self.counter.set(c + 1);
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(c)
    }

    /// Sampled qualifying rows of one table under the query's predicates.
    fn sample_table(&self, query: &Query, table: qfe_core::TableId) -> Vec<u32> {
        let t = self.db.table(table);
        let sample = BernoulliSample::draw(t.row_count(), self.rate, self.next_seed());
        self.last_sample_bytes
            .set(self.last_sample_bytes.get() + sample.memory_bytes());
        let preds: Vec<&CompoundPredicate> = query
            .predicates
            .iter()
            .filter(|cp| cp.column.table == table)
            .collect();
        sample
            .rows()
            .iter()
            .copied()
            .filter(|&r| row_matches(t, &preds, r as usize))
            .collect()
    }
}

impl CardinalityEstimator for SamplingEstimator<'_> {
    fn name(&self) -> String {
        "sampling".into()
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.last_sample_bytes.set(0);
        let tables = query.sub_schema();
        if tables.len() == 1 {
            let qualifying = self.sample_table(query, tables.tables()[0]).len();
            return (qualifying as f64 / self.rate).max(1.0);
        }
        // Join estimation: join the per-table samples along the join tree
        // (tree-shaped queries only, like the counting oracle) and scale by
        // p^{-k}.
        let sampled: Vec<(qfe_core::TableId, Vec<u32>)> = tables
            .tables()
            .iter()
            .map(|&t| (t, self.sample_table(query, t)))
            .collect();
        // Count the sampled join with per-key count maps, rooted at the
        // first table.
        let root = tables.tables()[0];
        let mut visited = vec![root];
        let count = self.count_sampled(query, &sampled, root, None, &mut visited);
        let scale = self.rate.powi(tables.len() as i32);
        (count as f64 / scale).max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.last_sample_bytes.get()
    }
}

impl SamplingEstimator<'_> {
    fn count_sampled(
        &self,
        query: &Query,
        sampled: &[(qfe_core::TableId, Vec<u32>)],
        table: qfe_core::TableId,
        parent_key_col: Option<qfe_core::ColumnId>,
        visited: &mut Vec<qfe_core::TableId>,
    ) -> u64 {
        let t = self.db.table(table);
        // A table missing from the sample set contributes no rows — an
        // empty count, not a panic (the caller samples every query table,
        // so this is defensive).
        let Some((_, rows)) = sampled.iter().find(|(tt, _)| *tt == table) else {
            return 0;
        };
        // Children maps: key → combination count.
        let mut children: Vec<(qfe_core::ColumnId, std::collections::HashMap<i64, u64>)> =
            Vec::new();
        for j in &query.joins {
            let (my_col, other) = if j.left.table == table && !visited.contains(&j.right.table) {
                (j.left.column, j.right)
            } else if j.right.table == table && !visited.contains(&j.left.table) {
                (j.right.column, j.left)
            } else {
                continue;
            };
            visited.push(other.table);
            let sub = self.count_sampled_map(query, sampled, other.table, other.column, visited);
            children.push((my_col, sub));
        }
        let mut total = 0u64;
        for &r in rows {
            let mut mult = 1u64;
            for (col, map) in &children {
                let key = t.column(*col).get_i64(r as usize);
                match map.get(&key) {
                    Some(&c) => mult *= c,
                    None => {
                        mult = 0;
                        break;
                    }
                }
            }
            let _ = parent_key_col;
            total += mult;
        }
        total
    }

    fn count_sampled_map(
        &self,
        query: &Query,
        sampled: &[(qfe_core::TableId, Vec<u32>)],
        table: qfe_core::TableId,
        key_col: qfe_core::ColumnId,
        visited: &mut Vec<qfe_core::TableId>,
    ) -> std::collections::HashMap<i64, u64> {
        let t = self.db.table(table);
        // Defensive, as in `count_sampled`: missing table → empty map.
        let Some((_, rows)) = sampled.iter().find(|(tt, _)| *tt == table) else {
            return std::collections::HashMap::new();
        };
        let mut children: Vec<(qfe_core::ColumnId, std::collections::HashMap<i64, u64>)> =
            Vec::new();
        for j in &query.joins {
            let (my_col, other) = if j.left.table == table && !visited.contains(&j.right.table) {
                (j.left.column, j.right)
            } else if j.right.table == table && !visited.contains(&j.left.table) {
                (j.right.column, j.left)
            } else {
                continue;
            };
            visited.push(other.table);
            let sub = self.count_sampled_map(query, sampled, other.table, other.column, visited);
            children.push((my_col, sub));
        }
        let mut out = std::collections::HashMap::new();
        for &r in rows {
            let mut mult = 1u64;
            for (col, map) in &children {
                let key = t.column(*col).get_i64(r as usize);
                match map.get(&key) {
                    Some(&c) => mult *= c,
                    None => {
                        mult = 0;
                        break;
                    }
                }
            }
            if mult > 0 {
                let key = t.column(key_col).get_i64(r as usize);
                *out.entry(key).or_insert(0) += mult;
            }
        }
        out
    }
}

/// Kept public for benches: a sampled two-table join count via an explicit
/// hash join, cross-checking the count-map path.
pub fn sampled_two_way_join_count(
    db: &Database,
    left_rows: &[u32],
    right_rows: &[u32],
    join: &qfe_core::query::JoinPredicate,
) -> u64 {
    let left_col = db.table(join.left.table).column(join.left.column);
    let right_col = db.table(join.right.table).column(join.right.column);
    let ht = HashJoinTable::build(left_rows.iter().map(|&r| left_col.get_i64(r as usize)));
    right_rows
        .iter()
        .map(|&r| ht.probe_count(right_col.get_i64(r as usize)) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::{CmpOp, SimplePredicate};
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::Column;
    use qfe_exec::true_cardinality;

    fn db() -> Database {
        let a: Vec<i64> = (0..100_000).map(|i| i % 1000).collect();
        Database::new(
            vec![Table::new("t", vec![("a".into(), Column::Int(a))])],
            &[],
        )
    }

    #[test]
    fn unselective_predicate_is_estimated_well() {
        let db = db();
        let est = SamplingEstimator::new(&db, 0.01, 7);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Lt, 500)],
            )],
        );
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 50 000
        let e = est.estimate(&q);
        let q_err = (truth / e).max(e / truth);
        assert!(q_err < 1.2, "q-error {q_err}");
    }

    #[test]
    fn selective_predicate_has_large_error_risk() {
        // The paper's known sampling weakness: selective predicates.
        // With rate 0.001 and a truth of ~10 rows the sample usually holds
        // 0 of them, giving estimate 1 (max q-error = truth).
        let db = db();
        let est = SamplingEstimator::new(&db, 0.001, 7);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 0),
                    SimplePredicate::new(CmpOp::Lt, 1),
                ],
            )],
        );
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 100
        let mut worst: f64 = 1.0;
        for _ in 0..20 {
            let e = est.estimate(&q);
            worst = worst.max((truth / e).max(e / truth));
        }
        assert!(worst > 3.0, "expected tail errors, worst {worst}");
    }

    #[test]
    fn estimates_vary_per_query_draw() {
        let db = db();
        let est = SamplingEstimator::new(&db, 0.001, 7);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Lt, 100)],
            )],
        );
        let estimates: Vec<f64> = (0..5).map(|_| est.estimate(&q)).collect();
        assert!(
            estimates.windows(2).any(|w| w[0] != w[1]),
            "independent per-query samples should differ: {estimates:?}"
        );
    }

    fn join_db() -> Database {
        let dim = Table::new("dim", vec![("id".into(), Column::Int((0..1000).collect()))]);
        let fact = Table::new(
            "fact",
            vec![(
                "dim_id".into(),
                Column::Int((0..50_000).map(|i| i % 1000).collect()),
            )],
        );
        Database::new(
            vec![dim, fact],
            &[ForeignKey {
                from: ("fact".into(), "dim_id".into()),
                to: ("dim".into(), "id".into()),
            }],
        )
    }

    #[test]
    fn join_estimate_is_unbiased_at_high_rate() {
        let db = join_db();
        let est = SamplingEstimator::new(&db, 0.2, 3);
        let q = Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![],
        };
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 50 000
        let mean: f64 = (0..10).map(|_| est.estimate(&q)).sum::<f64>() / 10.0;
        let q_err = (truth / mean).max(mean / truth);
        assert!(q_err < 1.5, "q-error of mean {q_err} ({mean} vs {truth})");
    }

    #[test]
    fn hash_join_cross_check() {
        let db = join_db();
        let left: Vec<u32> = (0..1000).collect();
        let right: Vec<u32> = (0..50_000).collect();
        let join = JoinPredicate {
            left: ColumnRef::new(TableId(0), ColumnId(0)),
            right: ColumnRef::new(TableId(1), ColumnId(0)),
        };
        assert_eq!(
            sampled_two_way_join_count(&db, &left, &right, &join),
            50_000
        );
    }

    #[test]
    fn memory_reflects_last_samples() {
        let db = db();
        let est = SamplingEstimator::new(&db, 0.01, 1);
        let q = Query::single_table(TableId(0), vec![]);
        let _ = est.estimate(&q);
        assert!(est.memory_bytes() > 0);
        assert_eq!(est.name(), "sampling");
    }
}
