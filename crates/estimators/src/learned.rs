//! Learned estimator: a QFT × model combination.
//!
//! This is the composition the whole paper is about: any
//! [`Featurizer`] (the QFT) is paired with any [`Regressor`] (the ML
//! model). The featurizer is the plug-in layer of Section 4 — swapping it
//! requires no change to the model beyond the input width.

use std::sync::atomic::{AtomicU64, Ordering};

use qfe_core::estimator::{CardinalityEstimator, Estimate};
use qfe_core::featurize::{BinnedFeatureMatrix, FeatureMatrix, Featurizer};
use qfe_core::{EstimateError, QfeError, Query};
use qfe_ml::matrix::Matrix;
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;

use crate::labels::LabeledQueries;

/// Magic header of the learned-estimator snapshot frame (see
/// [`LearnedEstimator::snapshot_bytes`]).
const SNAPSHOT_MAGIC: &[u8; 8] = b"QFELE001";

/// A trained (or trainable) QFT × model cardinality estimator.
pub struct LearnedEstimator {
    featurizer: Box<dyn Featurizer + Send + Sync>,
    model: Box<dyn Regressor + Send + Sync>,
    scaler: Option<LogScaler>,
    /// Times [`estimate`](CardinalityEstimator::estimate) degraded to the
    /// conservative `1.0` instead of a model prediction. The silent part
    /// of that fallback is the dangerous part — this counter makes it
    /// observable, and [`try_estimate`](CardinalityEstimator::try_estimate)
    /// makes it typed.
    fallbacks: AtomicU64,
}

impl LearnedEstimator {
    /// Pair a featurizer with an (untrained) model.
    pub fn new(
        featurizer: Box<dyn Featurizer + Send + Sync>,
        model: Box<dyn Regressor + Send + Sync>,
    ) -> Self {
        LearnedEstimator {
            featurizer,
            model,
            scaler: None,
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Featurize a workload into a dense matrix.
    ///
    /// Built through the zero-copy [`FeatureMatrix`] arena: one
    /// allocation for the whole workload, handed to [`Matrix`] without a
    /// row-by-row copy. All-or-nothing: the first featurization failure
    /// aborts the build (use the batched estimation path for per-row
    /// error tolerance).
    pub fn featurize_matrix(&self, queries: &[Query]) -> Result<Matrix, QfeError> {
        let (rows, cols, data, errors) =
            FeatureMatrix::build(self.featurizer.as_ref(), queries).into_raw();
        if let Some(e) = errors.into_iter().flatten().next() {
            return Err(e);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Train on labeled queries.
    ///
    /// # Errors
    /// Fails if any training query cannot be featurized by the configured
    /// QFT (e.g. disjunctions under `conjunctive`).
    pub fn fit(&mut self, data: &LabeledQueries) -> Result<(), QfeError> {
        assert!(!data.is_empty(), "cannot train on an empty workload");
        let x = self.featurize_matrix(&data.queries)?;
        let scaler = LogScaler::fit(&data.cardinalities)?;
        let y = scaler.transform_batch(&data.cardinalities);
        self.model.fit(&x, &y);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Interruptible training: like [`fit`](Self::fit), but the model's
    /// [`try_fit_within`](Regressor::try_fit_within) is used, so
    /// `should_continue` is polled at the model's safe points (between
    /// boosting rounds / epochs) and a `false` aborts with
    /// [`qfe_ml::train::TrainError::Interrupted`] — the estimator is left
    /// exactly as it was (an already-trained model keeps serving its old
    /// weights, an untrained one stays untrained). This is the entry
    /// point a budgeted background-retraining loop calls: the budget
    /// closure bounds training latency without poisoning the estimator.
    pub fn fit_within(
        &mut self,
        data: &LabeledQueries,
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<(), QfeError> {
        if data.is_empty() {
            return Err(qfe_ml::train::TrainError::EmptyTrainingSet.into());
        }
        let x = self.featurize_matrix(&data.queries)?;
        let scaler = LogScaler::fit(&data.cardinalities)?;
        let y = scaler.transform_batch(&data.cardinalities);
        self.model
            .try_fit_within(&x, &y, should_continue)
            .map_err(QfeError::from)?;
        // Only publish the scaler once the model actually trained — on an
        // interrupted run the estimator must be byte-for-byte unchanged.
        self.scaler = Some(scaler);
        Ok(())
    }

    /// The underlying featurizer.
    pub fn featurizer(&self) -> &dyn Featurizer {
        self.featurizer.as_ref()
    }

    /// True once `fit` has completed.
    pub fn is_trained(&self) -> bool {
        self.scaler.is_some()
    }

    /// How many times [`estimate`](CardinalityEstimator::estimate) has
    /// degraded to the conservative `1.0` fallback (untrained model,
    /// unsupported query, or non-finite model output).
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Rebuild a trained estimator from a snapshot produced by
    /// [`snapshot_bytes`](CardinalityEstimator::snapshot_bytes), pairing
    /// the restored model + scaler with a freshly constructed featurizer.
    ///
    /// The featurizer itself is deterministic configuration (an attribute
    /// space and a budget), so it is *not* serialized — the caller
    /// reconstructs it from the catalog exactly as at first training. The
    /// snapshot records the featurizer's name and this constructor
    /// rejects a mismatch, so a checkpoint written under one QFT can
    /// never be silently served through another.
    ///
    /// # Errors
    /// [`QfeError::Training`] on any corruption of the snapshot frame
    /// (bad magic, checksum mismatch, truncation, structurally invalid
    /// model bytes) and [`QfeError::InvalidConfig`] when the provided
    /// featurizer does not match the one the snapshot was taken under.
    pub fn from_snapshot(
        featurizer: Box<dyn Featurizer + Send + Sync>,
        bytes: &[u8],
    ) -> Result<Self, QfeError> {
        use qfe_ml::serialize::{fnv1a64, Reader};
        let corrupt =
            |what: &str| QfeError::Training(format!("corrupt estimator snapshot: {what}"));
        if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let frame = SNAPSHOT_MAGIC.len() + 8;
        if bytes.len() < frame {
            return Err(corrupt("truncated checksum"));
        }
        let c = &bytes[SNAPSHOT_MAGIC.len()..frame];
        let stored = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let payload = &bytes[frame..];
        if fnv1a64(payload) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        let mut r = Reader::new(payload);
        let name_len = r.u32().map_err(|_| corrupt("truncated"))? as usize;
        if name_len > 4096 {
            return Err(corrupt("implausible featurizer name length"));
        }
        let name_bytes = r.bytes(name_len).map_err(|_| corrupt("truncated"))?;
        let qft = std::str::from_utf8(name_bytes).map_err(|_| corrupt("non-utf8 QFT name"))?;
        if qft != featurizer.name() {
            return Err(QfeError::InvalidConfig(format!(
                "snapshot was taken under QFT '{}' but '{}' was provided",
                qft,
                featurizer.name()
            )));
        }
        let dim = r.u32().map_err(|_| corrupt("truncated"))? as usize;
        if dim != featurizer.dim() {
            return Err(QfeError::ShapeMismatch {
                expected: dim,
                actual: featurizer.dim(),
            });
        }
        let log_min = r.f64().map_err(|_| corrupt("truncated"))?;
        let log_max = r.f64().map_err(|_| corrupt("truncated"))?;
        let scaler = LogScaler::from_parts(log_min, log_max)?;
        let model_len = r.u32().map_err(|_| corrupt("truncated"))? as usize;
        let model_bytes = r.bytes(model_len).map_err(|_| corrupt("truncated"))?;
        if !r.finished() {
            return Err(corrupt("trailing bytes"));
        }
        let model = qfe_ml::serialize::regressor_from_bytes(model_bytes)
            .map_err(|e| QfeError::Training(format!("corrupt estimator snapshot: {e}")))?;
        Ok(LearnedEstimator {
            featurizer,
            model,
            scaler: Some(scaler),
            fallbacks: AtomicU64::new(0),
        })
    }

    /// Featurize + predict a whole batch, choosing the cheapest path the
    /// model supports.
    ///
    /// When the model publishes a [`feature_binner`](Regressor::
    /// feature_binner) (compiled GBDT), the workload is featurized
    /// straight into a `u16` [`BinnedFeatureMatrix`] — half the arena
    /// bytes of the `f32` path and the model then walks its flattened
    /// trees on integer compares. The quantization contract (`bin(v) <= k
    /// ⇔ v <= cut[k]`) makes the predictions bit-identical to the `f32`
    /// path, so callers never observe which path ran. Any refusal
    /// (`predict_batch_binned` → `None`) falls through to the dense
    /// `f32` pipeline.
    fn batch_predictions(&self, queries: &[Query]) -> (Vec<f32>, Vec<Option<QfeError>>) {
        if let Some(binner) = self.model.feature_binner() {
            if binner.features() == self.featurizer.dim() {
                let m = BinnedFeatureMatrix::build(self.featurizer.as_ref(), binner, queries);
                let (rows, _cols, bins, errors) = m.into_raw();
                if let Some(preds) = self.model.predict_batch_binned(rows, &bins) {
                    return (preds, errors);
                }
                // The model declined the binned arena (e.g. a wrapper
                // delegating `feature_binner` but not the predict hook):
                // rebuild on the f32 path below rather than guessing.
            }
        }
        let (rows, cols, data, errors) =
            FeatureMatrix::build(self.featurizer.as_ref(), queries).into_raw();
        let x = Matrix::from_vec(rows, cols, data);
        (self.model.predict_batch(&x), errors)
    }
}

impl CardinalityEstimator for LearnedEstimator {
    fn name(&self) -> String {
        format!("{} + {}", self.model.model_name(), self.featurizer.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        // The infallible path is defined as "try, and degrade to the most
        // conservative legal estimate on any typed failure" — same
        // classification as `try_estimate`, but the degradation is
        // counted rather than silent.
        match self.try_estimate(query) {
            Ok(est) => est.value,
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                1.0
            }
        }
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let Some(scaler) = &self.scaler else {
            return Err(EstimateError::Untrained {
                estimator: self.name(),
            });
        };
        let features = self
            .featurizer
            .featurize(query)
            .map_err(EstimateError::from)?;
        let value = scaler.inverse(self.model.predict(features.as_slice()));
        if !value.is_finite() || value < 1.0 {
            return Err(EstimateError::NonFinite {
                estimator: self.name(),
                value,
            });
        }
        Ok(Estimate::primary(value, self.name()))
    }

    /// One featurization pass into a contiguous arena, one model forward
    /// over the whole batch — this is the win the batched execution path
    /// exists for. With a compiled model the arena is the quantized
    /// [`BinnedFeatureMatrix`] (`u16` bin ids, integer tree traversal);
    /// otherwise the dense `f32` [`FeatureMatrix`] → [`Matrix`] pipeline
    /// runs (`batch_predictions` picks per call). Rows
    /// that fail to featurize stay zero-filled so the arena converts
    /// without copying; their predictions are computed and discarded,
    /// which is cheaper than compacting the matrix in the common all-ok
    /// case. Row-for-row equivalent to
    /// [`try_estimate`](Self::try_estimate): same errors, bit-identical
    /// values on both paths.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        let Some(scaler) = &self.scaler else {
            return queries
                .iter()
                .map(|_| {
                    Err(EstimateError::Untrained {
                        estimator: self.name(),
                    })
                })
                .collect();
        };
        if queries.is_empty() {
            return Vec::new();
        }
        let (preds, errors) = self.batch_predictions(queries);
        errors
            .into_iter()
            .zip(preds)
            .map(|(err, y)| {
                if let Some(e) = err {
                    return Err(EstimateError::from(e));
                }
                let value = scaler.inverse(y);
                if !value.is_finite() || value < 1.0 {
                    return Err(EstimateError::NonFinite {
                        estimator: self.name(),
                        value,
                    });
                }
                Ok(Estimate::primary(value, self.name()))
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }

    /// Snapshot layout, decodable by
    /// [`LearnedEstimator::from_snapshot`] (little-endian):
    ///
    /// ```text
    /// magic     "QFELE001"                8 bytes
    /// checksum  FNV-1a-64 of the payload  8
    /// payload:
    ///   qft name: len u32 + utf8 bytes
    ///   feature dim u32
    ///   scaler log_min f64, log_max f64
    ///   model: len u32 + checksummed model frame (QFEGB002/QFENN001)
    /// ```
    ///
    /// `None` until trained, or when the model family has no serializer
    /// (see [`Regressor::to_bytes`]).
    fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        let scaler = self.scaler.as_ref()?;
        let model = self.model.to_bytes()?;
        let qft = self.featurizer.name();
        let (log_min, log_max) = scaler.to_parts();
        let mut payload = Vec::with_capacity(4 + qft.len() + 4 + 16 + 4 + model.len());
        payload.extend_from_slice(&(qft.len() as u32).to_le_bytes());
        payload.extend_from_slice(qft.as_bytes());
        payload.extend_from_slice(&(self.featurizer.dim() as u32).to_le_bytes());
        payload.extend_from_slice(&log_min.to_le_bytes());
        payload.extend_from_slice(&log_max.to_le_bytes());
        payload.extend_from_slice(&(model.len() as u32).to_le_bytes());
        payload.extend_from_slice(&model);
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&qfe_ml::serialize::fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_queries;
    use qfe_core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::Table;
    use qfe_data::{Column, Database};
    use qfe_ml::gbdt::{Gbdt, GbdtConfig};

    fn db() -> Database {
        Database::new(
            vec![Table::new(
                "t",
                vec![(
                    "a".into(),
                    Column::Int((0..1000).map(|i| i % 100).collect()),
                )],
            )],
            &[],
        )
    }

    fn range_query(lo: i64, hi: i64) -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![
                    SimplePredicate::new(CmpOp::Ge, lo),
                    SimplePredicate::new(CmpOp::Le, hi),
                ],
            )],
        )
    }

    fn trained_estimator(db: &Database) -> LearnedEstimator {
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let mut est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 32).unwrap()),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 60,
                min_samples_leaf: 2,
                ..GbdtConfig::default()
            })),
        );
        let mut queries = Vec::new();
        for lo in 0..90 {
            for width in [1, 5, 10, 30, 60] {
                queries.push(range_query(lo, lo + width));
            }
        }
        let data = label_queries(db, queries);
        est.fit(&data).unwrap();
        est
    }

    #[test]
    fn learns_range_cardinalities() {
        let db = db();
        let est = trained_estimator(&db);
        // In-distribution test queries.
        for (lo, hi) in [(5, 20), (30, 35), (10, 70)] {
            let q = range_query(lo, hi);
            let truth = qfe_exec::true_cardinality(&db, &q).unwrap() as f64;
            let e = est.estimate(&q);
            let q_err = (truth / e).max(e / truth);
            assert!(
                q_err < 2.0,
                "({lo},{hi}): q-error {q_err} (truth {truth}, est {e})"
            );
        }
    }

    #[test]
    fn name_combines_model_and_qft() {
        let db = db();
        let est = trained_estimator(&db);
        assert_eq!(est.name(), "GB + conjunctive");
        assert!(est.is_trained());
        assert!(est.memory_bytes() > 0);
    }

    #[test]
    fn batch_estimates_match_single() {
        let db = db();
        let est = trained_estimator(&db);
        let queries = vec![range_query(5, 20), range_query(50, 90)];
        let batch = est.estimate_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            let e = r.as_ref().unwrap();
            assert_eq!(e.value, est.estimate(q), "batch diverged from singleton");
            assert_eq!(e.estimator, est.name());
            assert!(!e.fell_back());
        }
    }

    #[test]
    fn batch_failures_are_per_row_not_poisonous() {
        let db = db();
        let est = trained_estimator(&db);
        let queries = vec![range_query(5, 20), disjunctive_query(), range_query(50, 90)];
        let batch = est.estimate_batch(&queries);
        assert_eq!(
            batch[1].as_ref().unwrap_err().kind(),
            qfe_core::error::EstimateErrorKind::UnsupportedQuery,
            "{:?}",
            batch[1]
        );
        // The bad row must not disturb its batch-mates.
        assert_eq!(batch[0].as_ref().unwrap().value, est.estimate(&queries[0]));
        assert_eq!(batch[2].as_ref().unwrap().value, est.estimate(&queries[2]));
        // And the empty batch stays empty.
        assert!(est.estimate_batch(&[]).is_empty());
    }

    #[test]
    fn unsupported_query_estimates_one() {
        let db = db();
        let est = trained_estimator(&db);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(0)),
                expr: qfe_core::PredicateExpr::Or(vec![
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 1),
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert_eq!(est.estimate(&q), 1.0);
    }

    #[test]
    fn untrained_estimator_returns_one() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        assert_eq!(est.estimate(&range_query(0, 10)), 1.0);
        assert!(!est.is_trained());
    }

    fn disjunctive_query() -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(0)),
                expr: qfe_core::PredicateExpr::Or(vec![
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 1),
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        )
    }

    #[test]
    fn try_estimate_classifies_untrained() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        let err = est.try_estimate(&range_query(0, 10)).unwrap_err();
        assert!(
            matches!(err, qfe_core::EstimateError::Untrained { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn try_estimate_classifies_unsupported_query() {
        let db = db();
        let est = trained_estimator(&db);
        let err = est.try_estimate(&disjunctive_query()).unwrap_err();
        assert_eq!(
            err.kind(),
            qfe_core::error::EstimateErrorKind::UnsupportedQuery,
            "{err:?}"
        );
    }

    #[test]
    fn try_estimate_success_carries_provenance() {
        let db = db();
        let est = trained_estimator(&db);
        let e = est.try_estimate(&range_query(5, 20)).unwrap();
        assert!(e.value.is_finite() && e.value >= 1.0);
        assert_eq!(e.estimator, "GB + conjunctive");
        assert!(!e.fell_back());
    }

    #[test]
    fn fallbacks_are_counted_not_silent() {
        let db = db();
        let est = trained_estimator(&db);
        assert_eq!(est.fallback_count(), 0);
        let _ = est.estimate(&range_query(5, 20)); // model answers: no fallback
        assert_eq!(est.fallback_count(), 0);
        assert_eq!(est.estimate(&disjunctive_query()), 1.0);
        assert_eq!(est.estimate(&disjunctive_query()), 1.0);
        assert_eq!(est.fallback_count(), 2);
    }

    #[test]
    fn estimate_batch_before_fit_is_a_typed_error() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        let batch = est.estimate_batch(&[range_query(0, 10), range_query(5, 20)]);
        assert_eq!(batch.len(), 2);
        for r in &batch {
            assert!(matches!(r, Err(EstimateError::Untrained { .. })), "{r:?}");
        }
    }

    #[test]
    fn fit_within_interruption_leaves_the_estimator_unchanged() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let mut est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 10,
                ..GbdtConfig::default()
            })),
        );
        let data = label_queries(&db, (0..40).map(|i| range_query(i, i + 10)).collect());
        // A budget that expires immediately: the estimator must stay
        // untrained (no scaler published, typed Untrained on estimate).
        let err = est.fit_within(&data, &mut || false).unwrap_err();
        assert!(matches!(err, QfeError::Training(_)), "{err:?}");
        assert!(!est.is_trained());
        assert!(est.try_estimate(&range_query(0, 10)).is_err());
        // An unconstrained budget trains to completion.
        est.fit_within(&data, &mut || true).unwrap();
        assert!(est.is_trained());
        assert!(est.try_estimate(&range_query(0, 10)).is_ok());
    }

    #[test]
    fn snapshot_round_trip_preserves_estimates() {
        let db = db();
        let est = trained_estimator(&db);
        let bytes = est.snapshot_bytes().expect("trained estimator snapshots");
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let restored = LearnedEstimator::from_snapshot(
            Box::new(UniversalConjunctionEncoding::new(space, 32).unwrap()),
            &bytes,
        )
        .unwrap();
        assert!(restored.is_trained());
        assert_eq!(restored.name(), est.name());
        // Decoding rebuilt the compiled inference form: the restored GB
        // publishes its quantization table, so batches run binned.
        assert!(
            restored.model.feature_binner().is_some(),
            "snapshot restore must rebuild compiled inference"
        );
        for (lo, hi) in [(5, 20), (30, 35), (10, 70), (0, 99)] {
            let q = range_query(lo, hi);
            assert_eq!(restored.estimate(&q), est.estimate(&q), "({lo},{hi})");
        }
    }

    #[test]
    fn snapshot_corruption_is_rejected() {
        let db = db();
        let est = trained_estimator(&db);
        let clean = est.snapshot_bytes().unwrap();
        let fresh_qft = || {
            let space = AttributeSpace::for_table(db.catalog(), TableId(0));
            Box::new(UniversalConjunctionEncoding::new(space, 32).unwrap())
        };
        // Truncation at stride across the whole frame.
        for cut in (0..clean.len()).step_by(97) {
            assert!(
                LearnedEstimator::from_snapshot(fresh_qft(), &clean[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Bit flips at stride.
        for pos in (0..clean.len()).step_by(61) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x20;
            assert!(
                LearnedEstimator::from_snapshot(fresh_qft(), &bytes).is_err(),
                "flip at byte {pos}"
            );
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_featurizer() {
        let db = db();
        let est = trained_estimator(&db);
        let bytes = est.snapshot_bytes().unwrap();
        // Same QFT family, different budget → different dim: typed
        // ShapeMismatch, not a panic at serving time.
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        match LearnedEstimator::from_snapshot(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            &bytes,
        ) {
            Err(err) => assert!(matches!(err, QfeError::ShapeMismatch { .. }), "{err:?}"),
            Ok(_) => panic!("mismatched featurizer dim must be rejected"),
        }
    }

    #[test]
    fn untrained_estimator_has_no_snapshot() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8).unwrap()),
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        assert!(est.snapshot_bytes().is_none());
    }

    #[test]
    fn featurize_matrix_is_all_or_nothing() {
        let db = db();
        let est = trained_estimator(&db);
        let err = est
            .featurize_matrix(&[range_query(0, 10), disjunctive_query()])
            .unwrap_err();
        assert!(matches!(err, QfeError::UnsupportedQuery(_)), "{err:?}");
    }
}
