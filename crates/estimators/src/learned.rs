//! Learned estimator: a QFT × model combination.
//!
//! This is the composition the whole paper is about: any
//! [`Featurizer`] (the QFT) is paired with any [`Regressor`] (the ML
//! model). The featurizer is the plug-in layer of Section 4 — swapping it
//! requires no change to the model beyond the input width.

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::featurize::Featurizer;
use qfe_core::{QfeError, Query};
use qfe_ml::matrix::Matrix;
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;

use crate::labels::LabeledQueries;

/// A trained (or trainable) QFT × model cardinality estimator.
pub struct LearnedEstimator {
    featurizer: Box<dyn Featurizer>,
    model: Box<dyn Regressor>,
    scaler: Option<LogScaler>,
}

impl LearnedEstimator {
    /// Pair a featurizer with an (untrained) model.
    pub fn new(featurizer: Box<dyn Featurizer>, model: Box<dyn Regressor>) -> Self {
        LearnedEstimator {
            featurizer,
            model,
            scaler: None,
        }
    }

    /// Featurize a workload into a dense matrix.
    pub fn featurize_matrix(&self, queries: &[Query]) -> Result<Matrix, QfeError> {
        let mut rows = Vec::with_capacity(queries.len());
        for q in queries {
            rows.push(self.featurizer.featurize(q)?.0);
        }
        Ok(Matrix::from_rows(&rows))
    }

    /// Train on labeled queries.
    ///
    /// # Errors
    /// Fails if any training query cannot be featurized by the configured
    /// QFT (e.g. disjunctions under `conjunctive`).
    pub fn fit(&mut self, data: &LabeledQueries) -> Result<(), QfeError> {
        assert!(!data.is_empty(), "cannot train on an empty workload");
        let x = self.featurize_matrix(&data.queries)?;
        let scaler = LogScaler::fit(&data.cardinalities);
        let y = scaler.transform_batch(&data.cardinalities);
        self.model.fit(&x, &y);
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Estimate a batch of queries at once (faster than per-query calls
    /// for NN models).
    pub fn estimate_batch(&self, queries: &[Query]) -> Result<Vec<f64>, QfeError> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("estimate called before fit — train the estimator first");
        let x = self.featurize_matrix(queries)?;
        Ok(self
            .model
            .predict_batch(&x)
            .into_iter()
            .map(|y| scaler.inverse(y))
            .collect())
    }

    /// The underlying featurizer.
    pub fn featurizer(&self) -> &dyn Featurizer {
        self.featurizer.as_ref()
    }

    /// True once `fit` has completed.
    pub fn is_trained(&self) -> bool {
        self.scaler.is_some()
    }
}

impl CardinalityEstimator for LearnedEstimator {
    fn name(&self) -> String {
        format!("{} + {}", self.model.model_name(), self.featurizer.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 1.0;
        };
        match self.featurizer.featurize(query) {
            Ok(f) => scaler.inverse(self.model.predict(f.as_slice())),
            // A query outside the QFT's supported class: the defined
            // behaviour is the most conservative legal estimate.
            Err(_) => 1.0,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_queries;
    use qfe_core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::Table;
    use qfe_data::{Column, Database};
    use qfe_ml::gbdt::{Gbdt, GbdtConfig};

    fn db() -> Database {
        Database::new(
            vec![Table::new(
                "t",
                vec![(
                    "a".into(),
                    Column::Int((0..1000).map(|i| i % 100).collect()),
                )],
            )],
            &[],
        )
    }

    fn range_query(lo: i64, hi: i64) -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![
                    SimplePredicate::new(CmpOp::Ge, lo),
                    SimplePredicate::new(CmpOp::Le, hi),
                ],
            )],
        )
    }

    fn trained_estimator(db: &Database) -> LearnedEstimator {
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let mut est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 32)),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 60,
                min_samples_leaf: 2,
                ..GbdtConfig::default()
            })),
        );
        let mut queries = Vec::new();
        for lo in 0..90 {
            for width in [1, 5, 10, 30, 60] {
                queries.push(range_query(lo, lo + width));
            }
        }
        let data = label_queries(db, queries);
        est.fit(&data).unwrap();
        est
    }

    #[test]
    fn learns_range_cardinalities() {
        let db = db();
        let est = trained_estimator(&db);
        // In-distribution test queries.
        for (lo, hi) in [(5, 20), (30, 35), (10, 70)] {
            let q = range_query(lo, hi);
            let truth = qfe_exec::true_cardinality(&db, &q).unwrap() as f64;
            let e = est.estimate(&q);
            let q_err = (truth / e).max(e / truth);
            assert!(
                q_err < 2.0,
                "({lo},{hi}): q-error {q_err} (truth {truth}, est {e})"
            );
        }
    }

    #[test]
    fn name_combines_model_and_qft() {
        let db = db();
        let est = trained_estimator(&db);
        assert_eq!(est.name(), "GB + conjunctive");
        assert!(est.is_trained());
        assert!(est.memory_bytes() > 0);
    }

    #[test]
    fn batch_estimates_match_single() {
        let db = db();
        let est = trained_estimator(&db);
        let queries = vec![range_query(5, 20), range_query(50, 90)];
        let batch = est.estimate_batch(&queries).unwrap();
        assert_eq!(batch[0], est.estimate(&queries[0]));
        assert_eq!(batch[1], est.estimate(&queries[1]));
    }

    #[test]
    fn unsupported_query_estimates_one() {
        let db = db();
        let est = trained_estimator(&db);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(0)),
                expr: qfe_core::PredicateExpr::Or(vec![
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 1),
                    qfe_core::PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert_eq!(est.estimate(&q), 1.0);
    }

    #[test]
    fn untrained_estimator_returns_one() {
        let db = db();
        let space = AttributeSpace::for_table(db.catalog(), TableId(0));
        let est = LearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 8)),
            Box::new(Gbdt::new(GbdtConfig::default())),
        );
        assert_eq!(est.estimate(&range_query(0, 10)), 1.0);
        assert!(!est.is_trained());
    }
}
