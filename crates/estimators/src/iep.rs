//! Inclusion-exclusion estimation of disjunctive queries (Section 6).
//!
//! Yang et al. \[33\] handle disjunctions by the inclusion-exclusion
//! principle (IEP): for a disjunction of `m` conjunctive queries,
//! `|Q₁ ∨ … ∨ Qₘ| = Σ_{∅≠S⊆[m]} (−1)^{|S|+1} |⋀_{i∈S} Qᵢ|`,
//! which replaces one estimation problem with `2^m − 1` problems. The
//! paper argues this is impractical and error-amplifying; this module
//! implements it faithfully so the claim can be measured (see the
//! `ablations` experiment) against Limited Disjunction Encoding's single
//! featurization.

use std::cell::Cell;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::predicate::{CompoundPredicate, SimplePredicate};
use qfe_core::{QfeError, Query};

/// Wraps a conjunctive-query estimator and answers mixed queries via the
/// inclusion-exclusion principle.
pub struct IepEstimator<E> {
    inner: E,
    max_disjuncts: usize,
    calls: Cell<u64>,
}

impl<E: CardinalityEstimator> IepEstimator<E> {
    /// Wrap `inner`; `max_disjuncts` caps the DNF width `m` (the IEP needs
    /// `2^m − 1` inner estimates).
    pub fn new(inner: E, max_disjuncts: usize) -> Self {
        assert!((1..=20).contains(&max_disjuncts));
        IepEstimator {
            inner,
            max_disjuncts,
            calls: Cell::new(0),
        }
    }

    /// Number of inner estimator calls made so far (the cost the paper
    /// warns about).
    pub fn inner_calls(&self) -> u64 {
        self.calls.get()
    }

    /// Rewrite a mixed query into a disjunction of conjunctive queries:
    /// the cross product of the per-attribute disjunct sets.
    pub fn to_disjunction_of_conjunctions(query: &Query) -> Result<Vec<Query>, QfeError> {
        // Per attribute: list of conjuncts.
        let mut per_attr: Vec<(qfe_core::ColumnRef, Vec<Vec<SimplePredicate>>)> = Vec::new();
        for cp in &query.predicates {
            per_attr.push((cp.column, cp.expr.to_dnf()?));
        }
        // Cross product over attributes.
        let mut terms: Vec<Vec<CompoundPredicate>> = vec![Vec::new()];
        for (col, disjuncts) in per_attr {
            let mut next = Vec::with_capacity(terms.len() * disjuncts.len());
            for term in &terms {
                for conjunct in &disjuncts {
                    let mut t = term.clone();
                    t.push(CompoundPredicate::conjunction(col, conjunct.clone()));
                    next.push(t);
                }
            }
            terms = next;
            if terms.len() > 4096 {
                return Err(QfeError::UnsupportedQuery(
                    "DNF cross product too large for IEP".into(),
                ));
            }
        }
        Ok(terms
            .into_iter()
            .map(|predicates| Query {
                tables: query.tables.clone(),
                joins: query.joins.clone(),
                predicates,
            })
            .collect())
    }

    /// Conjoin a set of conjunctive queries (intersection).
    fn intersect(queries: &[&Query]) -> Query {
        let base = queries[0];
        let mut predicates = Vec::new();
        for q in queries {
            predicates.extend(q.predicates.iter().cloned());
        }
        Query {
            tables: base.tables.clone(),
            joins: base.joins.clone(),
            predicates,
        }
    }
}

impl<E: CardinalityEstimator> CardinalityEstimator for IepEstimator<E> {
    fn name(&self) -> String {
        format!("IEP({})", self.inner.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        if query.is_conjunctive() {
            self.calls.set(self.calls.get() + 1);
            return self.inner.estimate(query);
        }
        let Ok(disjuncts) = Self::to_disjunction_of_conjunctions(query) else {
            return 1.0;
        };
        let m = disjuncts.len();
        if m > self.max_disjuncts {
            return 1.0; // the paper's point: IEP does not scale
        }
        let mut total = 0.0f64;
        for subset in 1u32..(1 << m) {
            let selected: Vec<&Query> = (0..m)
                .filter(|i| subset >> i & 1 == 1)
                .map(|i| &disjuncts[i])
                .collect();
            let q = Self::intersect(&selected);
            self.calls.set(self.calls.get() + 1);
            let est = self.inner.estimate(&q);
            if subset.count_ones() % 2 == 1 {
                total += est;
            } else {
                total -= est;
            }
        }
        total.max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TrueCardinalityEstimator;
    use qfe_core::predicate::{CmpOp, PredicateExpr};
    use qfe_core::query::ColumnRef;
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::Table;
    use qfe_data::{Column, Database};
    use qfe_exec::true_cardinality;

    fn db() -> Database {
        Database::new(
            vec![Table::new(
                "t",
                vec![
                    ("a".into(), Column::Int((0..100).map(|i| i % 10).collect())),
                    ("b".into(), Column::Int((0..100).map(|i| i / 10).collect())),
                ],
            )],
            &[],
        )
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    fn mixed_query() -> Query {
        // (a < 3 OR a > 7) AND (b = 0 OR b = 5 OR b = 9)
        Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate {
                    column: col(0),
                    expr: PredicateExpr::Or(vec![
                        PredicateExpr::leaf(CmpOp::Lt, 3),
                        PredicateExpr::leaf(CmpOp::Gt, 7),
                    ]),
                },
                CompoundPredicate {
                    column: col(1),
                    expr: PredicateExpr::Or(vec![
                        PredicateExpr::leaf(CmpOp::Eq, 0),
                        PredicateExpr::leaf(CmpOp::Eq, 5),
                        PredicateExpr::leaf(CmpOp::Eq, 9),
                    ]),
                },
            ],
        )
    }

    #[test]
    fn dnf_cross_product_width() {
        let terms = IepEstimator::<TrueCardinalityEstimator>::to_disjunction_of_conjunctions(
            &mixed_query(),
        )
        .unwrap();
        assert_eq!(terms.len(), 6); // 2 × 3
        assert!(terms.iter().all(|t| t.is_conjunctive()));
    }

    #[test]
    fn iep_with_exact_inner_estimates_is_exact() {
        // With a perfect inner estimator the IEP is exact — the principle
        // itself is sound; its cost and error amplification are the
        // practical problems.
        let db = db();
        let q = mixed_query();
        let truth = true_cardinality(&db, &q).unwrap() as f64;
        let iep = IepEstimator::new(TrueCardinalityEstimator::new(&db), 10);
        let est = iep.estimate(&q);
        assert_eq!(est, truth);
        // 2^6 − 1 = 63 inner calls for one query with 6 DNF terms.
        assert_eq!(iep.inner_calls(), 63);
    }

    #[test]
    fn conjunctive_queries_pass_through() {
        let db = db();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Lt, 5)],
            )],
        );
        let iep = IepEstimator::new(TrueCardinalityEstimator::new(&db), 10);
        assert_eq!(iep.estimate(&q), 50.0);
        assert_eq!(iep.inner_calls(), 1);
    }

    #[test]
    fn too_many_disjuncts_fall_back() {
        let db = db();
        let iep = IepEstimator::new(TrueCardinalityEstimator::new(&db), 4);
        // 6 DNF terms > cap 4.
        assert_eq!(iep.estimate(&mixed_query()), 1.0);
    }

    #[test]
    fn name_reflects_wrapping() {
        let db = db();
        let iep = IepEstimator::new(TrueCardinalityEstimator::new(&db), 4);
        assert_eq!(iep.name(), "IEP(true)");
    }
}
