//! The oracle estimator: executes the query and returns the exact count.
//! Used for labeling training workloads and as the "true cardinalities"
//! arm of the end-to-end experiment (paper Table 4).

use qfe_core::error::EstimateError;
use qfe_core::estimator::{CardinalityEstimator, Estimate};
use qfe_core::Query;
use qfe_data::Database;
use qfe_exec::true_cardinality;

/// Exact cardinalities by execution.
pub struct TrueCardinalityEstimator<'a> {
    db: &'a Database,
}

impl<'a> TrueCardinalityEstimator<'a> {
    /// Wrap a database.
    pub fn new(db: &'a Database) -> Self {
        TrueCardinalityEstimator { db }
    }
}

impl CardinalityEstimator for TrueCardinalityEstimator<'_> {
    fn name(&self) -> String {
        "true".into()
    }

    fn estimate(&self, query: &Query) -> f64 {
        // The oracle reports the exact count, including 0 — consumers that
        // need the >= 1 convention (q-error) clamp themselves. This
        // matters for inclusion-exclusion, where clamped zeros would
        // corrupt the alternating sum.
        match true_cardinality(self.db, query) {
            Ok(c) => c as f64,
            Err(_) => 1.0,
        }
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        // An exact count of 0 is a legitimate answer, not a protocol
        // violation: under the estimation contract (`Ok` is finite and
        // >= 1) an empty result clamps to 1. `estimate` keeps reporting
        // the raw count for inclusion-exclusion consumers.
        Ok(Estimate::primary(
            self.estimate(query).max(1.0),
            self.name(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::Table;
    use qfe_data::Column;

    #[test]
    fn oracle_matches_execution() {
        let db = Database::new(
            vec![Table::new(
                "t",
                vec![("a".into(), Column::Int((0..50).collect()))],
            )],
            &[],
        );
        let est = TrueCardinalityEstimator::new(&db);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Lt, 10)],
            )],
        );
        assert_eq!(est.estimate(&q), 10.0);
        assert_eq!(est.name(), "true");
    }

    #[test]
    fn empty_results_report_zero() {
        let db = Database::new(
            vec![Table::new(
                "t",
                vec![("a".into(), Column::Int((0..50).collect()))],
            )],
            &[],
        );
        let est = TrueCardinalityEstimator::new(&db);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Gt, 1000)],
            )],
        );
        assert_eq!(est.estimate(&q), 0.0);
    }
}
