//! Per-stage circuit breaking for estimator pipelines.
//!
//! A drifted or corrupted learned model does not fail once — it fails on
//! *every* query, and each failed attempt burns latency budget before the
//! fallback answers (the failure mode Han et al.'s benchmark study calls
//! out for learned estimators in production). A [`CircuitBreaker`] turns
//! repeated failure into *skipping*: after `failure_threshold` consecutive
//! failures the breaker opens and the stage is not invoked at all; after a
//! cooldown it lets exactly one probe request through (half-open), and
//! either closes on success or re-opens with an exponentially longer
//! cooldown.
//!
//! ```text
//!            failure × threshold            cooldown elapsed
//!  Closed ──────────────────────▶ Open ──────────────────────▶ HalfOpen
//!    ▲                             ▲                              │
//!    │         probe succeeds      │        probe fails           │
//!    └─────────────────────────────┼──────────────────────────────┤
//!                                  └──────────────────────────────┘
//!                                       (cooldown doubles, capped)
//! ```
//!
//! Time is injectable ([`CircuitBreaker::with_clock`]) so the state
//! machine is testable deterministically — production uses a monotonic
//! [`std::time::Instant`] clock. All state transitions are counted
//! ([`BreakerStats`]) and surfaced alongside the fallback-chain counters,
//! so "the learned stage has been open for an hour" is an observable fact
//! rather than a silent degradation.
//!
//! [`BreakerStage`] packages a breaker with an estimator as a drop-in
//! [`CardinalityEstimator`], so a [`crate::FallbackChain`] can hold
//! breaker-wrapped stages without knowing about breaking at all: an open
//! breaker surfaces as a fast typed [`qfe_core::error::EstimateError::CircuitOpen`], which
//! the chain counts and falls through exactly like any other stage error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qfe_core::error::EstimateError;
use qfe_core::estimator::{CardinalityEstimator, Estimate};
use qfe_core::Query;
use qfe_obs::Recorder;

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (errors, timeouts, contract violations) that
    /// trip the breaker from closed to open. Clamped to `>= 1`.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub cooldown: Duration,
    /// Upper bound for the exponentially growing cooldown.
    pub max_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_secs(10),
        }
    }
}

/// The observable state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow through; failures are counted.
    Closed,
    /// Requests are rejected without invoking the stage.
    Open,
    /// One probe request is in flight; its outcome decides open vs closed.
    HalfOpen,
}

/// Counter snapshot of a breaker's lifetime transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerStats {
    /// Current state.
    pub state: BreakerState,
    /// Closed/half-open → open transitions.
    pub opened: u64,
    /// Open → half-open transitions (probe admissions).
    pub probes: u64,
    /// Half-open → closed transitions (probe successes).
    pub reclosed: u64,
    /// Requests rejected because the breaker was open.
    pub rejected: u64,
}

/// Monotonic time source; injectable for deterministic tests.
type Clock = Arc<dyn Fn() -> Duration + Send + Sync>;

/// A recorder plus precomputed metric names, so emitting a transition
/// event never allocates on the request path.
struct BreakerEvents {
    recorder: Arc<dyn Recorder>,
    opened: String,
    probes: String,
    reclosed: String,
    rejected: String,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the current open period ends (elapsed-clock time).
    open_until: Duration,
    /// Exponent of the current cooldown (doubles per consecutive re-open).
    backoff: u32,
}

/// Thread-safe circuit breaker (see the module docs for the state
/// machine). The mutex guards only a few words and is held for a handful
/// of instructions; counters are separate atomics so stats reads never
/// contend with the request path.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
    clock: Clock,
    opened: AtomicU64,
    probes: AtomicU64,
    reclosed: AtomicU64,
    rejected: AtomicU64,
    events: Option<BreakerEvents>,
}

impl CircuitBreaker {
    /// A breaker on the real (monotonic) clock.
    pub fn new(cfg: BreakerConfig) -> Self {
        let epoch = Instant::now();
        Self::with_clock(cfg, Arc::new(move || epoch.elapsed()))
    }

    /// A breaker on an injected clock returning elapsed time since an
    /// arbitrary fixed epoch. Tests drive this with an atomic counter to
    /// step through the state machine deterministically.
    pub fn with_clock(mut cfg: BreakerConfig, clock: Clock) -> Self {
        cfg.failure_threshold = cfg.failure_threshold.max(1);
        if cfg.max_cooldown < cfg.cooldown {
            cfg.max_cooldown = cfg.cooldown;
        }
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Duration::ZERO,
                backoff: 0,
            }),
            clock,
            opened: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            reclosed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            events: None,
        }
    }

    /// Additionally publish state-transition events to `recorder` as
    /// counters named `<prefix>.opened`, `<prefix>.probes`,
    /// `<prefix>.reclosed`, and `<prefix>.rejected`. The names are
    /// precomputed here so the transition path never allocates. The
    /// internal [`BreakerStats`] counters keep working either way.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>, prefix: &str) -> Self {
        self.events = Some(BreakerEvents {
            recorder,
            opened: format!("{prefix}.opened"),
            probes: format!("{prefix}.probes"),
            reclosed: format!("{prefix}.reclosed"),
            rejected: format!("{prefix}.rejected"),
        });
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A breaker mutex can only be poisoned if a thread panicked while
        // holding it; the critical sections below cannot panic, but if it
        // ever happens the breaker state is still plain data — recover it.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Ask to invoke the protected stage. `true` means go ahead (closed,
    /// or admitted as the half-open probe); `false` means the breaker is
    /// open — skip the stage and fall through.
    pub fn admit(&self) -> bool {
        let now = (self.clock)();
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    if let Some(ev) = &self.events {
                        ev.recorder.incr(&ev.probes);
                    }
                    true
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(ev) = &self.events {
                        ev.recorder.incr(&ev.rejected);
                    }
                    false
                }
            }
            // A probe is already in flight; concurrent requests keep
            // falling through until it resolves.
            BreakerState::HalfOpen => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(ev) = &self.events {
                    ev.recorder.incr(&ev.rejected);
                }
                false
            }
        }
    }

    /// Record a successful stage call.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        if inner.state == BreakerState::HalfOpen {
            self.reclosed.fetch_add(1, Ordering::Relaxed);
            if let Some(ev) = &self.events {
                ev.recorder.incr(&ev.reclosed);
            }
        }
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.backoff = 0;
    }

    /// Record a failed stage call (typed error, timeout, panic, or
    /// contract violation).
    pub fn record_failure(&self) {
        let now = (self.clock)();
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    self.open(&mut inner, now);
                }
            }
            // The half-open probe failed: re-open with a longer cooldown.
            BreakerState::HalfOpen => {
                inner.backoff = inner.backoff.saturating_add(1);
                self.open(&mut inner, now);
            }
            BreakerState::Open => {}
        }
    }

    fn open(&self, inner: &mut Inner, now: Duration) {
        let cooldown = self
            .cfg
            .cooldown
            .saturating_mul(1u32 << inner.backoff.min(16))
            .min(self.cfg.max_cooldown);
        inner.state = BreakerState::Open;
        inner.open_until = now.saturating_add(cooldown);
        inner.consecutive_failures = 0;
        self.opened.fetch_add(1, Ordering::Relaxed);
        if let Some(ev) = &self.events {
            ev.recorder.incr(&ev.opened);
        }
    }

    /// Current state (racy by nature — for observability, not control
    /// flow).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Snapshot of the transition counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            state: self.state(),
            opened: self.opened.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            reclosed: self.reclosed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// An estimator wrapped with a [`CircuitBreaker`]: a drop-in stage for a
/// [`crate::FallbackChain`]. Failures of any [`qfe_core::EstimateErrorKind`] count
/// against the breaker; an open breaker answers with a fast
/// [`qfe_core::error::EstimateError::CircuitOpen`] instead of invoking the inner
/// estimator.
pub struct BreakerStage<E> {
    inner: E,
    breaker: CircuitBreaker,
}

impl<E: CardinalityEstimator> BreakerStage<E> {
    /// Wrap `inner` with a breaker.
    pub fn new(inner: E, cfg: BreakerConfig) -> Self {
        BreakerStage {
            inner,
            breaker: CircuitBreaker::new(cfg),
        }
    }

    /// Wrap `inner` with an existing breaker (e.g. one on a test clock).
    pub fn with_breaker(inner: E, breaker: CircuitBreaker) -> Self {
        BreakerStage { inner, breaker }
    }

    /// The breaker, for stats and tests.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: CardinalityEstimator> CardinalityEstimator for BreakerStage<E> {
    fn name(&self) -> String {
        format!("breaker({})", self.inner.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.try_estimate(query) {
            Ok(e) => e.value,
            Err(_) => f64::NAN, // infallible callers must re-validate anyway
        }
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        if !self.breaker.admit() {
            return Err(EstimateError::CircuitOpen {
                estimator: self.inner.name(),
            });
        }
        match self.inner.try_estimate(query) {
            Ok(est) if est.value.is_finite() && est.value >= 1.0 => {
                self.breaker.record_success();
                Ok(est)
            }
            // An Ok wrapping garbage is a failure as far as the breaker
            // is concerned — convert it to the typed error the chain
            // would have synthesized anyway.
            Ok(est) => {
                self.breaker.record_failure();
                Err(EstimateError::NonFinite {
                    estimator: self.inner.name(),
                    value: est.value,
                })
            }
            Err(e) => {
                self.breaker.record_failure();
                Err(e)
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::error::EstimateErrorKind;
    use qfe_core::TableId;
    use std::sync::atomic::AtomicU64 as ClockCell;

    /// A manually stepped clock: `tick.store(ms)` sets "now".
    fn manual_clock() -> (Arc<ClockCell>, Clock) {
        let tick = Arc::new(ClockCell::new(0));
        let t = Arc::clone(&tick);
        (
            tick,
            Arc::new(move || Duration::from_millis(t.load(Ordering::Relaxed))),
        )
    }

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_millis(400),
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let (_, clock) = manual_clock();
        let b = CircuitBreaker::with_clock(cfg(), clock);
        for _ in 0..2 {
            assert!(b.admit());
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker rejects");
        let s = b.stats();
        assert_eq!((s.opened, s.rejected), (1, 1));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let (_, clock) = manual_clock();
        let b = CircuitBreaker::with_clock(cfg(), clock);
        for _ in 0..10 {
            assert!(b.admit());
            b.record_failure();
            assert!(b.admit());
            b.record_failure();
            assert!(b.admit());
            b.record_success(); // streak broken at 2 < threshold 3
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().opened, 0);
    }

    #[test]
    fn half_open_probe_recovers_or_reopens_with_backoff() {
        let (tick, clock) = manual_clock();
        let b = CircuitBreaker::with_clock(cfg(), clock);
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);

        // Cooldown not elapsed: still rejecting.
        tick.store(99, Ordering::Relaxed);
        assert!(!b.admit());

        // Cooldown elapsed: exactly one probe goes through, concurrent
        // requests keep being rejected.
        tick.store(100, Ordering::Relaxed);
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit());

        // Probe fails → re-open with doubled cooldown (200ms).
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        tick.store(299, Ordering::Relaxed);
        assert!(!b.admit());
        tick.store(300, Ordering::Relaxed);
        assert!(b.admit());

        // Probe succeeds → closed, streak and backoff reset.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let s = b.stats();
        assert_eq!((s.opened, s.probes, s.reclosed), (2, 2, 1));
    }

    #[test]
    fn cooldown_backoff_is_capped() {
        let (tick, clock) = manual_clock();
        let b = CircuitBreaker::with_clock(cfg(), clock);
        let mut now = 0u64;
        // Trip, then fail every probe; the cooldown must never exceed
        // max_cooldown (400ms).
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        for _ in 0..8 {
            now += 400;
            tick.store(now, Ordering::Relaxed);
            assert!(b.admit(), "max cooldown is 400ms, probe must be admitted");
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn transitions_are_published_to_the_recorder() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let (tick, clock) = manual_clock();
        let b = CircuitBreaker::with_clock(cfg(), clock)
            .with_recorder(recorder.clone(), "test.breaker");
        // Trip the breaker, reject once, probe, and re-close.
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        assert!(!b.admit()); // rejected while open
        tick.store(100, Ordering::Relaxed);
        assert!(b.admit()); // probe
        b.record_success(); // re-close
        assert_eq!(recorder.counter("test.breaker.opened"), 1);
        assert_eq!(recorder.counter("test.breaker.rejected"), 1);
        assert_eq!(recorder.counter("test.breaker.probes"), 1);
        assert_eq!(recorder.counter("test.breaker.reclosed"), 1);
        // The recorder mirrors the internal stats exactly.
        let s = b.stats();
        assert_eq!((s.opened, s.probes, s.reclosed, s.rejected), (1, 1, 1, 1));
    }

    #[test]
    fn breaker_stage_surfaces_circuit_open_and_recovers() {
        struct Flaky {
            healthy: std::sync::atomic::AtomicBool,
        }
        impl CardinalityEstimator for Flaky {
            fn name(&self) -> String {
                "flaky".into()
            }
            fn estimate(&self, _q: &Query) -> f64 {
                if self.healthy.load(Ordering::Relaxed) {
                    42.0
                } else {
                    f64::NAN
                }
            }
        }

        let (tick, clock) = manual_clock();
        let stage = BreakerStage::with_breaker(
            Flaky {
                healthy: std::sync::atomic::AtomicBool::new(false),
            },
            CircuitBreaker::with_clock(cfg(), clock),
        );
        let q = Query::single_table(TableId(0), vec![]);

        // Three NaN answers trip the breaker...
        for _ in 0..3 {
            let err = stage.try_estimate(&q).unwrap_err();
            assert_eq!(err.kind(), EstimateErrorKind::NonFinite);
        }
        // ...after which the inner estimator is not consulted at all.
        let err = stage.try_estimate(&q).unwrap_err();
        assert_eq!(err.kind(), EstimateErrorKind::CircuitOpen);

        // Heal the estimator, elapse the cooldown: the half-open probe
        // closes the breaker and answers flow again.
        stage.inner().healthy.store(true, Ordering::Relaxed);
        tick.store(100, Ordering::Relaxed);
        assert_eq!(stage.try_estimate(&q).unwrap().value, 42.0);
        assert_eq!(stage.breaker().state(), BreakerState::Closed);
        assert_eq!(stage.name(), "breaker(flaky)");
    }
}
