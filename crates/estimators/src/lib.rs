//! # qfe-estimators
//!
//! Cardinality estimators, all implementing
//! [`qfe_core::CardinalityEstimator`]:
//!
//! * [`postgres`] — the PostgreSQL-style baseline: per-column equi-depth
//!   histograms + MCV lists combined under the attribute-value-independence
//!   assumption; FK joins via the `1 / max(nd)` formula. This is the
//!   "essentially independence assumption" estimator of the paper.
//! * [`sampling`] — per-query Bernoulli sampling (0.1 % in the paper).
//! * [`correlated`] — correlated sampling \[29\], the stronger sampling
//!   baseline for joins the related-work section discusses.
//! * [`truth`] — the oracle that executes the query (used for labeling and
//!   for the true-cardinality arm of the end-to-end experiment).
//! * [`learned`] — QFT × model combinations: a featurizer from `qfe-core`
//!   plus a regressor from `qfe-ml`, trained on labeled queries.
//! * [`local`] — the local-model approach (Section 2.1.2): one learned
//!   model per sub-schema.
//! * [`global`] — global models: one model with table-presence bits, and
//!   the MSCN global estimator.
//! * [`grouped`] — grouped-query (GROUP BY) result-size estimation via
//!   the Section 6 binary grouping vector.
//! * [`iep`] — inclusion-exclusion estimation of disjunctions (the
//!   Section 6 strawman: `2^m − 1` sub-estimates per query).
//! * [`labels`] — labeling utilities (run the oracle over a workload).
//! * [`chain`] — fault-tolerant composition: [`chain::FallbackChain`]
//!   (e.g. learned → histogram → sampling → constant floor) with
//!   per-stage observability, plus the seeded [`chain::ChaosEstimator`]
//!   fault injector that the robustness tests drive it with.
//! * [`breaker`] — per-stage circuit breaking: [`breaker::CircuitBreaker`]
//!   (closed → open → half-open with exponential cooldown) and the
//!   [`breaker::BreakerStage`] wrapper that lets a chain skip a
//!   persistently failing stage instead of paying for its failure on
//!   every query.

// Library code must fail with typed errors, never a panic: `unwrap`/`expect`
// are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod chain;
pub mod correlated;
pub mod global;
pub mod grouped;
pub mod iep;
pub mod labels;
pub mod learned;
pub mod local;
pub mod postgres;
pub mod sampling;
pub mod truth;

pub use breaker::{BreakerConfig, BreakerStage, BreakerState, BreakerStats, CircuitBreaker};
pub use chain::{ChainStats, ChaosEstimator, EstimatorFault, FallbackChain};
pub use correlated::CorrelatedSamplingEstimator;
pub use global::{GlobalLearnedEstimator, MscnEstimator};
pub use grouped::GroupedLearnedEstimator;
pub use iep::IepEstimator;
pub use learned::LearnedEstimator;
pub use local::LocalModelEstimator;
pub use postgres::PostgresEstimator;
pub use sampling::SamplingEstimator;
pub use truth::TrueCardinalityEstimator;
