//! Local models (Section 2.1.2): one learned model per sub-schema.
//!
//! "With local models, one model is built per sub-schema, i.e., either per
//! base table or per join result. To estimate the result cardinality of
//! some query, the selection predicates in the query are featurized and
//! forwarded to the corresponding local model." The paper finds local
//! models clearly more accurate than global ones on join workloads
//! (Table 2) and recommends them.

use std::collections::HashMap;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::featurize::{AttributeSpace, Featurizer};
use qfe_core::query::SubSchema;
use qfe_core::schema::Catalog;
use qfe_core::{QfeError, Query};
use qfe_ml::train::Regressor;

use crate::labels::LabeledQueries;
use crate::learned::LearnedEstimator;

/// One learned estimator per sub-schema, with an optional System-R-style
/// composition fallback for sub-schemata without a trained model.
pub struct LocalModelEstimator {
    models: HashMap<SubSchema, LearnedEstimator>,
    label: String,
    fallback: Option<SystemRFallback>,
}

/// System-R composition (Section 2.1.2): "in real applications, this
/// number [of local models] is reduced by relying on System R formulas
/// where models are built exactly for those sub-schemata for which the
/// assumptions from \[25\] do not hold." For a query whose sub-schema has
/// no model, the fallback combines per-table local estimates with the
/// `1 / max(nd)` key/foreign-key join formula.
struct SystemRFallback {
    catalog: Catalog,
}

impl SystemRFallback {
    fn estimate(
        &self,
        models: &HashMap<SubSchema, LearnedEstimator>,
        query: &qfe_core::Query,
    ) -> f64 {
        let mut card = 1.0f64;
        for &t in query.sub_schema().tables() {
            // Per-table estimate: the single-table local model if trained,
            // otherwise the filtered table size is unknown — use the raw
            // row count (uniformity would need stats the local approach
            // does not keep).
            let single = SubSchema::new(vec![t]);
            let restricted = qfe_core::Query {
                tables: vec![t],
                joins: Vec::new(),
                predicates: query
                    .predicates
                    .iter()
                    .filter(|cp| cp.column.table == t)
                    .cloned()
                    .collect(),
            };
            card *= match models.get(&single) {
                Some(m) => m.estimate(&restricted),
                None => self.catalog.table(t).row_count as f64,
            };
        }
        for j in &query.joins {
            let nd = |side: qfe_core::ColumnRef| {
                self.catalog
                    .domain(side.table, side.column)
                    .distinct
                    .unwrap_or(1) as f64
            };
            card /= nd(j.left).max(nd(j.right)).max(1.0);
        }
        card.max(1.0)
    }
}

impl LocalModelEstimator {
    /// Train local models from a labeled workload.
    ///
    /// Queries are grouped by sub-schema; for every group with at least
    /// `min_queries` samples, a model is trained over the attribute space
    /// of that sub-schema. `featurizer_factory` builds the QFT for a given
    /// space; `model_factory` builds a fresh untrained model.
    ///
    /// # Errors
    /// Propagates featurization failures from training.
    pub fn train(
        catalog: &Catalog,
        data: &LabeledQueries,
        min_queries: usize,
        featurizer_factory: &dyn Fn(AttributeSpace) -> Box<dyn Featurizer + Send + Sync>,
        model_factory: &dyn Fn() -> Box<dyn Regressor + Send + Sync>,
    ) -> Result<Self, QfeError> {
        // Group by sub-schema.
        let mut groups: HashMap<SubSchema, LabeledQueries> = HashMap::new();
        for (q, &c) in data.queries.iter().zip(&data.cardinalities) {
            let g = groups.entry(q.sub_schema()).or_default();
            g.queries.push(q.clone());
            g.cardinalities.push(c);
        }
        let mut models = HashMap::new();
        let mut label = String::new();
        for (schema, group) in groups {
            if group.len() < min_queries.max(1) {
                continue;
            }
            let space = AttributeSpace::for_tables(catalog, schema.tables());
            let mut est = LearnedEstimator::new(featurizer_factory(space), model_factory());
            est.fit(&group)?;
            if label.is_empty() {
                label = format!("{} (local)", est.name());
            }
            models.insert(schema, est);
        }
        Ok(LocalModelEstimator {
            models,
            label,
            fallback: None,
        })
    }

    /// Enable the System-R composition fallback for sub-schemata without a
    /// trained model (needs the catalog for row counts and join-column
    /// distinct counts).
    pub fn with_system_r_fallback(mut self, catalog: &Catalog) -> Self {
        self.fallback = Some(SystemRFallback {
            catalog: catalog.clone(),
        });
        self
    }

    /// Number of trained local models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The model responsible for a sub-schema, if trained.
    pub fn model_for(&self, schema: &SubSchema) -> Option<&LearnedEstimator> {
        self.models.get(schema)
    }
}

impl CardinalityEstimator for LocalModelEstimator {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.models.get(&query.sub_schema()) {
            Some(model) => model.estimate(query),
            // No local model for this sub-schema: compose with System-R
            // formulas if enabled, otherwise the most conservative legal
            // estimate.
            None => match &self.fallback {
                Some(f) => f.estimate(&self.models, query),
                None => 1.0,
            },
        }
    }

    fn memory_bytes(&self) -> usize {
        self.models.values().map(|m| m.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_queries;
    use qfe_core::featurize::RangePredicateEncoding;
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::{Column, Database};
    use qfe_ml::gbdt::{Gbdt, GbdtConfig};

    fn db() -> Database {
        let dim = Table::new(
            "dim",
            vec![
                ("id".into(), Column::Int((0..200).collect())),
                ("x".into(), Column::Int((0..200).map(|i| i % 50).collect())),
            ],
        );
        let fact = Table::new(
            "fact",
            vec![(
                "dim_id".into(),
                Column::Int((0..2000).map(|i| i % 200).collect()),
            )],
        );
        Database::new(
            vec![dim, fact],
            &[ForeignKey {
                from: ("fact".into(), "dim_id".into()),
                to: ("dim".into(), "id".into()),
            }],
        )
    }

    fn single_table_query(lo: i64) -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Ge, lo)],
            )],
        )
    }

    fn join_query(lo: i64) -> Query {
        Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Ge, lo)],
            )],
        }
    }

    fn trained(db: &Database) -> LocalModelEstimator {
        let mut queries = Vec::new();
        for lo in 0..49 {
            queries.push(single_table_query(lo));
            queries.push(join_query(lo));
        }
        let data = label_queries(db, queries);
        LocalModelEstimator::train(
            db.catalog(),
            &data,
            5,
            &|space| Box::new(RangePredicateEncoding::new(space)),
            &|| {
                Box::new(Gbdt::new(GbdtConfig {
                    n_trees: 40,
                    min_samples_leaf: 2,
                    ..GbdtConfig::default()
                }))
            },
        )
        .unwrap()
    }

    #[test]
    fn one_model_per_sub_schema() {
        let db = db();
        let est = trained(&db);
        assert_eq!(est.model_count(), 2);
        assert!(est.model_for(&SubSchema::new(vec![TableId(0)])).is_some());
        assert!(est
            .model_for(&SubSchema::new(vec![TableId(0), TableId(1)]))
            .is_some());
    }

    #[test]
    fn routes_queries_to_the_right_model() {
        let db = db();
        let est = trained(&db);
        for lo in [5, 20, 40] {
            let q1 = single_table_query(lo);
            let truth = qfe_exec::true_cardinality(&db, &q1).unwrap() as f64;
            let e = est.estimate(&q1);
            let q_err = (truth / e).max(e / truth);
            assert!(q_err < 2.0, "single-table lo={lo}: q-error {q_err}");
            let q2 = join_query(lo);
            let truth = qfe_exec::true_cardinality(&db, &q2).unwrap() as f64;
            let e = est.estimate(&q2);
            let q_err = (truth / e).max(e / truth);
            assert!(q_err < 2.0, "join lo={lo}: q-error {q_err}");
        }
    }

    #[test]
    fn unknown_sub_schema_falls_back_to_one() {
        let db = db();
        let est = trained(&db);
        let q = Query::single_table(TableId(1), vec![]);
        assert_eq!(est.estimate(&q), 1.0);
    }

    #[test]
    fn system_r_fallback_composes_per_table_models() {
        let db = db();
        // Train ONLY the single-table model (restrict the workload).
        let mut queries = Vec::new();
        for lo in 0..49 {
            queries.push(single_table_query(lo));
        }
        let data = label_queries(&db, queries);
        let est = LocalModelEstimator::train(
            db.catalog(),
            &data,
            5,
            &|space| Box::new(RangePredicateEncoding::new(space)),
            &|| {
                Box::new(Gbdt::new(GbdtConfig {
                    n_trees: 40,
                    min_samples_leaf: 2,
                    ..GbdtConfig::default()
                }))
            },
        )
        .unwrap()
        .with_system_r_fallback(db.catalog());
        assert_eq!(est.model_count(), 1);
        // Join queries have no model: the fallback composes the dim-side
        // local estimate with |fact| / nd(dim_id). Each dim row has 10
        // fact rows, so the composition should land near the truth.
        for lo in [5, 20, 40] {
            let q = join_query(lo);
            let truth = qfe_exec::true_cardinality(&db, &q).unwrap() as f64;
            let e = est.estimate(&q);
            let q_err = (truth / e).max(e / truth);
            assert!(
                q_err < 2.5,
                "fallback lo={lo}: q-error {q_err} ({e} vs {truth})"
            );
        }
    }

    #[test]
    fn min_queries_threshold_skips_thin_groups() {
        let db = db();
        let data = label_queries(&db, vec![single_table_query(5)]);
        let est = LocalModelEstimator::train(
            db.catalog(),
            &data,
            10,
            &|space| Box::new(RangePredicateEncoding::new(space)),
            &|| Box::new(Gbdt::new(GbdtConfig::default())),
        )
        .unwrap();
        assert_eq!(est.model_count(), 0);
    }

    #[test]
    fn label_and_memory() {
        let db = db();
        let est = trained(&db);
        assert_eq!(est.name(), "GB + range (local)");
        assert!(est.memory_bytes() > 0);
    }
}
