//! Correlated sampling for join size estimation (Vengerov et al. \[29\],
//! discussed in the paper's related work as the stronger sampling baseline
//! for joins).
//!
//! Bernoulli sampling draws each table independently, so a fact tuple's
//! dimension partner survives with probability `p` — join samples shrink
//! like `p^k`. Correlated sampling instead keeps a tuple iff a *shared*
//! hash of its join key falls below the rate: all tuples of a joining
//! group survive or die together, so the sampled join size scales like
//! `p`, not `p^k`, with far lower variance.
//!
//! Selection predicates are evaluated on the sampled rows exactly as in
//! Bernoulli sampling. Single-table queries (no join key to correlate on)
//! fall back to plain Bernoulli semantics.

use std::cell::Cell;
use std::collections::HashMap;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::predicate::CompoundPredicate;
use qfe_core::{ColumnId, Query, TableId};
use qfe_data::Database;
use qfe_exec::eval::row_matches;

/// Correlated sampling over the join keys of a star/tree schema.
pub struct CorrelatedSamplingEstimator<'a> {
    db: &'a Database,
    rate: f64,
    base_seed: u64,
    counter: Cell<u64>,
}

impl<'a> CorrelatedSamplingEstimator<'a> {
    /// Create with sampling rate `rate`.
    pub fn new(db: &'a Database, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        CorrelatedSamplingEstimator {
            db,
            rate,
            base_seed: seed,
            counter: Cell::new(0),
        }
    }

    fn next_salt(&self) -> u64 {
        let c = self.counter.get();
        self.counter.set(c + 1);
        self.base_seed
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add(c)
    }

    /// Deterministic hash of a join-key value into `[0, 1)`.
    fn key_hash(key: i64, salt: u64) -> f64 {
        let mut x = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Join column of `table` in `query` (the column correlating its
    /// sample), if any.
    fn join_column(query: &Query, table: TableId) -> Option<ColumnId> {
        query.joins.iter().find_map(|j| {
            if j.left.table == table {
                Some(j.left.column)
            } else if j.right.table == table {
                Some(j.right.column)
            } else {
                None
            }
        })
    }
}

impl CardinalityEstimator for CorrelatedSamplingEstimator<'_> {
    fn name(&self) -> String {
        "corr-sampling".into()
    }

    fn estimate(&self, query: &Query) -> f64 {
        let salt = self.next_salt();
        let tables = query.sub_schema();
        if tables.len() == 1 {
            // No join key: Bernoulli over row indices.
            let t = self.db.table(tables.tables()[0]);
            let preds: Vec<&CompoundPredicate> = query.predicates.iter().collect();
            let qualifying = (0..t.row_count())
                .filter(|&r| Self::key_hash(r as i64, salt) < self.rate)
                .filter(|&r| row_matches(t, &preds, r))
                .count();
            return (qualifying as f64 / self.rate).max(1.0);
        }

        // Sample each table by the shared hash of its join key; count the
        // sampled join with per-key count maps along the join tree.
        let mut sampled: Vec<(TableId, Vec<u32>)> = Vec::new();
        for &t in tables.tables() {
            let table = self.db.table(t);
            let Some(join_col) = Self::join_column(query, t) else {
                return 1.0;
            };
            let col = table.column(join_col);
            let preds: Vec<&CompoundPredicate> = query
                .predicates
                .iter()
                .filter(|cp| cp.column.table == t)
                .collect();
            let rows: Vec<u32> = (0..table.row_count())
                .filter(|&r| Self::key_hash(col.get_i64(r), salt) < self.rate)
                .filter(|&r| row_matches(table, &preds, r))
                .map(|r| r as u32)
                .collect();
            sampled.push((t, rows));
        }
        // Count the sampled join (all joins share correlated keys, so the
        // whole join shrinks by a single factor p).
        let root = tables.tables()[0];
        let mut visited = vec![root];
        let count = count_sampled(self.db, query, &sampled, root, &mut visited);
        (count as f64 / self.rate).max(1.0)
    }
}

fn count_sampled(
    db: &Database,
    query: &Query,
    sampled: &[(TableId, Vec<u32>)],
    table: TableId,
    visited: &mut Vec<TableId>,
) -> u64 {
    // Children maps keyed by join value.
    let t = db.table(table);
    // A table missing from the sample set contributes no rows — an empty
    // count, not a panic (the caller samples every query table, so this
    // is defensive).
    let Some((_, rows)) = sampled.iter().find(|(tt, _)| *tt == table) else {
        return 0;
    };
    let mut children: Vec<(ColumnId, HashMap<i64, u64>)> = Vec::new();
    for j in &query.joins {
        let (my_col, other) = if j.left.table == table && !visited.contains(&j.right.table) {
            (j.left.column, j.right)
        } else if j.right.table == table && !visited.contains(&j.left.table) {
            (j.right.column, j.left)
        } else {
            continue;
        };
        visited.push(other.table);
        let sub = count_sampled_map(db, query, sampled, other.table, other.column, visited);
        children.push((my_col, sub));
    }
    let mut total = 0u64;
    for &r in rows {
        let mut mult = 1u64;
        for (col, map) in &children {
            match map.get(&t.column(*col).get_i64(r as usize)) {
                Some(&c) => mult *= c,
                None => {
                    mult = 0;
                    break;
                }
            }
        }
        total += mult;
    }
    total
}

fn count_sampled_map(
    db: &Database,
    query: &Query,
    sampled: &[(TableId, Vec<u32>)],
    table: TableId,
    key_col: ColumnId,
    visited: &mut Vec<TableId>,
) -> HashMap<i64, u64> {
    let t = db.table(table);
    // Defensive, as in `count_sampled`: missing table → empty map.
    let Some((_, rows)) = sampled.iter().find(|(tt, _)| *tt == table) else {
        return HashMap::new();
    };
    let mut children: Vec<(ColumnId, HashMap<i64, u64>)> = Vec::new();
    for j in &query.joins {
        let (my_col, other) = if j.left.table == table && !visited.contains(&j.right.table) {
            (j.left.column, j.right)
        } else if j.right.table == table && !visited.contains(&j.left.table) {
            (j.right.column, j.left)
        } else {
            continue;
        };
        visited.push(other.table);
        let sub = count_sampled_map(db, query, sampled, other.table, other.column, visited);
        children.push((my_col, sub));
    }
    let mut out = HashMap::new();
    for &r in rows {
        let mut mult = 1u64;
        for (col, map) in &children {
            match map.get(&t.column(*col).get_i64(r as usize)) {
                Some(&c) => mult *= c,
                None => {
                    mult = 0;
                    break;
                }
            }
        }
        if mult > 0 {
            *out.entry(t.column(key_col).get_i64(r as usize))
                .or_insert(0) += mult;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingEstimator;
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::Column;
    use qfe_exec::true_cardinality;

    fn join_db() -> Database {
        let dim = Table::new("dim", vec![("id".into(), Column::Int((0..1000).collect()))]);
        // Skewed fan-outs: popular keys attract many fact rows — the
        // regime where independent Bernoulli samples miss partners.
        let skewed_keys = |mult: usize| {
            let mut keys = Vec::new();
            for k in 0..1000i64 {
                let fan = 1 + (mult as i64 * 2000) / (k + 40);
                for _ in 0..fan {
                    keys.push(k);
                }
            }
            keys
        };
        let fact1 = Table::new(
            "fact1",
            vec![("dim_id".into(), Column::Int(skewed_keys(1)))],
        );
        let fact2 = Table::new(
            "fact2",
            vec![("dim_id".into(), Column::Int(skewed_keys(2)))],
        );
        Database::new(
            vec![dim, fact1, fact2],
            &[
                ForeignKey {
                    from: ("fact1".into(), "dim_id".into()),
                    to: ("dim".into(), "id".into()),
                },
                ForeignKey {
                    from: ("fact2".into(), "dim_id".into()),
                    to: ("dim".into(), "id".into()),
                },
            ],
        )
    }

    fn join_query() -> Query {
        Query {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![
                JoinPredicate {
                    left: ColumnRef::new(TableId(1), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
                JoinPredicate {
                    left: ColumnRef::new(TableId(2), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            ],
            predicates: vec![],
        }
    }

    fn rel_err(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth
    }

    #[test]
    fn correlated_beats_bernoulli_on_join_variance() {
        let db = join_db();
        let q = join_query();
        let truth = true_cardinality(&db, &q).unwrap() as f64; // 50 000
        let corr = CorrelatedSamplingEstimator::new(&db, 0.05, 7);
        let bern = SamplingEstimator::new(&db, 0.05, 7);
        let trials = 15;
        let corr_mse: f64 = (0..trials)
            .map(|_| rel_err(corr.estimate(&q), truth).powi(2))
            .sum::<f64>()
            / trials as f64;
        let bern_mse: f64 = (0..trials)
            .map(|_| rel_err(bern.estimate(&q), truth).powi(2))
            .sum::<f64>()
            / trials as f64;
        assert!(
            corr_mse < bern_mse,
            "correlated sampling should have lower error: {corr_mse} vs {bern_mse}"
        );
        // And it should be genuinely close.
        let e = corr.estimate(&q);
        assert!(rel_err(e, truth) < 0.4, "estimate {e} vs truth {truth}");
    }

    #[test]
    fn single_table_fallback_is_reasonable() {
        let db = join_db();
        let est = CorrelatedSamplingEstimator::new(&db, 0.1, 9);
        let q = Query::single_table(TableId(0), vec![]);
        let truth = 1000.0;
        let e = est.estimate(&q);
        assert!(rel_err(e, truth) < 0.2, "estimate {e}");
        assert_eq!(est.name(), "corr-sampling");
    }

    #[test]
    fn estimates_vary_per_query() {
        let db = join_db();
        let est = CorrelatedSamplingEstimator::new(&db, 0.02, 11);
        let q = join_query();
        let estimates: Vec<f64> = (0..5).map(|_| est.estimate(&q)).collect();
        assert!(estimates.windows(2).any(|w| w[0] != w[1]), "{estimates:?}");
    }
}
