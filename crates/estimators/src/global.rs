//! Global models (Section 2.1.2): a single estimator for all sub-schemata.
//!
//! Two variants, matching the paper's Table 2:
//!
//! * [`GlobalLearnedEstimator`] — any QFT over the whole catalog's
//!   attribute space, with the table-presence bit vector appended
//!   ([`GlobalTableEncoding`]), feeding any flat regressor.
//! * [`MscnEstimator`] — the MSCN architecture over (table, join,
//!   predicate) sets, in original per-predicate mode (`MSCN w/o mods`) or
//!   with the paper's per-attribute QFT predicate vectors (`MSCN + conj`).

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::featurize::mscn::{MscnFeaturizer, MscnSets, PredicateMode};
use qfe_core::featurize::{Featurizer, GlobalTableEncoding};
use qfe_core::schema::Catalog;
use qfe_core::{QfeError, Query};
use qfe_ml::mscn::{Mscn, MscnConfig};
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;

use crate::labels::LabeledQueries;
use crate::learned::LearnedEstimator;

/// A flat global model: QFT + table bits + regressor.
pub struct GlobalLearnedEstimator {
    inner: LearnedEstimator,
}

impl GlobalLearnedEstimator {
    /// Wrap `featurizer` (defined over the full catalog attribute space)
    /// with the table-presence encoding and pair it with `model`.
    pub fn new(
        featurizer: Box<dyn Featurizer + Send + Sync>,
        model: Box<dyn Regressor + Send + Sync>,
        catalog: &Catalog,
    ) -> Self {
        struct BoxedFeaturizer(Box<dyn Featurizer + Send + Sync>);
        impl Featurizer for BoxedFeaturizer {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn featurize(
                &self,
                query: &Query,
            ) -> Result<qfe_core::featurize::FeatureVec, QfeError> {
                self.0.featurize(query)
            }
        }
        let global = GlobalTableEncoding::new(BoxedFeaturizer(featurizer), catalog.table_count());
        GlobalLearnedEstimator {
            inner: LearnedEstimator::new(Box::new(global), model),
        }
    }

    /// Train on a labeled multi-sub-schema workload.
    pub fn fit(&mut self, data: &LabeledQueries) -> Result<(), QfeError> {
        self.inner.fit(data)
    }
}

impl CardinalityEstimator for GlobalLearnedEstimator {
    fn name(&self) -> String {
        format!("{} (global)", self.inner.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.inner.estimate(query)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// The MSCN global estimator.
pub struct MscnEstimator {
    featurizer: MscnFeaturizer,
    catalog: Catalog,
    model: Mscn,
    scaler: Option<LogScaler>,
    mode: PredicateMode,
}

impl MscnEstimator {
    /// Build an untrained MSCN estimator over `catalog`.
    ///
    /// # Errors
    /// [`QfeError::InvalidConfig`] if `mode` is invalid (e.g. a
    /// per-attribute bucket count of zero).
    pub fn new(
        catalog: &Catalog,
        mode: PredicateMode,
        config: MscnConfig,
    ) -> Result<Self, QfeError> {
        let featurizer = MscnFeaturizer::new(catalog, mode)?;
        let model = Mscn::new(
            config,
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.predicate_dim(),
        );
        Ok(MscnEstimator {
            featurizer,
            catalog: catalog.clone(),
            model,
            scaler: None,
            mode,
        })
    }

    fn featurize_all(&self, queries: &[Query]) -> Result<Vec<MscnSets>, QfeError> {
        queries
            .iter()
            .map(|q| self.featurizer.featurize(q, &self.catalog))
            .collect()
    }

    /// Train on a labeled workload.
    pub fn fit(&mut self, data: &LabeledQueries) -> Result<(), QfeError> {
        assert!(!data.is_empty(), "cannot train on an empty workload");
        let sets = self.featurize_all(&data.queries)?;
        let scaler = LogScaler::fit(&data.cardinalities)?;
        let y = scaler.transform_batch(&data.cardinalities);
        self.model.fit(&sets, &y);
        self.scaler = Some(scaler);
        Ok(())
    }
}

impl CardinalityEstimator for MscnEstimator {
    fn name(&self) -> String {
        match self.mode {
            PredicateMode::PerPredicate => "MSCN w/o mods (global)".into(),
            PredicateMode::PerAttributeRange => "MSCN + range (global)".into(),
            PredicateMode::PerAttribute { .. } => "MSCN + conj (global)".into(),
        }
    }

    fn estimate(&self, query: &Query) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 1.0;
        };
        match self.featurizer.featurize(query, &self.catalog) {
            Ok(sets) => scaler.inverse(self.model.predict(&sets)),
            Err(_) => 1.0,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::label_queries;
    use qfe_core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::{Column, Database};
    use qfe_ml::gbdt::{Gbdt, GbdtConfig};

    fn db() -> Database {
        let dim = Table::new(
            "dim",
            vec![
                ("id".into(), Column::Int((0..200).collect())),
                ("x".into(), Column::Int((0..200).map(|i| i % 50).collect())),
            ],
        );
        let fact = Table::new(
            "fact",
            vec![(
                "dim_id".into(),
                Column::Int((0..2000).map(|i| i % 200).collect()),
            )],
        );
        Database::new(
            vec![dim, fact],
            &[ForeignKey {
                from: ("fact".into(), "dim_id".into()),
                to: ("dim".into(), "id".into()),
            }],
        )
    }

    fn single_table_query(lo: i64) -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Ge, lo)],
            )],
        )
    }

    fn join_query(lo: i64) -> Query {
        Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Ge, lo)],
            )],
        }
    }

    fn workload(db: &Database) -> LabeledQueries {
        let mut queries = Vec::new();
        for lo in 0..49 {
            queries.push(single_table_query(lo));
            queries.push(join_query(lo));
        }
        label_queries(db, queries)
    }

    #[test]
    fn global_flat_model_distinguishes_sub_schemata() {
        let db = db();
        let data = workload(&db);
        let space = AttributeSpace::for_catalog(db.catalog());
        let mut est = GlobalLearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 16).unwrap()),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 60,
                min_samples_leaf: 2,
                ..GbdtConfig::default()
            })),
            db.catalog(),
        );
        est.fit(&data).unwrap();
        // Identical predicates, different sub-schemata → the table bits
        // must separate them (cardinalities differ by ~10×).
        let e1 = est.estimate(&single_table_query(10));
        let e2 = est.estimate(&join_query(10));
        assert!(
            e2 > e1 * 3.0,
            "global model should separate sub-schemata: {e1} vs {e2}"
        );
        assert!(est.name().contains("global"));
    }

    #[test]
    fn mscn_trains_and_estimates() {
        let db = db();
        let data = workload(&db);
        let mut est = MscnEstimator::new(
            db.catalog(),
            PredicateMode::PerAttribute {
                max_buckets: 16,
                attr_sel: true,
            },
            MscnConfig {
                hidden: 16,
                epochs: 80,
                batch_size: 16,
                learning_rate: 3e-3,
                seed: 1,
            },
        )
        .unwrap();
        est.fit(&data).unwrap();
        let mut errors = Vec::new();
        for lo in [5, 20, 40] {
            for q in [single_table_query(lo), join_query(lo)] {
                let truth = qfe_exec::true_cardinality(&db, &q).unwrap() as f64;
                let e = est.estimate(&q);
                errors.push((truth / e).max(e / truth));
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 3.0, "mean q-error {mean} ({errors:?})");
        assert_eq!(est.name(), "MSCN + conj (global)");
    }

    #[test]
    fn mscn_original_mode_name() {
        let db = db();
        let est = MscnEstimator::new(
            db.catalog(),
            PredicateMode::PerPredicate,
            MscnConfig::default(),
        )
        .unwrap();
        assert_eq!(est.name(), "MSCN w/o mods (global)");
        // Untrained estimates default to 1.
        assert_eq!(est.estimate(&single_table_query(5)), 1.0);
    }

    #[test]
    fn memory_reported() {
        let db = db();
        let est = MscnEstimator::new(
            db.catalog(),
            PredicateMode::PerPredicate,
            MscnConfig::default(),
        )
        .unwrap();
        assert!(est.memory_bytes() > 0);
    }

    #[test]
    fn equal_fingerprints_are_interchangeable_for_routing() {
        // The serving registry keys routing and caching on the
        // canonical query fingerprint. For that to be sound over a
        // global model, two queries with equal fingerprints must be
        // indistinguishable to the estimator: same sub-schema key and
        // bit-identical estimate.
        use qfe_core::QueryFingerprint;
        let db = db();
        let data = workload(&db);
        let space = AttributeSpace::for_catalog(db.catalog());
        let mut est = GlobalLearnedEstimator::new(
            Box::new(UniversalConjunctionEncoding::new(space, 16).unwrap()),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: 30,
                min_samples_leaf: 2,
                ..GbdtConfig::default()
            })),
            db.catalog(),
        );
        est.fit(&data).unwrap();

        let pred = |col: usize, lo: i64| {
            CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(col)),
                vec![SimplePredicate::new(CmpOp::Ge, lo)],
            )
        };
        let a = Query::single_table(TableId(0), vec![pred(0, 10), pred(1, 20)]);
        let b = Query::single_table(TableId(0), vec![pred(1, 20), pred(0, 10)]);
        assert_eq!(
            QueryFingerprint::of(&a),
            QueryFingerprint::of(&b),
            "reordered predicates must share a routing fingerprint"
        );
        assert_eq!(a.sub_schema(), b.sub_schema());
        let ea = est.estimate(&a);
        let eb = est.estimate(&b);
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "equal fingerprints must yield bit-identical global estimates"
        );
        // Different sub-schemata must not share a routing key: the
        // table-presence bits that separate them in the featurization
        // also separate them at the router.
        let j = join_query(10);
        assert_ne!(QueryFingerprint::of(&a), QueryFingerprint::of(&j));
        assert_ne!(a.sub_schema(), j.sub_schema());
    }
}
