//! Fault-tolerant estimator composition: the fallback chain and the
//! deterministic fault-injection wrapper used to test it.
//!
//! A production optimizer cannot tolerate an estimator that panics or
//! emits NaN — a single bad estimate poisons the plan search. The
//! [`FallbackChain`] makes the degradation path explicit: stages are
//! tried in order (typically learned model → histogram baseline →
//! sampling → constant floor), the first stage that produces a valid
//! estimate wins, and every estimate carries provenance
//! ([`Estimate::fallback_depth`] + the producing stage's name). The chain
//! itself upholds the hard guarantee: **always `Ok`, always finite,
//! always `>= 1`, never a panic** — even when a stage violates its own
//! contract, because the chain re-validates every stage output instead of
//! trusting it.
//!
//! Per-stage hit counters and per-[`EstimateErrorKind`] failure counters
//! make degradation observable: a deployment where the learned stage
//! silently answers 2 % of queries with the histogram baseline is a
//! drifted model, and the counters are how you notice.
//!
//! [`ChaosEstimator`] is the adversary: a wrapper that deterministically
//! (seeded, replayable) makes its inner estimator fail in each of the
//! ways a real estimator can — typed errors, NaN outputs, and
//! contract-violating garbage values. The `fault_injection` integration
//! test drives a chain of chaos-wrapped stages over generated workloads
//! to check the guarantee holds under any failure combination.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qfe_core::error::{EstimateError, EstimateErrorKind};
use qfe_core::estimator::{CardinalityEstimator, Estimate};
use qfe_core::Query;
use qfe_obs::Recorder;

/// One consistent snapshot of a [`FallbackChain`]'s counters.
///
/// Tests and dashboards should read counters through this instead of
/// stitching together individual relaxed atomic loads: a single snapshot
/// keeps related numbers (stage hits, floor hits, fallback count, error
/// buckets) from being sampled at different points of a concurrent run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStats {
    /// Estimates produced per real stage, in chain order.
    pub stage_hits: Vec<u64>,
    /// Estimates answered by the implicit constant floor.
    pub floor_hits: u64,
    /// Estimates that required at least one fallback (any answer not
    /// produced by stage 0, floor included).
    pub fallback_count: u64,
    /// Stage failures bucketed by [`EstimateErrorKind`] label, in
    /// [`EstimateErrorKind::ALL`] order.
    pub error_counts: Vec<(&'static str, u64)>,
}

impl ChainStats {
    /// The count recorded for one error-kind label (0 if absent).
    pub fn errors_of(&self, label: &str) -> u64 {
        self.error_counts
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Total failures across all error kinds.
    pub fn total_errors(&self) -> u64 {
        self.error_counts.iter().map(|(_, n)| n).sum()
    }

    /// Total answers produced (stages + floor).
    pub fn total_hits(&self) -> u64 {
        self.stage_hits.iter().sum::<u64>() + self.floor_hits
    }
}

/// Precomputed metric names for one chain stage, so the per-call
/// recording path never formats or allocates.
struct StageMetricNames {
    attempts: String,
    hits: String,
    latency: String,
    /// One counter name per [`EstimateErrorKind`], indexed by
    /// [`EstimateErrorKind::as_index`].
    errors: [String; EstimateErrorKind::COUNT],
}

/// Recorder plus the precomputed name table for every stage.
struct ChainMetrics {
    recorder: Arc<dyn Recorder>,
    stages: Vec<StageMetricNames>,
    floor_hits: String,
}

/// Composes estimators into an ordered fallback sequence with an implicit
/// constant floor (see the module docs).
pub struct FallbackChain<'a> {
    stages: Vec<Box<dyn CardinalityEstimator + 'a>>,
    floor: f64,
    /// Hits per stage, plus one trailing slot for the floor.
    stage_hits: Vec<AtomicU64>,
    /// Stage failures bucketed by [`EstimateErrorKind`].
    error_counts: [AtomicU64; EstimateErrorKind::COUNT],
    metrics: Option<ChainMetrics>,
}

impl<'a> FallbackChain<'a> {
    /// Build a chain over `stages`, tried in order. The implicit final
    /// stage is a constant floor of `1.0` (the most conservative legal
    /// estimate), so the chain as a whole is total.
    pub fn new(stages: Vec<Box<dyn CardinalityEstimator + 'a>>) -> Self {
        let n = stages.len();
        FallbackChain {
            stages,
            floor: 1.0,
            stage_hits: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            error_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            metrics: None,
        }
    }

    /// Additionally publish per-stage attempt/hit/error counters and a
    /// per-stage latency histogram to `recorder`, under
    /// `<prefix>.stage<i>.{attempts,hits,latency,errors.<kind>}` plus
    /// `<prefix>.floor.hits`. All names are precomputed here; the
    /// per-call recording path never allocates. The internal
    /// [`ChainStats`] counters keep working either way.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>, prefix: &str) -> Self {
        let stages = (0..self.stages.len())
            .map(|i| StageMetricNames {
                attempts: format!("{prefix}.stage{i}.attempts"),
                hits: format!("{prefix}.stage{i}.hits"),
                latency: format!("{prefix}.stage{i}.latency"),
                errors: std::array::from_fn(|k| {
                    format!(
                        "{prefix}.stage{i}.errors.{}",
                        EstimateErrorKind::ALL[k].label()
                    )
                }),
            })
            .collect();
        self.metrics = Some(ChainMetrics {
            recorder,
            stages,
            floor_hits: format!("{prefix}.floor.hits"),
        });
        self
    }

    /// Replace the constant floor (clamped to `>= 1` to keep the chain's
    /// output contract intact).
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = if floor.is_finite() {
            floor.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// Number of estimator stages (excluding the implicit floor).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// One snapshot of every chain counter — stage hits, floor hits,
    /// fallback count, and per-kind error buckets. Prefer this over
    /// loading individual counters: under concurrency it yields one
    /// coherent view instead of counters sampled at different times.
    pub fn stage_stats(&self) -> ChainStats {
        let all: Vec<u64> = self
            .stage_hits
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let (stage_hits, floor) = all.split_at(self.stages.len());
        ChainStats {
            stage_hits: stage_hits.to_vec(),
            floor_hits: floor[0],
            fallback_count: all[1..].iter().sum(),
            error_counts: EstimateErrorKind::ALL
                .iter()
                .map(|k| {
                    (
                        k.label(),
                        self.error_counts[k.as_index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
        }
    }

    /// How many estimates each stage produced; the final entry is the
    /// constant floor. Prefer [`stage_stats`](Self::stage_stats) for a
    /// coherent multi-counter view.
    pub fn stage_hits(&self) -> Vec<u64> {
        self.stage_hits
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// How many estimates required at least one fallback (i.e. were not
    /// answered by the first stage).
    pub fn fallback_count(&self) -> u64 {
        self.stage_stats().fallback_count
    }

    /// Stage failures observed so far, labelled by error class.
    pub fn error_counts(&self) -> Vec<(&'static str, u64)> {
        self.stage_stats().error_counts
    }

    fn record_error(&self, kind: EstimateErrorKind) {
        self.error_counts[kind.as_index()].fetch_add(1, Ordering::Relaxed);
    }
}

impl CardinalityEstimator for FallbackChain<'_> {
    fn name(&self) -> String {
        let mut parts: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        parts.push("floor".into());
        format!("fallback({})", parts.join(" → "))
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.try_estimate(query) {
            Ok(e) => e.value,
            // Unreachable: the floor makes the chain total. Still, the
            // infallible contract must hold even if that invariant is
            // broken by a future edit.
            Err(_) => self.floor,
        }
    }

    /// Never returns `Err`: the constant floor answers when every real
    /// stage has failed. The `Result` signature is kept so the chain
    /// composes as a stage of an outer chain.
    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        for (depth, stage) in self.stages.iter().enumerate() {
            let names = self
                .metrics
                .as_ref()
                .map(|m| (&m.recorder, &m.stages[depth]));
            if let Some((recorder, names)) = names {
                recorder.incr(&names.attempts);
            }
            let started = Instant::now();
            let outcome = stage.try_estimate(query);
            if let Some((recorder, names)) = names {
                recorder.record(&names.latency, started.elapsed());
            }
            match outcome {
                Ok(est) => {
                    // Defense in depth: an `Ok` is only trusted after
                    // re-validation — a buggy (or chaos-injected) stage
                    // may hand back NaN wrapped in `Ok`.
                    if est.value.is_finite() && est.value >= 1.0 {
                        self.stage_hits[depth].fetch_add(1, Ordering::Relaxed);
                        if let Some((recorder, names)) = names {
                            recorder.incr(&names.hits);
                        }
                        // Provenance names the *stage* as this chain sees
                        // it (e.g. `chaos(postgres)`), not whatever label
                        // the stage put on its own answer — the chain's
                        // observability story is about its own stages.
                        return Ok(Estimate {
                            value: est.value,
                            estimator: stage.name(),
                            fallback_depth: depth,
                        });
                    }
                    self.record_error(EstimateErrorKind::NonFinite);
                    if let Some((recorder, names)) = names {
                        recorder.incr(&names.errors[EstimateErrorKind::NonFinite.as_index()]);
                    }
                }
                Err(e) => {
                    self.record_error(e.kind());
                    if let Some((recorder, names)) = names {
                        recorder.incr(&names.errors[e.kind().as_index()]);
                    }
                }
            }
        }
        let depth = self.stages.len();
        self.stage_hits[depth].fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.recorder.incr(&m.floor_hits);
        }
        Ok(Estimate {
            value: self.floor,
            estimator: "floor".into(),
            fallback_depth: depth,
        })
    }

    /// Batched chain traversal: each stage sees **one**
    /// [`estimate_batch`](CardinalityEstimator::estimate_batch) call
    /// covering every query still unanswered at its depth, so a
    /// batch-aware first stage (the learned estimator) amortizes its
    /// featurize-and-forward across the whole batch while only the
    /// per-row failures are routed down the fallback stages. Counters
    /// and provenance match the singleton path exactly: a query answered
    /// at depth `d` bumps the same stage-hit and error buckets it would
    /// have under [`try_estimate`](CardinalityEstimator::try_estimate).
    /// Per-stage latency is recorded amortized (batch elapsed ÷ rows
    /// attempted, once per row), so histogram counts stay comparable
    /// with the singleton path while the sum reflects wall time.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        let floor_depth = self.stages.len();
        let mut results: Vec<Option<Estimate>> = vec![None; queries.len()];
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        for (depth, stage) in self.stages.iter().enumerate() {
            if pending.is_empty() {
                break;
            }
            let names = self
                .metrics
                .as_ref()
                .map(|m| (&m.recorder, &m.stages[depth]));
            if let Some((recorder, names)) = names {
                recorder.add(&names.attempts, pending.len() as u64);
            }
            let sub: Vec<Query> = pending.iter().map(|&i| queries[i].clone()).collect();
            let started = Instant::now();
            let outcomes = stage.estimate_batch(&sub);
            if let Some((recorder, names)) = names {
                let amortized = started.elapsed() / pending.len() as u32;
                for _ in &pending {
                    recorder.record(&names.latency, amortized);
                }
            }
            let mut still_pending = Vec::with_capacity(pending.len());
            // `zip` also absorbs a contract-violating stage that returns
            // the wrong number of outcomes: rows left over either way
            // stay unanswered and fall through to the floor.
            for (&i, outcome) in pending.iter().zip(outcomes) {
                match outcome {
                    // Same defense-in-depth re-validation as the
                    // singleton path: `Ok` is only trusted when finite
                    // and `>= 1`.
                    Ok(est) if est.value.is_finite() && est.value >= 1.0 => {
                        self.stage_hits[depth].fetch_add(1, Ordering::Relaxed);
                        if let Some((recorder, names)) = names {
                            recorder.incr(&names.hits);
                        }
                        results[i] = Some(Estimate {
                            value: est.value,
                            estimator: stage.name(),
                            fallback_depth: depth,
                        });
                    }
                    Ok(_) => {
                        self.record_error(EstimateErrorKind::NonFinite);
                        if let Some((recorder, names)) = names {
                            recorder.incr(&names.errors[EstimateErrorKind::NonFinite.as_index()]);
                        }
                        still_pending.push(i);
                    }
                    Err(e) => {
                        self.record_error(e.kind());
                        if let Some((recorder, names)) = names {
                            recorder.incr(&names.errors[e.kind().as_index()]);
                        }
                        still_pending.push(i);
                    }
                }
            }
            pending = still_pending;
        }
        results
            .into_iter()
            .map(|slot| match slot {
                Some(est) => Ok(est),
                None => {
                    self.stage_hits[floor_depth].fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.recorder.incr(&m.floor_hits);
                    }
                    Ok(Estimate {
                        value: self.floor,
                        estimator: "floor".into(),
                        fallback_depth: floor_depth,
                    })
                }
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.memory_bytes()).sum()
    }
}

/// The failure modes [`ChaosEstimator`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorFault {
    /// `try_estimate` returns a typed [`EstimateError::Internal`].
    Error,
    /// The estimator "succeeds" with a NaN value — a contract violation
    /// that downstream consumers must catch.
    Nan,
    /// The estimator "succeeds" with finite garbage below the legal
    /// minimum (negative cardinality).
    Garbage,
    /// The call sleeps for the wrapper's configured latency
    /// ([`ChaosEstimator::with_latency`]) and then answers correctly — an
    /// inference-latency spike, the fault deadlines and breakers exist
    /// for. Which calls stall is seeded and replayable like every other
    /// fault; the stall duration itself is fixed, not random, so timeout
    /// assertions stay deterministic.
    Latency,
    /// The call panics — the fault `catch_unwind` isolation exists for.
    /// The panic payload is [`ChaosEstimator::PANIC_MSG`], so test panic
    /// hooks can tell injected panics from real assertion failures.
    Panic,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic fault-injection wrapper around any estimator.
///
/// Each call fails independently with probability `rate`; whether call
/// `n` fails — and with which of the configured faults — is a pure
/// function of `(seed, n)`, so any failing test case replays exactly.
pub struct ChaosEstimator<E> {
    inner: E,
    faults: Vec<EstimatorFault>,
    rate: f64,
    seed: u64,
    latency: Duration,
    calls: AtomicU64,
}

impl<E: CardinalityEstimator> ChaosEstimator<E> {
    /// Panic payload of [`EstimatorFault::Panic`].
    pub const PANIC_MSG: &'static str = "chaos: injected estimator panic";

    /// Wrap `inner`, injecting one of `faults` (chosen deterministically
    /// per call) with probability `rate` per call. An empty `faults` list
    /// disables injection.
    pub fn new(inner: E, faults: Vec<EstimatorFault>, rate: f64, seed: u64) -> Self {
        ChaosEstimator {
            inner,
            faults,
            rate: rate.clamp(0.0, 1.0),
            seed,
            latency: Duration::from_millis(25),
            calls: AtomicU64::new(0),
        }
    }

    /// Set the stall duration injected by [`EstimatorFault::Latency`]
    /// (default 25 ms).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The fault for the next call, if one fires.
    fn next_fault(&self) -> Option<EstimatorFault> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.faults.is_empty() {
            return None;
        }
        let h = splitmix64(self.seed ^ call.wrapping_mul(0x85EB_CA6B));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit < self.rate {
            Some(self.faults[(splitmix64(h) % self.faults.len() as u64) as usize])
        } else {
            None
        }
    }
}

impl<E: CardinalityEstimator> CardinalityEstimator for ChaosEstimator<E> {
    fn name(&self) -> String {
        format!("chaos({})", self.inner.name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.next_fault() {
            None => self.inner.estimate(query),
            Some(EstimatorFault::Error) | Some(EstimatorFault::Nan) => f64::NAN,
            Some(EstimatorFault::Garbage) => -1e9,
            Some(EstimatorFault::Latency) => {
                std::thread::sleep(self.latency);
                self.inner.estimate(query)
            }
            Some(EstimatorFault::Panic) => panic!("{}", Self::PANIC_MSG),
        }
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        match self.next_fault() {
            None => self.inner.try_estimate(query),
            Some(EstimatorFault::Error) => Err(EstimateError::Internal {
                estimator: self.name(),
                message: "injected fault".into(),
            }),
            // Nan and Garbage deliberately violate the Ok contract — this
            // is what a buggy estimator looks like from the outside, and
            // exactly what the chain's re-validation must absorb.
            Some(EstimatorFault::Nan) => Ok(Estimate::primary(f64::NAN, self.name())),
            Some(EstimatorFault::Garbage) => Ok(Estimate::primary(-1e9, self.name())),
            // A stall, then a *correct* answer: slow is its own failure
            // mode, distinct from wrong.
            Some(EstimatorFault::Latency) => {
                std::thread::sleep(self.latency);
                self.inner.try_estimate(query)
            }
            Some(EstimatorFault::Panic) => panic!("{}", Self::PANIC_MSG),
        }
    }

    /// Identical to the trait default, pinned here on purpose: faults
    /// are drawn **per row in row order**, so a batch of `n` fails
    /// exactly the calls that `n` singleton calls would have failed.
    /// Replayability of seeded test cases depends on this — do not
    /// "optimize" it into one draw per batch.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        queries.iter().map(|q| self.try_estimate(q)).collect()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::TableId;

    struct Constant(f64);

    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    fn q() -> Query {
        Query::single_table(TableId(0), vec![])
    }

    #[test]
    fn first_valid_stage_wins() {
        let chain = FallbackChain::new(vec![Box::new(Constant(100.0)), Box::new(Constant(5.0))]);
        let e = chain.try_estimate(&q()).unwrap();
        assert_eq!(e.value, 100.0);
        assert_eq!(e.fallback_depth, 0);
        assert!(!e.fell_back());
        let stats = chain.stage_stats();
        assert_eq!(stats.stage_hits, vec![1, 0]);
        assert_eq!(stats.floor_hits, 0);
        assert_eq!(stats.fallback_count, 0);
        assert_eq!(stats.total_hits(), 1);
    }

    #[test]
    fn invalid_primary_falls_through_with_provenance() {
        let chain = FallbackChain::new(vec![
            Box::new(Constant(f64::NAN)),
            Box::new(Constant(0.0)), // < 1: also invalid
            Box::new(Constant(7.0)),
        ]);
        let e = chain.try_estimate(&q()).unwrap();
        assert_eq!(e.value, 7.0);
        assert_eq!(e.estimator, "constant");
        assert_eq!(e.fallback_depth, 2);
        assert!(e.fell_back());
        let stats = chain.stage_stats();
        assert_eq!(stats.stage_hits, vec![0, 0, 1]);
        assert_eq!(stats.floor_hits, 0);
        assert_eq!(stats.fallback_count, 1);
        assert_eq!(stats.errors_of("non-finite"), 2);
        assert_eq!(stats.total_errors(), 2);
    }

    #[test]
    fn floor_answers_when_everything_fails() {
        let chain = FallbackChain::new(vec![Box::new(Constant(f64::NAN))]).with_floor(3.0);
        let e = chain.try_estimate(&q()).unwrap();
        assert_eq!(e.value, 3.0);
        assert_eq!(e.estimator, "floor");
        assert_eq!(e.fallback_depth, 1);
        assert_eq!(chain.estimate(&q()), 3.0);
        let stats = chain.stage_stats();
        assert_eq!(stats.stage_hits, vec![0]);
        assert_eq!(stats.floor_hits, 2);
        assert_eq!(stats.fallback_count, 2);
        // An empty chain is just the floor.
        let empty = FallbackChain::new(vec![]);
        assert_eq!(empty.try_estimate(&q()).unwrap().value, 1.0);
        assert_eq!(empty.stage_stats().floor_hits, 1);
    }

    #[test]
    fn floor_is_clamped_to_legal_range() {
        let chain = FallbackChain::new(vec![]).with_floor(0.25);
        assert_eq!(chain.try_estimate(&q()).unwrap().value, 1.0);
        let chain = FallbackChain::new(vec![]).with_floor(f64::NAN);
        assert_eq!(chain.try_estimate(&q()).unwrap().value, 1.0);
    }

    #[test]
    fn name_spells_out_the_chain() {
        let chain = FallbackChain::new(vec![Box::new(Constant(2.0))]);
        assert_eq!(chain.name(), "fallback(constant → floor)");
    }

    #[test]
    fn recorder_sees_per_stage_attempts_hits_errors_and_latency() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let chain = FallbackChain::new(vec![Box::new(Constant(f64::NAN)), Box::new(Constant(9.0))])
            .with_recorder(recorder.clone(), "chain");
        for _ in 0..4 {
            assert_eq!(chain.try_estimate(&q()).unwrap().value, 9.0);
        }
        assert_eq!(recorder.counter("chain.stage0.attempts"), 4);
        assert_eq!(recorder.counter("chain.stage0.hits"), 0);
        assert_eq!(recorder.counter("chain.stage0.errors.non-finite"), 4);
        assert_eq!(recorder.counter("chain.stage1.attempts"), 4);
        assert_eq!(recorder.counter("chain.stage1.hits"), 4);
        assert_eq!(recorder.counter("chain.floor.hits"), 0);
        let snap = recorder.snapshot();
        let h = snap
            .histogram("chain.stage1.latency")
            .expect("latency histogram");
        assert_eq!(h.count, 4);
    }

    #[test]
    fn recorder_counts_the_floor() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let chain = FallbackChain::new(vec![Box::new(Constant(f64::NAN))])
            .with_recorder(recorder.clone(), "c");
        let _ = chain.try_estimate(&q()).unwrap();
        assert_eq!(recorder.counter("c.floor.hits"), 1);
    }

    #[test]
    fn chaos_zero_rate_is_transparent() {
        let chaos = ChaosEstimator::new(Constant(42.0), vec![EstimatorFault::Nan], 0.0, 1);
        for _ in 0..50 {
            assert_eq!(chaos.try_estimate(&q()).unwrap().value, 42.0);
        }
    }

    #[test]
    fn chaos_full_rate_always_faults() {
        let chaos = ChaosEstimator::new(Constant(42.0), vec![EstimatorFault::Error], 1.0, 1);
        for _ in 0..20 {
            let err = chaos.try_estimate(&q()).unwrap_err();
            assert_eq!(err.kind(), EstimateErrorKind::Internal);
        }
    }

    #[test]
    fn chaos_is_deterministic_in_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let chaos = ChaosEstimator::new(
                Constant(42.0),
                vec![EstimatorFault::Error, EstimatorFault::Nan],
                0.5,
                seed,
            );
            (0..64).map(|_| chaos.try_estimate(&q()).is_err()).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn chain_over_chaos_upholds_the_guarantee() {
        let chain = FallbackChain::new(vec![
            Box::new(ChaosEstimator::new(
                Constant(50.0),
                vec![
                    EstimatorFault::Error,
                    EstimatorFault::Nan,
                    EstimatorFault::Garbage,
                ],
                0.9,
                13,
            )),
            Box::new(Constant(5.0)),
        ]);
        for _ in 0..200 {
            let e = chain.try_estimate(&q()).unwrap();
            assert!(e.value.is_finite() && e.value >= 1.0, "{e:?}");
        }
        let stats = chain.stage_stats();
        assert!(
            stats.stage_hits[0] > 0,
            "chaos stage sometimes answers: {stats:?}"
        );
        assert!(
            stats.stage_hits[1] > 0,
            "fallback sometimes fires: {stats:?}"
        );
        assert_eq!(stats.floor_hits, 0, "floor never needed: {stats:?}");
        assert_eq!(stats.total_hits(), 200);
    }

    #[test]
    fn latency_fault_stalls_then_answers_correctly() {
        let chaos = ChaosEstimator::new(Constant(42.0), vec![EstimatorFault::Latency], 1.0, 1)
            .with_latency(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        let e = chaos.try_estimate(&q()).unwrap();
        assert_eq!(e.value, 42.0, "latency fault must not corrupt the value");
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "the injected stall must be observable"
        );
        // Seeded like every other fault: a rate-0.5 wrapper stalls the
        // same calls on every run.
        let stalls = |seed: u64| -> Vec<bool> {
            let c = ChaosEstimator::new(Constant(1.0), vec![EstimatorFault::Latency], 0.5, seed)
                .with_latency(Duration::ZERO);
            (0..32).map(|_| c.next_fault().is_some()).collect()
        };
        assert_eq!(stalls(3), stalls(3));
        assert_ne!(stalls(3), stalls(4));
    }

    /// Counts how many `estimate_batch` calls reach it, to prove the
    /// chain batches a stage instead of looping `try_estimate`.
    struct CountingStage {
        value: f64,
        batch_calls: Arc<AtomicU64>,
    }

    impl CardinalityEstimator for CountingStage {
        fn name(&self) -> String {
            "counting".into()
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.value
        }

        fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            queries.iter().map(|q| self.try_estimate(q)).collect()
        }
    }

    #[test]
    fn batched_chain_matches_singleton_results_and_counters() {
        let faults = vec![
            EstimatorFault::Error,
            EstimatorFault::Nan,
            EstimatorFault::Garbage,
        ];
        let make = || {
            FallbackChain::new(vec![
                Box::new(ChaosEstimator::new(Constant(50.0), faults.clone(), 0.5, 21))
                    as Box<dyn CardinalityEstimator>,
                Box::new(ChaosEstimator::new(Constant(5.0), faults.clone(), 0.4, 9)),
            ])
        };
        let singleton = make();
        let batched = make();
        let queries: Vec<Query> = (0..64).map(|_| q()).collect();
        let solo: Vec<Estimate> = queries
            .iter()
            .map(|qq| singleton.try_estimate(qq).unwrap())
            .collect();
        let batch: Vec<Estimate> = batched
            .estimate_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        // Same answers, same provenance, same depth — and the same
        // counter state afterwards: per-row fault draws keep the two
        // execution shapes replay-identical.
        assert_eq!(solo, batch);
        assert_eq!(singleton.stage_stats(), batched.stage_stats());
        assert!(
            batched.stage_stats().floor_hits > 0,
            "fault rates chosen so some rows reach the floor: {:?}",
            batched.stage_stats()
        );
    }

    #[test]
    fn chain_batches_each_stage_once() {
        let batch_calls = Arc::new(AtomicU64::new(0));
        let chain = FallbackChain::new(vec![
            Box::new(Constant(f64::NAN)) as Box<dyn CardinalityEstimator>,
            Box::new(CountingStage {
                value: 9.0,
                batch_calls: batch_calls.clone(),
            }),
        ]);
        let queries: Vec<Query> = (0..16).map(|_| q()).collect();
        let out = chain.estimate_batch(&queries);
        assert_eq!(out.len(), 16);
        for r in &out {
            assert_eq!(r.as_ref().unwrap().value, 9.0);
            assert_eq!(r.as_ref().unwrap().fallback_depth, 1);
        }
        // Stage 1 saw the 16 stage-0 failures as ONE batched call.
        assert_eq!(batch_calls.load(Ordering::Relaxed), 1);
        let stats = chain.stage_stats();
        assert_eq!(stats.stage_hits, vec![0, 16]);
        assert_eq!(stats.errors_of("non-finite"), 16);
    }

    #[test]
    fn batched_chain_records_stage_metrics_like_singleton() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let chain = FallbackChain::new(vec![Box::new(Constant(f64::NAN)), Box::new(Constant(9.0))])
            .with_recorder(recorder.clone(), "chain");
        let queries: Vec<Query> = (0..4).map(|_| q()).collect();
        for r in chain.estimate_batch(&queries) {
            assert_eq!(r.unwrap().value, 9.0);
        }
        assert_eq!(recorder.counter("chain.stage0.attempts"), 4);
        assert_eq!(recorder.counter("chain.stage0.errors.non-finite"), 4);
        assert_eq!(recorder.counter("chain.stage1.attempts"), 4);
        assert_eq!(recorder.counter("chain.stage1.hits"), 4);
        assert_eq!(recorder.counter("chain.floor.hits"), 0);
        // Amortized per-row recording keeps histogram counts aligned
        // with attempts, exactly as in the singleton path.
        let snap = recorder.snapshot();
        let h = snap
            .histogram("chain.stage1.latency")
            .expect("latency histogram");
        assert_eq!(h.count, 4);
    }

    #[test]
    fn empty_batch_through_the_chain_is_empty() {
        let chain = FallbackChain::new(vec![Box::new(Constant(2.0))]);
        assert!(chain.estimate_batch(&[]).is_empty());
        assert_eq!(chain.stage_stats().total_hits(), 0);
    }

    #[test]
    fn panic_fault_panics_with_the_documented_payload() {
        let chaos = ChaosEstimator::new(Constant(1.0), vec![EstimatorFault::Panic], 1.0, 1);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.try_estimate(&q())))
                .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, ChaosEstimator::<Constant>::PANIC_MSG);
    }
}
