//! Labeling utilities: run the counting oracle over a workload to obtain
//! training/test cardinalities. Queries with empty results are filtered,
//! following the paper ("we consider only queries with non-empty
//! results").

use qfe_core::Query;
use qfe_data::Database;
use qfe_exec::true_cardinality;

/// A labeled workload: queries paired with true cardinalities.
#[derive(Debug, Clone, Default)]
pub struct LabeledQueries {
    /// The queries.
    pub queries: Vec<Query>,
    /// Their exact result cardinalities.
    pub cardinalities: Vec<f64>,
}

impl LabeledQueries {
    /// Number of labeled queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Split off the first `n` queries (e.g. train/test partitioning of a
    /// pre-shuffled workload).
    pub fn split_at(mut self, n: usize) -> (LabeledQueries, LabeledQueries) {
        let n = n.min(self.len());
        let tail_q = self.queries.split_off(n);
        let tail_c = self.cardinalities.split_off(n);
        (
            self,
            LabeledQueries {
                queries: tail_q,
                cardinalities: tail_c,
            },
        )
    }

    /// Keep only queries satisfying `pred` (paired with their labels).
    pub fn filter(self, mut pred: impl FnMut(&Query, f64) -> bool) -> LabeledQueries {
        let mut out = LabeledQueries::default();
        for (q, c) in self.queries.into_iter().zip(self.cardinalities) {
            if pred(&q, c) {
                out.queries.push(q);
                out.cardinalities.push(c);
            }
        }
        out
    }
}

/// Label `queries` against `db`, dropping queries with empty results and
/// queries the counting oracle cannot handle.
pub fn label_queries(db: &Database, queries: Vec<Query>) -> LabeledQueries {
    let mut out = LabeledQueries::default();
    for q in queries {
        if let Ok(card) = true_cardinality(db, &q) {
            if card > 0 {
                out.cardinalities.push(card as f64);
                out.queries.push(q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::{ColumnId, TableId};
    use qfe_data::table::Table;
    use qfe_data::Column;

    fn db() -> Database {
        Database::new(
            vec![Table::new(
                "t",
                vec![("a".into(), Column::Int((0..100).collect()))],
            )],
            &[],
        )
    }

    fn lt(v: i64) -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Lt, v)],
            )],
        )
    }

    #[test]
    fn labels_and_filters_empty_results() {
        let labeled = label_queries(&db(), vec![lt(10), lt(-5), lt(50)]);
        // lt(-5) has an empty result and is dropped.
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled.cardinalities, vec![10.0, 50.0]);
    }

    #[test]
    fn split_preserves_pairing() {
        let labeled = label_queries(&db(), vec![lt(10), lt(20), lt(30)]);
        let (a, b) = labeled.split_at(2);
        assert_eq!(a.cardinalities, vec![10.0, 20.0]);
        assert_eq!(b.cardinalities, vec![30.0]);
        assert_eq!(a.queries.len(), 2);
        assert_eq!(b.queries.len(), 1);
    }

    #[test]
    fn filter_by_attribute_count() {
        let labeled = label_queries(&db(), vec![lt(10), lt(20)]);
        let kept = labeled.filter(|_, c| c > 15.0);
        assert_eq!(kept.cardinalities, vec![20.0]);
        assert!(!kept.is_empty());
    }

    #[test]
    fn split_beyond_len_is_safe() {
        let labeled = label_queries(&db(), vec![lt(10)]);
        let (a, b) = labeled.split_at(10);
        assert_eq!(a.len(), 1);
        assert!(b.is_empty());
    }
}
