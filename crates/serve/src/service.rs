//! The deadline-aware estimation front end.
//!
//! [`EstimatorService`] wraps an ordered stack of estimator stages
//! (typically: hot-swappable learned model → histogram baseline →
//! sampling) behind one thread-safe request surface with four layers of
//! protection, outermost first:
//!
//! 1. **Admission** ([`crate::admission`]): at most `max_concurrency`
//!    requests run at once; a bounded queue absorbs bursts and sheds load
//!    beyond it with a typed [`ServeError::Overloaded`].
//! 2. **Deadline** ([`qfe_core::Deadline`]): every request carries a time
//!    budget through the stage loop. Each stage gets a *fair share* of the
//!    remaining budget (`remaining / stages_left`), so a stalled learned
//!    stage is abandoned mid-chain and the leftover budget flows to the
//!    cheap fallbacks instead of dying with the stall.
//! 3. **Panic isolation**: every stage call runs under `catch_unwind`
//!    (on a watchdog thread when a real budget applies); a panicking model
//!    becomes a per-stage failure that falls through — it never crosses
//!    the service boundary and never poisons another request.
//! 4. **Circuit breaking** ([`qfe_estimators::breaker`]): consecutive
//!    failures open a per-stage breaker, so a corrupt or drifted model is
//!    *skipped* (fast typed `CircuitOpen`) instead of burning every
//!    request's budget, and probed back in after an exponential cooldown.
//!
//! The response contract mirrors the chain's, hardened for concurrency:
//! every request gets a finite [`Estimate`] `>= 1` (a real stage or the
//! constant floor) or a typed [`ServeError`] — never a panic, never NaN,
//! under any interleaving of failures.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::time::{Duration, Instant};

use qfe_core::error::EstimateErrorKind;
use qfe_core::estimator::Estimate;
use qfe_core::{Deadline, Query};
use qfe_estimators::breaker::{BreakerConfig, BreakerStats, CircuitBreaker};
use qfe_obs::{MetricsRecorder, MetricsSnapshot, QErrorWindow, Recorder};

use crate::adapt::FeedbackSink;
use crate::admission::{AdmissionQueue, AdmissionStats};
use crate::error::{FeedbackError, ServeError, ShedPolicy};
use crate::slot::SharedEstimator;

/// Truths above this are treated as corrupted upstream counters (no real
/// table has 10^18 rows) and rejected as [`FeedbackError::AbsurdTruth`].
const ABSURD_TRUTH: f64 = 1e18;

/// Tuning for an [`EstimatorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Requests executing concurrently; more wait in the queue.
    pub max_concurrency: usize,
    /// Waiting requests beyond which the service sheds load.
    pub queue_capacity: usize,
    /// Who eats the `Overloaded` error when the queue is full.
    pub shed_policy: ShedPolicy,
    /// Budget used by [`EstimatorService::estimate`] when the caller does
    /// not bring a deadline of their own.
    pub default_budget: Duration,
    /// Breaker tuning applied to every stage.
    pub breaker: BreakerConfig,
    /// The constant answered when every stage fails within budget
    /// (clamped finite and `>= 1`).
    pub floor: f64,
    /// Sliding-window size of the online q-error tracker fed by
    /// [`EstimatorService::observe_truth`]. The window *size* is clamped
    /// to `>= 1`; observed pairs are never clamped on entry — an invalid
    /// truth or estimate is rejected with a typed [`FeedbackError`]
    /// instead. Accepted truths in `(0, 1)` (sub-row cardinalities) are
    /// treated as 1 only inside the q-error computation itself.
    pub qerror_window: usize,
    /// Worker threads a [`crate::batch::MicroBatcher`] runs over this
    /// service (clamped to `>= 1` when a batcher is started).
    pub workers: usize,
    /// Most requests a micro-batch worker coalesces into one batched
    /// dispatch (clamped to `>= 1`).
    pub max_batch_size: usize,
    /// How long a draining worker waits for more requests before
    /// dispatching a partial batch.
    pub max_batch_wait: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrency: 8,
            queue_capacity: 16,
            shed_policy: ShedPolicy::RejectNew,
            default_budget: Duration::from_millis(100),
            breaker: BreakerConfig::default(),
            floor: 1.0,
            qerror_window: 1024,
            workers: 2,
            max_batch_size: 32,
            max_batch_wait: Duration::from_millis(1),
        }
    }
}

/// End-to-end request latency histogram name (admission wait included).
pub const REQUEST_LATENCY_METRIC: &str = "serve.request.latency";

/// Batch-size histogram name. Sizes are recorded on the histogram's
/// nanosecond scale (a 32-row batch records as 32 ns), so `count` is the
/// number of drains, `sum` the total rows, and the percentiles read
/// directly as batch sizes.
pub const BATCH_SIZE_METRIC: &str = "serve.batch.size";

/// Budgets at or above this are treated as "no real deadline": the stage
/// runs inline (still panic-isolated) instead of on a watchdog thread.
const INLINE_BUDGET: Duration = Duration::from_secs(60 * 60);

/// How one stage call ended, from the service's point of view.
enum Outcome {
    /// A valid (finite, `>= 1`) estimate.
    Answer(f64),
    /// A typed failure (including an `Ok` wrapping an illegal value,
    /// which the service converts to `NonFinite`).
    Fail(EstimateErrorKind),
    /// The stage did not answer within its share of the budget and was
    /// abandoned (the call may still be running on its watchdog thread).
    Timeout,
    /// The stage panicked; the panic was contained.
    Panicked,
}

/// How one *batched* stage call ended. Mirrors [`Outcome`] with per-row
/// results in the success case.
enum BatchOutcome {
    /// The stage returned; rows classify individually.
    Rows(Vec<Result<Estimate, qfe_core::EstimateError>>),
    /// The whole batched call was abandoned on its budget share.
    Timeout,
    /// The stage panicked mid-batch; every pending row falls through.
    Panicked,
    /// The watchdog thread could not be spawned (resource exhaustion).
    SpawnFailed,
}

struct StageSlot {
    est: SharedEstimator,
    /// Captured at construction; hot-swapped inner models keep the
    /// stage's label for provenance (the *slot* answered).
    name: String,
    breaker: CircuitBreaker,
    hits: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    skipped_open: AtomicU64,
    errors: [AtomicU64; EstimateErrorKind::COUNT],
    /// Precomputed `serve.stage<i>.latency` histogram name.
    latency_metric: String,
}

impl StageSlot {
    fn record_error(&self, kind: EstimateErrorKind) {
        self.record_error_n(kind, 1);
    }

    fn record_error_n(&self, kind: EstimateErrorKind, n: u64) {
        self.errors[kind.as_index()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Per-stage serving counters, one coherent snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageServiceStats {
    /// Stage label (`name()` at construction).
    pub name: String,
    /// Requests this stage answered.
    pub hits: u64,
    /// Stage calls abandoned on their budget share.
    pub timeouts: u64,
    /// Stage calls that panicked (contained).
    pub panics: u64,
    /// Requests that skipped the stage because its breaker was open.
    pub skipped_open: u64,
    /// All stage failures bucketed by [`EstimateErrorKind`] label.
    pub errors: Vec<(&'static str, u64)>,
    /// Breaker state and transition counters.
    pub breaker: BreakerStats,
}

/// Service-wide counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered with an estimate (stage or floor).
    pub answered: u64,
    /// Of those, answered by the constant floor.
    pub floor_answers: u64,
    /// Requests that returned [`ServeError::DeadlineExceeded`] after
    /// admission.
    pub deadline_exceeded: u64,
    /// Admission-layer counters (running, queued, shed, rejected, …).
    pub admission: AdmissionStats,
    /// Batched dispatches through
    /// [`estimate_batch`](EstimatorService::estimate_batch) (each batch
    /// counts once).
    pub batch_drains: u64,
    /// Requests served through the batched path (each row counts once;
    /// these requests also count in `answered`/`deadline_exceeded`).
    pub batched_requests: u64,
    /// Per-stage counters in stage order.
    pub stages: Vec<StageServiceStats>,
}

/// A thread-safe, deadline-aware front end over a stack of estimators
/// (see the module docs).
pub struct EstimatorService {
    stages: Vec<StageSlot>,
    admission: AdmissionQueue,
    floor: f64,
    default_budget: Duration,
    answered: AtomicU64,
    floor_answers: AtomicU64,
    deadline_exceeded: AtomicU64,
    batch_drains: AtomicU64,
    batched_requests: AtomicU64,
    recorder: Arc<MetricsRecorder>,
    qerror: QErrorWindow,
    truth_rejected: AtomicU64,
    /// Optional downstream consumer of sanitized (query, truth) pairs —
    /// the adaptation controller. Behind a lock because it is attached
    /// once at wiring time and read rarely (per ground-truth arrival,
    /// not per estimate).
    feedback: RwLock<Option<Arc<dyn FeedbackSink>>>,
    /// Retained so a [`crate::batch::MicroBatcher`] can read its tuning.
    cfg: ServiceConfig,
}

impl EstimatorService {
    /// Build a service over `stages`, tried in order per request.
    pub fn new(stages: Vec<SharedEstimator>, cfg: ServiceConfig) -> Self {
        let floor = if cfg.floor.is_finite() {
            cfg.floor.max(1.0)
        } else {
            1.0
        };
        let recorder = Arc::new(MetricsRecorder::new());
        EstimatorService {
            stages: stages
                .into_iter()
                .enumerate()
                .map(|(i, est)| StageSlot {
                    name: est.name(),
                    breaker: CircuitBreaker::new(cfg.breaker.clone()).with_recorder(
                        Arc::clone(&recorder) as Arc<dyn Recorder>,
                        &format!("serve.stage{i}.breaker"),
                    ),
                    est,
                    hits: AtomicU64::new(0),
                    timeouts: AtomicU64::new(0),
                    panics: AtomicU64::new(0),
                    skipped_open: AtomicU64::new(0),
                    errors: std::array::from_fn(|_| AtomicU64::new(0)),
                    latency_metric: format!("serve.stage{i}.latency"),
                })
                .collect(),
            admission: AdmissionQueue::new(
                cfg.max_concurrency,
                cfg.queue_capacity,
                cfg.shed_policy,
            )
            .with_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>, "serve.queue"),
            floor,
            default_budget: cfg.default_budget,
            answered: AtomicU64::new(0),
            floor_answers: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            batch_drains: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            recorder,
            qerror: QErrorWindow::new(cfg.qerror_window),
            truth_rejected: AtomicU64::new(0),
            feedback: RwLock::new(None),
            cfg,
        }
    }

    /// The configuration this service was built with.
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The service's live recorder, for crate-internal components (the
    /// micro-batcher) that publish their own counters into the same
    /// snapshot.
    pub(crate) fn recorder(&self) -> &Arc<MetricsRecorder> {
        &self.recorder
    }

    /// Serve one request under the configured default budget.
    pub fn estimate(&self, query: &Query) -> Result<Estimate, ServeError> {
        self.estimate_within(query, Deadline::within(self.default_budget))
    }

    /// Serve one request under the caller's deadline.
    ///
    /// Returns a finite estimate `>= 1` (with stage provenance, the floor
    /// included as the deepest stage), or a typed [`ServeError`] when the
    /// request was shed or its budget ran out. Never panics, never NaN.
    pub fn estimate_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<Estimate, ServeError> {
        // End-to-end latency covers everything the caller waited for —
        // admission queueing included — for every outcome, errors too.
        let started = Instant::now();
        let result = self.estimate_guarded(query, deadline);
        self.recorder
            .record(REQUEST_LATENCY_METRIC, started.elapsed());
        result
    }

    /// Serve a caller-held batch under the configured default budget.
    /// See [`estimate_batch_within`](Self::estimate_batch_within).
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, ServeError>> {
        self.estimate_batch_within(queries, Deadline::within(self.default_budget))
    }

    /// Serve a caller-held batch of queries under one shared deadline.
    ///
    /// The batch is admitted as **one** unit of concurrency and walks the
    /// stage stack once: each stage receives a single
    /// [`estimate_batch`](qfe_core::CardinalityEstimator::estimate_batch)
    /// call covering every row still unanswered at its depth, under the
    /// same fair-share budgeting, breaker gating, and panic isolation as
    /// the singleton path. Per-row failures fall through to the next
    /// stage individually; rows still unanswered when the stack is
    /// exhausted get the floor, and rows unanswered at deadline expiry
    /// get a per-row [`ServeError::DeadlineExceeded`]. An admission
    /// rejection reports the same [`ServeError`] on every row.
    ///
    /// End-to-end and per-stage latency are recorded amortized (elapsed ÷
    /// rows, once per row), so histogram counts stay comparable with the
    /// singleton path; [`BATCH_SIZE_METRIC`] records each drain's size.
    pub fn estimate_batch_within(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Vec<Result<Estimate, ServeError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let started = Instant::now();
        let results = self.estimate_batch_guarded(queries, deadline);
        let amortized = started.elapsed() / queries.len() as u32;
        for _ in queries {
            self.recorder.record(REQUEST_LATENCY_METRIC, amortized);
        }
        results
    }

    fn estimate_batch_guarded(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Vec<Result<Estimate, ServeError>> {
        let _permit = match self.admission.acquire(&deadline) {
            Ok(p) => p,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        self.batch_drains.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.recorder.record(
            BATCH_SIZE_METRIC,
            Duration::from_nanos(queries.len() as u64),
        );
        let mut results: Vec<Option<Estimate>> = vec![None; queries.len()];
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut tried = 0usize;
        for (depth, stage) in self.stages.iter().enumerate() {
            if pending.is_empty() || deadline.expired() {
                break;
            }
            if !stage.breaker.admit() {
                // Counter granularity is per request, as in the
                // singleton path: a skipped stage skips every pending
                // row.
                stage
                    .skipped_open
                    .fetch_add(pending.len() as u64, Ordering::Relaxed);
                stage.record_error_n(EstimateErrorKind::CircuitOpen, pending.len() as u64);
                continue;
            }
            tried += 1;
            let stages_left = (self.stages.len() - depth) as u32;
            let share = deadline.remaining() / stages_left;
            let sub: Vec<Query> = pending.iter().map(|&i| queries[i].clone()).collect();
            let stage_started = Instant::now();
            let outcome = Self::run_stage_batch(stage, sub, share);
            let amortized = stage_started.elapsed() / pending.len() as u32;
            for _ in &pending {
                self.recorder.record(&stage.latency_metric, amortized);
            }
            match outcome {
                BatchOutcome::Rows(rows) => {
                    let mut still = Vec::with_capacity(pending.len());
                    let mut answered_any = false;
                    // `zip` also absorbs a contract-violating stage that
                    // returns the wrong number of rows: leftovers stay
                    // pending and fall through.
                    for (&i, row) in pending.iter().zip(rows) {
                        match Self::classify(row) {
                            Outcome::Answer(value) => {
                                answered_any = true;
                                stage.hits.fetch_add(1, Ordering::Relaxed);
                                self.answered.fetch_add(1, Ordering::Relaxed);
                                results[i] = Some(Estimate {
                                    value,
                                    estimator: stage.name.clone(),
                                    fallback_depth: depth,
                                });
                            }
                            Outcome::Fail(kind) => {
                                stage.record_error(kind);
                                still.push(i);
                            }
                            // `classify` never produces these.
                            Outcome::Timeout | Outcome::Panicked => still.push(i),
                        }
                    }
                    // Breaker at batch granularity: the invocation counts
                    // as a success if any row got a valid answer, as one
                    // failure if none did — a drifted model failing whole
                    // batches trips it on the same schedule as failing
                    // whole requests.
                    if answered_any {
                        stage.breaker.record_success();
                    } else {
                        stage.breaker.record_failure();
                    }
                    pending = still;
                }
                BatchOutcome::Timeout => {
                    stage.breaker.record_failure();
                    stage
                        .timeouts
                        .fetch_add(pending.len() as u64, Ordering::Relaxed);
                    stage.record_error_n(EstimateErrorKind::DeadlineExceeded, pending.len() as u64);
                }
                BatchOutcome::Panicked => {
                    stage.breaker.record_failure();
                    stage
                        .panics
                        .fetch_add(pending.len() as u64, Ordering::Relaxed);
                    stage.record_error_n(EstimateErrorKind::Internal, pending.len() as u64);
                }
                BatchOutcome::SpawnFailed => {
                    stage.breaker.record_failure();
                    stage.record_error_n(EstimateErrorKind::Internal, pending.len() as u64);
                }
            }
        }
        let expired = deadline.expired();
        results
            .into_iter()
            .map(|slot| match slot {
                Some(est) => Ok(est),
                // Per-row accounting mirrors the singleton path: every
                // unanswered row is one deadline error or one floor
                // answer.
                None if expired => Err(self.give_up(deadline, tried)),
                None => {
                    self.answered.fetch_add(1, Ordering::Relaxed);
                    self.floor_answers.fetch_add(1, Ordering::Relaxed);
                    Ok(Estimate {
                        value: self.floor,
                        estimator: "floor".into(),
                        fallback_depth: self.stages.len(),
                    })
                }
            })
            .collect()
    }

    fn estimate_guarded(&self, query: &Query, deadline: Deadline) -> Result<Estimate, ServeError> {
        let _permit = self.admission.acquire(&deadline)?;
        let mut tried = 0usize;
        for (depth, stage) in self.stages.iter().enumerate() {
            if deadline.expired() {
                return Err(self.give_up(deadline, tried));
            }
            if !stage.breaker.admit() {
                stage.skipped_open.fetch_add(1, Ordering::Relaxed);
                stage.record_error(EstimateErrorKind::CircuitOpen);
                continue;
            }
            tried += 1;
            // Fair-share budgeting: this stage may use its fraction of
            // what is left; later stages inherit whatever it leaves
            // behind (all of it, if the stage fails fast).
            let stages_left = (self.stages.len() - depth) as u32;
            let share = deadline.remaining() / stages_left;
            let stage_started = Instant::now();
            let outcome = Self::run_stage(stage, query, share);
            self.recorder
                .record(&stage.latency_metric, stage_started.elapsed());
            match outcome {
                Outcome::Answer(value) => {
                    stage.breaker.record_success();
                    stage.hits.fetch_add(1, Ordering::Relaxed);
                    self.answered.fetch_add(1, Ordering::Relaxed);
                    return Ok(Estimate {
                        value,
                        estimator: stage.name.clone(),
                        fallback_depth: depth,
                    });
                }
                Outcome::Fail(kind) => {
                    stage.breaker.record_failure();
                    stage.record_error(kind);
                }
                Outcome::Timeout => {
                    stage.breaker.record_failure();
                    stage.timeouts.fetch_add(1, Ordering::Relaxed);
                    stage.record_error(EstimateErrorKind::DeadlineExceeded);
                }
                Outcome::Panicked => {
                    stage.breaker.record_failure();
                    stage.panics.fetch_add(1, Ordering::Relaxed);
                    stage.record_error(EstimateErrorKind::Internal);
                }
            }
        }
        if deadline.expired() {
            return Err(self.give_up(deadline, tried));
        }
        // Every stage failed or was skipped, within budget: the floor
        // upholds the "always an estimate" half of the contract.
        self.answered.fetch_add(1, Ordering::Relaxed);
        self.floor_answers.fetch_add(1, Ordering::Relaxed);
        Ok(Estimate {
            value: self.floor,
            estimator: "floor".into(),
            fallback_depth: self.stages.len(),
        })
    }

    fn give_up(&self, deadline: Deadline, tried: usize) -> ServeError {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        ServeError::DeadlineExceeded {
            budget: deadline.budget(),
            elapsed: deadline.elapsed(),
            stages_tried: tried,
            admitted: true,
        }
    }

    /// One stage call, panic-isolated and bounded by `share`.
    fn run_stage(stage: &StageSlot, query: &Query, share: Duration) -> Outcome {
        if share >= INLINE_BUDGET {
            // No meaningful deadline: skip the watchdog thread, keep the
            // panic isolation.
            let caught = catch_unwind(AssertUnwindSafe(|| stage.est.try_estimate(query)));
            return match caught {
                Ok(result) => Self::classify(result),
                Err(_) => Outcome::Panicked,
            };
        }
        if share.is_zero() {
            return Outcome::Timeout;
        }
        // Watchdog pattern: the call runs on its own thread; we wait at
        // most `share`. On timeout the thread is abandoned — it finishes
        // (or panics) in the background and its result is discarded. The
        // breaker is what keeps a chronically slow stage from accumulating
        // abandoned threads: after `failure_threshold` timeouts the stage
        // stops being invoked at all.
        let est = SharedEstimator::clone(&stage.est);
        let q = query.clone();
        let (tx, rx) = mpsc::sync_channel(1);
        let spawned = std::thread::Builder::new()
            .name("qfe-serve-stage".into())
            .spawn(move || {
                let caught = catch_unwind(AssertUnwindSafe(|| est.try_estimate(&q)));
                let _ = tx.send(caught);
            });
        if spawned.is_err() {
            // Cannot even spawn (resource exhaustion): count it against
            // the stage and fall through to cheaper fallbacks.
            return Outcome::Fail(EstimateErrorKind::Internal);
        }
        match rx.recv_timeout(share) {
            Ok(Ok(result)) => Self::classify(result),
            Ok(Err(_)) => Outcome::Panicked,
            Err(_) => Outcome::Timeout,
        }
    }

    /// One batched stage call, panic-isolated and bounded by `share` —
    /// the batch analogue of [`run_stage`](Self::run_stage). The whole
    /// batch shares one watchdog thread and one timeout: a stage that
    /// stalls mid-batch is abandoned wholesale and every pending row
    /// falls through to the next stage.
    fn run_stage_batch(stage: &StageSlot, queries: Vec<Query>, share: Duration) -> BatchOutcome {
        if share >= INLINE_BUDGET {
            let caught = catch_unwind(AssertUnwindSafe(|| stage.est.estimate_batch(&queries)));
            return match caught {
                Ok(rows) => BatchOutcome::Rows(rows),
                Err(_) => BatchOutcome::Panicked,
            };
        }
        if share.is_zero() {
            return BatchOutcome::Timeout;
        }
        let est = SharedEstimator::clone(&stage.est);
        let (tx, rx) = mpsc::sync_channel(1);
        let spawned = std::thread::Builder::new()
            .name("qfe-serve-batch-stage".into())
            .spawn(move || {
                let caught = catch_unwind(AssertUnwindSafe(|| est.estimate_batch(&queries)));
                let _ = tx.send(caught);
            });
        if spawned.is_err() {
            return BatchOutcome::SpawnFailed;
        }
        match rx.recv_timeout(share) {
            Ok(Ok(rows)) => BatchOutcome::Rows(rows),
            Ok(Err(_)) => BatchOutcome::Panicked,
            Err(_) => BatchOutcome::Timeout,
        }
    }

    fn classify(result: Result<Estimate, qfe_core::EstimateError>) -> Outcome {
        match result {
            // Defense in depth, same as the chain: an Ok is only trusted
            // after re-validation.
            Ok(est) if est.value.is_finite() && est.value >= 1.0 => Outcome::Answer(est.value),
            Ok(_) => Outcome::Fail(EstimateErrorKind::NonFinite),
            Err(e) => Outcome::Fail(e.kind()),
        }
    }

    /// Number of configured stages (the floor is implicit).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Feed the online q-error tracker with a ground-truth cardinality
    /// and the estimate the service produced for it.
    ///
    /// Pairs are *validated before* they reach the window: a NaN, zero,
    /// negative, or absurdly large truth (or a non-finite estimate) is
    /// rejected with a typed [`FeedbackError`] and counted under
    /// `obs.truth.rejected` — never recorded. The underlying q-error
    /// clamps both sides to ≥ 1, so without this gate a zero truth
    /// against a large estimate would masquerade as a catastrophic (but
    /// fictional) accuracy collapse and could trip drift detection or
    /// poison retraining. The tracker summarizes the most recent
    /// `qerror_window` accepted observations in
    /// [`metrics`](Self::metrics).
    pub fn observe_truth(&self, truth: f64, estimate: f64) -> Result<(), FeedbackError> {
        if let Err(e) = Self::validate_truth(truth, estimate) {
            self.truth_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        self.qerror.observe(truth, estimate);
        Ok(())
    }

    /// [`observe_truth`](Self::observe_truth) plus feedback routing: on
    /// acceptance the sanitized `(query, truth, estimate)` triple is also
    /// forwarded to the attached [`FeedbackSink`] (the adaptation
    /// controller), which is how retraining data and drift evidence
    /// accumulate. Rejected pairs are counted and never forwarded — the
    /// sink only ever sees sanitized labels.
    pub fn observe_labeled(
        &self,
        query: &Query,
        truth: f64,
        estimate: f64,
    ) -> Result<(), FeedbackError> {
        self.observe_truth(truth, estimate)?;
        let sink = {
            let guard = self.feedback.read().unwrap_or_else(|e| e.into_inner());
            guard.as_ref().map(Arc::clone)
        };
        if let Some(sink) = sink {
            sink.feedback(query, truth, estimate);
        }
        Ok(())
    }

    /// Wire an adaptation controller into this service in one call: the
    /// controller becomes the feedback sink for
    /// [`observe_labeled`](Self::observe_labeled), and its `adapt.*`
    /// lifecycle metrics (plus the underlying slot's `slot.*` swap
    /// events) are routed into this service's recorder, so
    /// [`metrics`](Self::metrics) shows the whole control loop.
    pub fn attach_adaptation(&self, controller: &Arc<crate::adapt::AdaptController>) {
        controller.set_recorder(Arc::clone(&self.recorder) as Arc<dyn Recorder>, "adapt");
        self.attach_feedback(Arc::clone(controller) as Arc<dyn FeedbackSink>);
    }

    /// Attach the consumer of sanitized ground-truth labels (one sink;
    /// a second attach replaces the first).
    pub fn attach_feedback(&self, sink: Arc<dyn FeedbackSink>) {
        match self.feedback.write() {
            Ok(mut g) => *g = Some(sink),
            Err(poisoned) => *poisoned.into_inner() = Some(sink),
        }
    }

    fn validate_truth(truth: f64, estimate: f64) -> Result<(), FeedbackError> {
        if !truth.is_finite() {
            return Err(FeedbackError::NonFiniteTruth);
        }
        if truth <= 0.0 {
            return Err(FeedbackError::NonPositiveTruth);
        }
        if truth > ABSURD_TRUTH {
            return Err(FeedbackError::AbsurdTruth);
        }
        if !estimate.is_finite() {
            return Err(FeedbackError::NonFiniteEstimate);
        }
        Ok(())
    }

    /// One [`MetricsSnapshot`] over the whole pipeline: request/stage
    /// latency histograms, queue depth gauge and wait histogram, breaker
    /// transition counters (recorded live), plus the service's own
    /// counters merged in under `serve.*` names, and the sliding-window
    /// q-error summary when ground truth has been observed.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.recorder.snapshot();
        let stats = self.stats();
        snap.merge_counter("serve.answered", stats.answered);
        snap.merge_counter("serve.floor.answers", stats.floor_answers);
        snap.merge_counter("serve.deadline_exceeded", stats.deadline_exceeded);
        snap.merge_counter("serve.queue.admitted", stats.admission.admitted);
        snap.merge_counter("serve.queue.rejected", stats.admission.rejected);
        snap.merge_counter("serve.queue.shed", stats.admission.shed);
        snap.merge_counter("serve.queue.timeouts", stats.admission.queue_timeouts);
        snap.merge_counter("serve.batch.drains", stats.batch_drains);
        snap.merge_counter("serve.batched_requests", stats.batched_requests);
        snap.merge_counter(
            "obs.truth.rejected",
            self.truth_rejected.load(Ordering::Relaxed),
        );
        for (i, stage) in stats.stages.iter().enumerate() {
            snap.merge_counter(&format!("serve.stage{i}.hits"), stage.hits);
            snap.merge_counter(&format!("serve.stage{i}.timeouts"), stage.timeouts);
            snap.merge_counter(&format!("serve.stage{i}.panics"), stage.panics);
            snap.merge_counter(&format!("serve.stage{i}.skipped_open"), stage.skipped_open);
            for (label, n) in &stage.errors {
                if *n > 0 {
                    snap.merge_counter(&format!("serve.stage{i}.errors.{label}"), *n);
                }
            }
            // Breaker transitions are recorded live by the breaker's own
            // recorder hook — merging `stage.breaker` here would double
            // count them.
        }
        snap.qerror = self.qerror.summary();
        snap
    }

    /// One coherent snapshot of every service counter.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            answered: self.answered.load(Ordering::Relaxed),
            floor_answers: self.floor_answers.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            admission: self.admission.stats(),
            batch_drains: self.batch_drains.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            stages: self
                .stages
                .iter()
                .map(|s| StageServiceStats {
                    name: s.name.clone(),
                    hits: s.hits.load(Ordering::Relaxed),
                    timeouts: s.timeouts.load(Ordering::Relaxed),
                    panics: s.panics.load(Ordering::Relaxed),
                    skipped_open: s.skipped_open.load(Ordering::Relaxed),
                    errors: EstimateErrorKind::ALL
                        .iter()
                        .map(|k| (k.label(), s.errors[k.as_index()].load(Ordering::Relaxed)))
                        .collect(),
                    breaker: s.breaker.stats(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::estimator::CardinalityEstimator;
    use qfe_core::TableId;
    use qfe_estimators::chain::{ChaosEstimator, EstimatorFault};
    use std::sync::Arc;

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    struct Slow {
        delay: Duration,
        value: f64,
    }
    impl CardinalityEstimator for Slow {
        fn name(&self) -> String {
            "slow".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            std::thread::sleep(self.delay);
            self.value
        }
    }

    struct Panicky;
    impl CardinalityEstimator for Panicky {
        fn name(&self) -> String {
            "panicky".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            panic!("stage bug")
        }
    }

    fn q() -> Query {
        Query::single_table(TableId(0), vec![])
    }

    fn lenient_breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 1_000_000,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn healthy_primary_answers_with_provenance() {
        let svc = EstimatorService::new(
            vec![Arc::new(Constant(123.0)), Arc::new(Constant(5.0))],
            ServiceConfig::default(),
        );
        let e = svc.estimate(&q()).unwrap();
        assert_eq!((e.value, e.fallback_depth), (123.0, 0));
        assert_eq!(e.estimator, "constant");
        let stats = svc.stats();
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.stages[0].hits, 1);
        assert_eq!(stats.stages[1].hits, 0);
    }

    #[test]
    fn slow_stage_is_abandoned_and_fallback_answers_in_budget() {
        let svc = EstimatorService::new(
            vec![
                Arc::new(Slow {
                    delay: Duration::from_secs(5),
                    value: 99.0,
                }),
                Arc::new(Constant(7.0)),
            ],
            ServiceConfig {
                breaker: lenient_breaker(),
                ..ServiceConfig::default()
            },
        );
        let t0 = std::time::Instant::now();
        let e = svc
            .estimate_within(&q(), Deadline::within(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(e.value, 7.0);
        assert_eq!(e.fallback_depth, 1);
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "the 5s stall must not be waited out: {:?}",
            t0.elapsed()
        );
        let stats = svc.stats();
        assert_eq!(stats.stages[0].timeouts, 1);
        assert_eq!(stats.stages[1].hits, 1);
    }

    #[test]
    fn panicking_stage_is_contained() {
        let svc = EstimatorService::new(
            vec![Arc::new(Panicky), Arc::new(Constant(3.0))],
            ServiceConfig {
                breaker: lenient_breaker(),
                ..ServiceConfig::default()
            },
        );
        for _ in 0..5 {
            let e = svc.estimate(&q()).unwrap();
            assert_eq!(e.value, 3.0);
        }
        assert_eq!(svc.stats().stages[0].panics, 5);
    }

    #[test]
    fn breaker_stops_invoking_a_dead_stage_then_recovers_by_probe() {
        let svc = EstimatorService::new(
            vec![
                Arc::new(ChaosEstimator::new(
                    Constant(50.0),
                    vec![EstimatorFault::Error],
                    1.0,
                    1,
                )),
                Arc::new(Constant(9.0)),
            ],
            ServiceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(40),
                    max_cooldown: Duration::from_millis(40),
                },
                ..ServiceConfig::default()
            },
        );
        for _ in 0..10 {
            assert_eq!(svc.estimate(&q()).unwrap().value, 9.0);
        }
        let stats = svc.stats();
        // 3 failures trip the breaker; the remaining 7 requests skip.
        assert_eq!(stats.stages[0].breaker.opened, 1);
        assert_eq!(stats.stages[0].skipped_open, 7);
        // After the cooldown a probe is admitted (and fails again here,
        // re-opening the breaker).
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(svc.estimate(&q()).unwrap().value, 9.0);
        let stats = svc.stats();
        assert_eq!(stats.stages[0].breaker.probes, 1);
        assert_eq!(stats.stages[0].breaker.opened, 2);
    }

    #[test]
    fn zero_budget_is_a_typed_deadline_error() {
        let svc = EstimatorService::new(vec![Arc::new(Constant(2.0))], ServiceConfig::default());
        let err = svc
            .estimate_within(&q(), Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::DeadlineExceeded {
                stages_tried: 0,
                admitted: true,
                ..
            }
        ));
        assert_eq!(svc.stats().deadline_exceeded, 1);
    }

    #[test]
    fn all_stages_failing_within_budget_lands_on_the_floor() {
        let svc = EstimatorService::new(
            vec![Arc::new(Constant(f64::NAN))],
            ServiceConfig {
                floor: 4.0,
                breaker: lenient_breaker(),
                ..ServiceConfig::default()
            },
        );
        let e = svc.estimate(&q()).unwrap();
        assert_eq!((e.value, e.fallback_depth), (4.0, 1));
        assert_eq!(e.estimator, "floor");
        let stats = svc.stats();
        assert_eq!(stats.floor_answers, 1);
        assert_eq!(
            stats.stages[0].errors[EstimateErrorKind::NonFinite.as_index()].1,
            1
        );
    }

    #[test]
    fn metrics_snapshot_covers_latency_stages_breakers_and_qerror() {
        let svc = EstimatorService::new(
            vec![
                Arc::new(ChaosEstimator::new(
                    Constant(50.0),
                    vec![EstimatorFault::Error],
                    1.0,
                    1,
                )),
                Arc::new(Constant(9.0)),
            ],
            ServiceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_secs(60),
                    max_cooldown: Duration::from_secs(60),
                },
                ..ServiceConfig::default()
            },
        );
        for _ in 0..10 {
            let e = svc.estimate(&q()).unwrap();
            svc.observe_truth(10.0, e.value).unwrap();
        }
        let m = svc.metrics();
        // End-to-end and per-stage latency histograms are populated.
        let e2e = m.histogram(REQUEST_LATENCY_METRIC).expect("e2e histogram");
        assert_eq!(e2e.count, 10);
        assert!(e2e.sum_nanos > 0, "non-zero end-to-end latency");
        assert_eq!(
            m.histogram("serve.stage1.latency").expect("stage").count,
            10
        );
        // Per-stage counters merged from the service atomics.
        assert_eq!(m.counter("serve.stage0.errors.internal"), 3);
        assert_eq!(m.counter("serve.stage0.skipped_open"), 7);
        assert_eq!(m.counter("serve.stage1.hits"), 10);
        assert_eq!(m.counter("serve.answered"), 10);
        assert_eq!(m.counter("serve.queue.admitted"), 10);
        // Breaker transitions recorded live (no double counting).
        assert_eq!(m.counter("serve.stage0.breaker.opened"), 1);
        // The q-error summary reflects the observed truths: all answers
        // were 9.0 against truth 10.0.
        let qe = m.qerror.as_ref().expect("qerror summary");
        assert!(
            (qe.median - 10.0 / 9.0).abs() < 1e-9,
            "median {}",
            qe.median
        );
        // JSON rendering includes the new names.
        let json = m.to_json();
        assert!(json.contains("\"serve.request.latency\""), "{json}");
        assert!(json.contains("\"qerror\":{"), "{json}");
    }

    #[test]
    fn observe_truth_rejects_garbage_with_typed_errors_and_counts_it() {
        let svc = EstimatorService::new(vec![Arc::new(Constant(2.0))], ServiceConfig::default());
        assert_eq!(
            svc.observe_truth(f64::NAN, 2.0),
            Err(FeedbackError::NonFiniteTruth)
        );
        assert_eq!(
            svc.observe_truth(f64::INFINITY, 2.0),
            Err(FeedbackError::NonFiniteTruth)
        );
        assert_eq!(
            svc.observe_truth(0.0, 2.0),
            Err(FeedbackError::NonPositiveTruth)
        );
        assert_eq!(
            svc.observe_truth(-5.0, 2.0),
            Err(FeedbackError::NonPositiveTruth)
        );
        assert_eq!(
            svc.observe_truth(1e19, 2.0),
            Err(FeedbackError::AbsurdTruth)
        );
        assert_eq!(
            svc.observe_truth(10.0, f64::INFINITY),
            Err(FeedbackError::NonFiniteEstimate)
        );
        assert_eq!(
            svc.observe_truth(10.0, f64::NAN),
            Err(FeedbackError::NonFiniteEstimate)
        );
        let m = svc.metrics();
        assert_eq!(m.counter("obs.truth.rejected"), 7);
        assert!(m.qerror.is_none(), "nothing garbage reached the window");
        // Boundary values are legitimate and accepted.
        svc.observe_truth(1e18, 2.0).unwrap();
        svc.observe_truth(f64::MIN_POSITIVE, 2.0).unwrap();
        let m = svc.metrics();
        assert_eq!(m.counter("obs.truth.rejected"), 7);
        assert_eq!(m.qerror.as_ref().map(|s| s.count), Some(2));
    }

    #[test]
    fn fractional_truth_is_accepted_not_clamped_away() {
        // Truths in (0, 1) — e.g. average cardinalities below one row —
        // are positive and finite: the guard accepts them (no typed
        // rejection, no entry clamping). Only the q-error computation
        // itself treats both sides as >= 1, so 0.5 vs an estimate of 2.0
        // scores q = 2.0, not 4.0.
        let svc = EstimatorService::new(vec![Arc::new(Constant(2.0))], ServiceConfig::default());
        svc.observe_truth(0.5, 2.0).unwrap();
        let m = svc.metrics();
        assert_eq!(m.counter("obs.truth.rejected"), 0);
        let qe = m.qerror.as_ref().expect("pair reached the window");
        assert_eq!(qe.count, 1);
        assert!((qe.median - 2.0).abs() < 1e-12, "median {}", qe.median);

        // The open-interval boundaries behave per the guard's contract:
        // exactly 0 is rejected, anything strictly inside (0, 1) lands.
        assert_eq!(
            svc.observe_truth(0.0, 2.0),
            Err(FeedbackError::NonPositiveTruth)
        );
        svc.observe_truth(0.999_999, 2.0).unwrap();
        svc.observe_truth(1.0 - f64::EPSILON, 2.0).unwrap();
        let m = svc.metrics();
        assert_eq!(m.counter("obs.truth.rejected"), 1);
        assert_eq!(m.qerror.as_ref().map(|s| s.count), Some(3));
    }

    #[test]
    fn observe_labeled_forwards_only_sanitized_pairs_to_the_sink() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Capture(Mutex<Vec<(f64, f64)>>);
        impl FeedbackSink for Capture {
            fn feedback(&self, _query: &Query, truth: f64, estimate: f64) {
                self.0
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((truth, estimate));
            }
        }
        let svc = EstimatorService::new(vec![Arc::new(Constant(2.0))], ServiceConfig::default());
        let sink = Arc::new(Capture::default());
        svc.attach_feedback(Arc::clone(&sink) as Arc<dyn FeedbackSink>);

        svc.observe_labeled(&q(), 10.0, 2.0).unwrap();
        assert_eq!(
            svc.observe_labeled(&q(), 0.0, 2.0),
            Err(FeedbackError::NonPositiveTruth)
        );
        assert_eq!(
            svc.observe_labeled(&q(), f64::NAN, 2.0),
            Err(FeedbackError::NonFiniteTruth)
        );
        svc.observe_labeled(&q(), 20.0, 4.0).unwrap();

        let seen = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(seen, vec![(10.0, 2.0), (20.0, 4.0)]);
        assert_eq!(svc.metrics().counter("obs.truth.rejected"), 2);
    }

    #[test]
    fn unbounded_budget_runs_inline() {
        let svc = EstimatorService::new(vec![Arc::new(Constant(11.0))], ServiceConfig::default());
        let e = svc.estimate_within(&q(), Deadline::unbounded()).unwrap();
        assert_eq!(e.value, 11.0);
    }

    /// Fails rows whose index in the batch call sequence is odd — used
    /// to prove per-row failure routing. Stateless across rows: whether
    /// a row fails depends only on its own query (predicate count).
    struct FailsNonEmpty(f64);
    impl CardinalityEstimator for FailsNonEmpty {
        fn name(&self) -> String {
            "picky".into()
        }
        fn estimate(&self, query: &Query) -> f64 {
            if query.predicates.is_empty() {
                self.0
            } else {
                f64::NAN
            }
        }
    }

    fn q_with_pred() -> Query {
        use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
        use qfe_core::query::ColumnRef;
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), qfe_core::ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Eq, 1)],
            )],
        )
    }

    #[test]
    fn batch_matches_singleton_row_for_row() {
        let mk = || {
            EstimatorService::new(
                vec![
                    Arc::new(FailsNonEmpty(123.0)) as SharedEstimator,
                    Arc::new(Constant(5.0)),
                ],
                ServiceConfig {
                    breaker: lenient_breaker(),
                    ..ServiceConfig::default()
                },
            )
        };
        let singleton = mk();
        let batched = mk();
        let queries = vec![q(), q_with_pred(), q(), q_with_pred()];
        let solo: Vec<_> = queries
            .iter()
            .map(|qq| singleton.estimate(qq).unwrap())
            .collect();
        let batch: Vec<_> = batched
            .estimate_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(solo, batch, "batched answers must match singleton");
        // Mixed routing: empty queries answered at depth 0, the rest fell
        // through to the constant at depth 1.
        assert_eq!(batch[0].fallback_depth, 0);
        assert_eq!(batch[1].fallback_depth, 1);
        // Stage counters agree between the two execution shapes.
        let s1 = singleton.stats();
        let s2 = batched.stats();
        assert_eq!(s1.answered, s2.answered);
        assert_eq!(s1.stages[0].hits, s2.stages[0].hits);
        assert_eq!(s1.stages[1].hits, s2.stages[1].hits);
        // Batched-vs-singleton provenance counters.
        assert_eq!(s1.batched_requests, 0);
        assert_eq!((s2.batch_drains, s2.batched_requests), (1, 4));
        let m = batched.metrics();
        assert_eq!(m.counter("serve.batch.drains"), 1);
        assert_eq!(m.counter("serve.batched_requests"), 4);
        let sizes = m.histogram(BATCH_SIZE_METRIC).expect("batch size hist");
        assert_eq!((sizes.count, sizes.sum_nanos), (1, 4));
        // Amortized per-item latency: one end-to-end entry per row.
        assert_eq!(m.histogram(REQUEST_LATENCY_METRIC).expect("e2e").count, 4);
    }

    #[test]
    fn batch_deadline_expiry_is_reported_per_row() {
        let svc = EstimatorService::new(
            vec![Arc::new(Slow {
                delay: Duration::from_secs(5),
                value: 9.0,
            })],
            ServiceConfig {
                breaker: lenient_breaker(),
                ..ServiceConfig::default()
            },
        );
        let queries = vec![q(), q(), q()];
        let out = svc.estimate_batch_within(&queries, Deadline::within(Duration::from_millis(50)));
        assert_eq!(out.len(), 3);
        for r in &out {
            assert!(
                matches!(
                    r,
                    Err(ServeError::DeadlineExceeded {
                        admitted: true,
                        stages_tried: 1,
                        ..
                    })
                ),
                "{r:?}"
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.deadline_exceeded, 3);
        assert_eq!(stats.stages[0].timeouts, 3);
        assert_eq!(stats.batched_requests, 3);
    }

    #[test]
    fn batch_floor_and_panic_isolation() {
        let svc = EstimatorService::new(
            vec![
                Arc::new(Panicky) as SharedEstimator,
                Arc::new(Constant(f64::NAN)),
            ],
            ServiceConfig {
                floor: 2.0,
                breaker: lenient_breaker(),
                ..ServiceConfig::default()
            },
        );
        let queries = vec![q(), q()];
        for r in svc.estimate_batch(&queries) {
            let e = r.unwrap();
            assert_eq!((e.value, e.fallback_depth), (2.0, 2));
            assert_eq!(e.estimator, "floor");
        }
        let stats = svc.stats();
        assert_eq!(stats.floor_answers, 2);
        assert_eq!(stats.stages[0].panics, 2);
        assert_eq!(
            stats.stages[1].errors[EstimateErrorKind::NonFinite.as_index()].1,
            2
        );
    }

    #[test]
    fn empty_batch_is_free() {
        let svc = EstimatorService::new(vec![Arc::new(Constant(2.0))], ServiceConfig::default());
        assert!(svc.estimate_batch(&[]).is_empty());
        let stats = svc.stats();
        assert_eq!((stats.batch_drains, stats.batched_requests), (0, 0));
        assert_eq!(stats.admission.admitted, 0);
    }
}
