//! Closed-loop adaptation: drift detection → budgeted retrain → shadow
//! validation → probationary swap → automatic rollback.
//!
//! The serving stack keeps *answering* under faults (breakers, deadlines,
//! panic isolation); this module keeps it *accurate* under workload
//! drift, which the CardEst benchmark study identifies as the dominant
//! failure mode of learned estimators in production. The
//! [`AdaptController`] closes the loop end to end:
//!
//! ```text
//!            ┌────────────────────────── false alarm ──────────────┐
//!            ▼                                                     │
//!        ┌────────┐  PH trigger   ┌───────────────┐  re-trigger ┌──┴──────────┐
//!        │ Stable │ ────────────▶ │ DriftSuspected│ ───────────▶│ Retraining  │
//!        └────────┘               └───────────────┘             └──────┬──────┘
//!            ▲                                                        │ candidate
//!            │ reject / inconclusive / abort          ┌───────────────▼──┐
//!            ├───────────────────────────────────────┤    Shadowing      │
//!            │                                        └───────────────┬──┘
//!            │ probation passed                                       │ accept (swap)
//!            │                   ┌────────────┐  regression ▶ rollback│
//!            └───────────────────┤ Probation  │◀──────────────────────┘
//!                                └────────────┘
//! ```
//!
//! Every decision is deterministic given the feedback sequence and the
//! injected clock, every transition is counted (`adapt.*` metrics), and
//! nothing in the loop can take serving down: training runs under
//! `catch_unwind` on a wall-clock budget, candidates are validated by
//! the [`ModelSlot`] probe gate before publication, and a swap that
//! regresses q-error during probation is rolled back to the pinned
//! previous generation automatically.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use qfe_core::metrics::q_error;
use qfe_core::Query;
use qfe_obs::{PageHinkley, PageHinkleyConfig, Recorder};

use crate::slot::{ModelSlot, SharedEstimator};

/// Monotonic time source; injectable for deterministic tests (same shape
/// as the circuit breaker's clock).
pub type AdaptClock = Arc<dyn Fn() -> Duration + Send + Sync>;

/// Consumer of sanitized ground-truth labels. The service forwards every
/// *accepted* `(query, truth, estimate)` triple here — pairs rejected by
/// the [`crate::error::FeedbackError`] guard never arrive.
pub trait FeedbackSink: Send + Sync {
    /// One sanitized observation: the query, its true cardinality, and
    /// the estimate the service answered with.
    fn feedback(&self, query: &Query, truth: f64, estimate: f64);
}

/// What a retraining attempt must produce: a fresh estimator trained on
/// the supplied `(query, truth)` pairs, polling `should_continue`
/// between units of work and bailing out promptly once it returns
/// `false`. Implemented for closures.
pub trait CandidateTrainer: Send + Sync {
    /// Train a candidate within the budget expressed by `should_continue`.
    fn train(
        &self,
        data: &[(Query, f64)],
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>>;
}

impl<F> CandidateTrainer for F
where
    F: Fn(
            &[(Query, f64)],
            &mut dyn FnMut() -> bool,
        ) -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>>
        + Send
        + Sync,
{
    fn train(
        &self,
        data: &[(Query, f64)],
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
        self(data, should_continue)
    }
}

/// Tuning for an [`AdaptController`]. The defaults favor caution: swaps
/// require statistically meaningful improvement, and every retrain
/// attempt — successful or not — starts a cooldown so a noisy detector
/// cannot thrash the trainer.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Most `(query, truth)` pairs retained for retraining; beyond this
    /// the oldest are shed (counted, never an error).
    pub reservoir_capacity: usize,
    /// Page-Hinkley tuning for the drift detector (fed `ln(q_error)`).
    pub detector: PageHinkleyConfig,
    /// Hysteresis: after a first trigger the controller waits this many
    /// further samples and confirms drift only if the Page-Hinkley
    /// statistic *kept growing* — the signature of a sustained mean
    /// shift. A transient spike stalls the statistic and ages out as a
    /// false alarm.
    pub confirm_window: u64,
    /// Quiet period after every retrain attempt before another may start.
    pub cooldown: Duration,
    /// Wall-clock budget for one training attempt; the trainer's
    /// `should_continue` turns `false` once it is spent.
    pub train_budget: Duration,
    /// Fewest reservoir pairs worth training on (attempts below this
    /// abort).
    pub min_train_samples: usize,
    /// Fraction of the reservoir held out for shadow scoring (clamped to
    /// [0.1, 0.5]; the holdout is never trained on).
    pub holdout_fraction: f64,
    /// Fewest holdout pairs worth shadow-scoring on (attempts below this
    /// abort).
    pub min_holdout: usize,
    /// Sign-test z threshold for the shadow verdict: the candidate must
    /// win `wins - losses > z·√n` paired comparisons to be accepted.
    pub shadow_z: f64,
    /// The candidate's median holdout q-error must also be at most this
    /// fraction of the live model's (e.g. `0.95` = at least 5 % better).
    pub min_improvement: f64,
    /// Post-swap observations collected before the probation verdict.
    pub probation_samples: usize,
    /// Probation fails (→ rollback) when the post-swap median q-error
    /// exceeds the candidate's shadow median times this ratio.
    pub rollback_ratio: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            reservoir_capacity: 4096,
            detector: PageHinkleyConfig::default(),
            confirm_window: 200,
            cooldown: Duration::from_secs(60),
            train_budget: Duration::from_secs(2),
            min_train_samples: 64,
            holdout_fraction: 0.25,
            min_holdout: 16,
            shadow_z: 1.96,
            min_improvement: 0.95,
            probation_samples: 64,
            rollback_ratio: 1.5,
        }
    }
}

/// Where the controller currently is in the adaptation state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptPhase {
    /// No drift evidence; feedback accumulates, detector watches.
    Stable,
    /// One detector trigger seen; awaiting confirmation or false alarm.
    DriftSuspected,
    /// A training attempt is running (visible only while `step` runs on
    /// another thread).
    Retraining,
    /// A candidate is being scored against the live model (ditto).
    Shadowing,
    /// A swap happened; the previous generation is pinned and post-swap
    /// q-error is on trial.
    Probation,
}

impl AdaptPhase {
    fn gauge(self) -> u64 {
        match self {
            AdaptPhase::Stable => 0,
            AdaptPhase::DriftSuspected => 1,
            AdaptPhase::Retraining => 2,
            AdaptPhase::Shadowing => 3,
            AdaptPhase::Probation => 4,
        }
    }

    /// Stable label for logs and stats.
    pub fn label(self) -> &'static str {
        match self {
            AdaptPhase::Stable => "stable",
            AdaptPhase::DriftSuspected => "drift-suspected",
            AdaptPhase::Retraining => "retraining",
            AdaptPhase::Shadowing => "shadowing",
            AdaptPhase::Probation => "probation",
        }
    }
}

/// What one [`AdaptController::step`] call did — the deterministic
/// observable tests assert on.
#[derive(Debug, Clone, PartialEq)]
pub enum StepReport {
    /// Nothing to do (no trigger, probation still collecting, …).
    Idle,
    /// First detector trigger: drift is now suspected.
    Suspected,
    /// The suspicion aged out without re-triggering.
    FalseAlarm,
    /// Drift confirmed but the cooldown from a previous attempt is still
    /// running; the controller stays suspicious and waits.
    CoolingDown,
    /// A retrain attempt started but did not produce a scorable
    /// candidate (too little data, trainer error/interrupt, or panic).
    RetrainAborted {
        /// Whether the abort was a contained trainer panic.
        panicked: bool,
    },
    /// Shadow scoring rejected the candidate; the live model keeps
    /// serving.
    ShadowRejected,
    /// Shadow scoring could not tell the models apart; no swap.
    ShadowInconclusive,
    /// The candidate won and was published; probation begins.
    SwapAccepted {
        /// Slot generation now serving the candidate.
        generation: u64,
    },
    /// Probation completed without regression; the swap is final.
    ProbationPassed,
    /// Post-swap q-error regressed; the pinned previous generation was
    /// re-published.
    RolledBack {
        /// Slot generation now serving the restored model.
        generation: u64,
    },
    /// Probation was abandoned because the slot generation changed under
    /// the controller (an external swap raced the rollback window).
    ProbationAbandoned,
}

/// One coherent snapshot of every adaptation counter, plus the current
/// phase. The conservation invariant
/// `retrain_triggered == shadow_accepted + shadow_rejected +
/// shadow_inconclusive + retrain_aborted`
/// holds at every quiescent point.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptStats {
    /// Current state-machine phase.
    pub phase: AdaptPhase,
    /// Sanitized pairs accepted into the reservoir.
    pub feedback_accepted: u64,
    /// Oldest pairs shed because the reservoir was full.
    pub reservoir_shed: u64,
    /// Pairs currently retained.
    pub reservoir_len: usize,
    /// First-trigger events (Stable → DriftSuspected).
    pub drift_suspected: u64,
    /// Re-triggers that confirmed drift.
    pub drift_confirmed: u64,
    /// Suspicions that aged out without confirmation.
    pub drift_false_alarm: u64,
    /// Retrain attempts started.
    pub retrain_triggered: u64,
    /// Attempts that produced no scorable candidate.
    pub retrain_aborted: u64,
    /// Of the aborted, attempts that ended in a contained panic.
    pub retrain_panicked: u64,
    /// Candidates accepted and published.
    pub shadow_accepted: u64,
    /// Candidates rejected by shadow scoring (or the probe gate).
    pub shadow_rejected: u64,
    /// Shadow comparisons that could not separate the models.
    pub shadow_inconclusive: u64,
    /// Probations that ended in a kept swap.
    pub probation_passed: u64,
    /// Probations that ended in a rollback.
    pub probation_rolled_back: u64,
    /// Probations abandoned because the generation changed externally.
    pub probation_abandoned: u64,
}

#[derive(Default)]
struct Counters {
    feedback_accepted: AtomicU64,
    reservoir_shed: AtomicU64,
    drift_suspected: AtomicU64,
    drift_confirmed: AtomicU64,
    drift_false_alarm: AtomicU64,
    retrain_triggered: AtomicU64,
    retrain_aborted: AtomicU64,
    retrain_panicked: AtomicU64,
    shadow_accepted: AtomicU64,
    shadow_rejected: AtomicU64,
    shadow_inconclusive: AtomicU64,
    probation_passed: AtomicU64,
    probation_rolled_back: AtomicU64,
    probation_abandoned: AtomicU64,
}

/// Recorder plus precomputed metric names (built once in
/// [`AdaptController::set_recorder`]; emitting an event never formats).
struct AdaptEvents {
    recorder: Arc<dyn Recorder>,
    feedback_accepted: String,
    reservoir_shed: String,
    reservoir_len: String,
    state: String,
    drift_suspected: String,
    drift_confirmed: String,
    drift_false_alarm: String,
    retrain_triggered: String,
    retrain_aborted: String,
    retrain_panicked: String,
    shadow_accepted: String,
    shadow_rejected: String,
    shadow_inconclusive: String,
    probation_passed: String,
    probation_rolled_back: String,
    probation_abandoned: String,
}

/// Extra state carried by [`AdaptPhase::Probation`].
struct ProbationData {
    /// The model that was serving before the swap, re-publishable.
    pinned: SharedEstimator,
    /// Slot generation the swap produced; a mismatch later means an
    /// external swap raced us and rollback must be abandoned.
    generation: u64,
    /// The candidate's shadow median q-error — the promise probation
    /// holds it to.
    baseline_median: f64,
    /// Holdout queries, reused as the rollback probe workload.
    probe: Vec<Query>,
}

enum Phase {
    Stable,
    /// Detector stats snapshotted at the moment of the first trigger;
    /// confirmation compares against them after the confirm window.
    DriftSuspected {
        statistic: f64,
        samples: u64,
    },
    Retraining,
    Shadowing,
    Probation(ProbationData),
}

impl Phase {
    fn kind(&self) -> AdaptPhase {
        match self {
            Phase::Stable => AdaptPhase::Stable,
            Phase::DriftSuspected { .. } => AdaptPhase::DriftSuspected,
            Phase::Retraining => AdaptPhase::Retraining,
            Phase::Shadowing => AdaptPhase::Shadowing,
            Phase::Probation(_) => AdaptPhase::Probation,
        }
    }
}

/// The verdict of one shadow comparison.
enum ShadowVerdict {
    Accept,
    Reject,
    Inconclusive,
}

/// The closed-loop adaptation controller (see the module docs).
///
/// Drive it synchronously with [`step`](AdaptController::step) — the
/// deterministic mode tests use — or hand it to
/// [`spawn_adaptation`] for a background cadence. Feedback arrives via
/// the [`FeedbackSink`] impl, normally wired through
/// [`crate::EstimatorService::attach_adaptation`].
pub struct AdaptController {
    cfg: AdaptConfig,
    slot: Arc<ModelSlot>,
    trainer: Arc<dyn CandidateTrainer>,
    clock: AdaptClock,
    reservoir: Mutex<VecDeque<(Query, f64)>>,
    detector: Mutex<PageHinkley>,
    phase: Mutex<Phase>,
    /// Post-swap q-errors collected while on probation.
    probation_q: Mutex<Vec<f64>>,
    cooldown_until: Mutex<Duration>,
    /// Serializes `step` so a background thread and a manual driver can
    /// coexist without interleaving two retrain attempts.
    step_gate: Mutex<()>,
    counters: Counters,
    events: RwLock<Option<AdaptEvents>>,
}

impl AdaptController {
    /// A controller on the real (monotonic) clock, swapping through
    /// `slot`, retraining with `trainer`.
    pub fn new(slot: Arc<ModelSlot>, trainer: Arc<dyn CandidateTrainer>, cfg: AdaptConfig) -> Self {
        let epoch = Instant::now();
        Self::with_clock(slot, trainer, cfg, Arc::new(move || epoch.elapsed()))
    }

    /// Same, on an injected clock returning elapsed time since an
    /// arbitrary fixed epoch — the deterministic-test constructor,
    /// mirroring the circuit breaker's.
    pub fn with_clock(
        slot: Arc<ModelSlot>,
        trainer: Arc<dyn CandidateTrainer>,
        mut cfg: AdaptConfig,
        clock: AdaptClock,
    ) -> Self {
        cfg.reservoir_capacity = cfg.reservoir_capacity.max(1);
        cfg.holdout_fraction = cfg.holdout_fraction.clamp(0.1, 0.5);
        cfg.min_holdout = cfg.min_holdout.max(1);
        cfg.min_train_samples = cfg.min_train_samples.max(2);
        cfg.probation_samples = cfg.probation_samples.max(1);
        cfg.rollback_ratio = cfg.rollback_ratio.max(1.0);
        let detector = PageHinkley::new(cfg.detector.clone());
        AdaptController {
            reservoir: Mutex::new(VecDeque::with_capacity(cfg.reservoir_capacity.min(1024))),
            detector: Mutex::new(detector),
            phase: Mutex::new(Phase::Stable),
            probation_q: Mutex::new(Vec::new()),
            cooldown_until: Mutex::new(Duration::ZERO),
            step_gate: Mutex::new(()),
            counters: Counters::default(),
            events: RwLock::new(None),
            cfg,
            slot,
            trainer,
            clock,
        }
    }

    /// Route adaptation lifecycle events to `recorder` under `prefix`
    /// (`adapt` in production), and the underlying slot's swap events
    /// under `slot`. Called by
    /// [`crate::EstimatorService::attach_adaptation`] with the service's
    /// own recorder so everything lands in one [`qfe_obs::MetricsSnapshot`].
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>, prefix: &str) {
        self.slot.set_recorder(Arc::clone(&recorder), "slot");
        let events = AdaptEvents {
            feedback_accepted: format!("{prefix}.feedback.accepted"),
            reservoir_shed: format!("{prefix}.reservoir.shed"),
            reservoir_len: format!("{prefix}.reservoir.len"),
            state: format!("{prefix}.state"),
            drift_suspected: format!("{prefix}.drift.suspected"),
            drift_confirmed: format!("{prefix}.drift.confirmed"),
            drift_false_alarm: format!("{prefix}.drift.false_alarm"),
            retrain_triggered: format!("{prefix}.retrain.triggered"),
            retrain_aborted: format!("{prefix}.retrain.aborted"),
            retrain_panicked: format!("{prefix}.retrain.panicked"),
            shadow_accepted: format!("{prefix}.shadow.accepted"),
            shadow_rejected: format!("{prefix}.shadow.rejected"),
            shadow_inconclusive: format!("{prefix}.shadow.inconclusive"),
            probation_passed: format!("{prefix}.probation.passed"),
            probation_rolled_back: format!("{prefix}.probation.rolled_back"),
            probation_abandoned: format!("{prefix}.probation.abandoned"),
            recorder,
        };
        events
            .recorder
            .set_gauge(&events.state, self.phase().gauge());
        events
            .recorder
            .set_gauge(&events.reservoir_len, self.reservoir_len() as u64);
        match self.events.write() {
            Ok(mut g) => *g = Some(events),
            Err(poisoned) => *poisoned.into_inner() = Some(events),
        }
    }

    fn emit<F: Fn(&AdaptEvents)>(&self, f: F) {
        let guard = match self.events.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(events) = guard.as_ref() {
            f(events);
        }
    }

    fn set_phase(&self, next: Phase) {
        let kind = next.kind();
        *self.phase.lock().unwrap_or_else(|e| e.into_inner()) = next;
        self.emit(|ev| ev.recorder.set_gauge(&ev.state, kind.gauge()));
    }

    /// Current state-machine phase.
    pub fn phase(&self) -> AdaptPhase {
        self.phase.lock().unwrap_or_else(|e| e.into_inner()).kind()
    }

    /// `(query, truth)` pairs currently retained for retraining.
    pub fn reservoir_len(&self) -> usize {
        self.reservoir
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// One coherent counter snapshot.
    pub fn stats(&self) -> AdaptStats {
        let c = &self.counters;
        AdaptStats {
            phase: self.phase(),
            feedback_accepted: c.feedback_accepted.load(Ordering::Relaxed),
            reservoir_shed: c.reservoir_shed.load(Ordering::Relaxed),
            reservoir_len: self.reservoir_len(),
            drift_suspected: c.drift_suspected.load(Ordering::Relaxed),
            drift_confirmed: c.drift_confirmed.load(Ordering::Relaxed),
            drift_false_alarm: c.drift_false_alarm.load(Ordering::Relaxed),
            retrain_triggered: c.retrain_triggered.load(Ordering::Relaxed),
            retrain_aborted: c.retrain_aborted.load(Ordering::Relaxed),
            retrain_panicked: c.retrain_panicked.load(Ordering::Relaxed),
            shadow_accepted: c.shadow_accepted.load(Ordering::Relaxed),
            shadow_rejected: c.shadow_rejected.load(Ordering::Relaxed),
            shadow_inconclusive: c.shadow_inconclusive.load(Ordering::Relaxed),
            probation_passed: c.probation_passed.load(Ordering::Relaxed),
            probation_rolled_back: c.probation_rolled_back.load(Ordering::Relaxed),
            probation_abandoned: c.probation_abandoned.load(Ordering::Relaxed),
        }
    }

    /// Advance the state machine one decision. Synchronous and cheap
    /// unless a retrain actually runs (bounded then by `train_budget`).
    /// Safe to call from any thread at any cadence; calls serialize.
    pub fn step(&self) -> StepReport {
        let _gate = self.step_gate.lock().unwrap_or_else(|e| e.into_inner());
        let now = (self.clock)();
        let phase = self.phase.lock().unwrap_or_else(|e| e.into_inner()).kind();
        match phase {
            AdaptPhase::Probation => self.step_probation(),
            AdaptPhase::Stable => self.step_stable(),
            AdaptPhase::DriftSuspected => self.step_suspected(now),
            // Transient phases are only observable from *other* threads
            // while a step runs; the gate means we can never re-enter
            // them here. Treat defensively as idle.
            AdaptPhase::Retraining | AdaptPhase::Shadowing => StepReport::Idle,
        }
    }

    fn step_stable(&self) -> StepReport {
        let stats = {
            let detector = self.detector.lock().unwrap_or_else(|e| e.into_inner());
            detector.stats()
        };
        if !stats.triggered {
            return StepReport::Idle;
        }
        // Hysteresis: snapshot the statistic and wait. A sustained mean
        // shift keeps the statistic growing past the snapshot; a
        // transient spike stalls it (negative deviations pull the
        // cumulative back down) and is dismissed as a false alarm.
        self.counters
            .drift_suspected
            .fetch_add(1, Ordering::Relaxed);
        self.emit(|ev| ev.recorder.incr(&ev.drift_suspected));
        self.set_phase(Phase::DriftSuspected {
            statistic: stats.statistic,
            samples: stats.samples,
        });
        StepReport::Suspected
    }

    fn step_suspected(&self, now: Duration) -> StepReport {
        let (statistic_at_suspect, samples_at_suspect) = {
            let phase = self.phase.lock().unwrap_or_else(|e| e.into_inner());
            match *phase {
                Phase::DriftSuspected { statistic, samples } => (statistic, samples),
                _ => return StepReport::Idle,
            }
        };
        let stats = {
            let detector = self.detector.lock().unwrap_or_else(|e| e.into_inner());
            detector.stats()
        };
        if stats.samples < samples_at_suspect + self.cfg.confirm_window.max(1) {
            return StepReport::Idle;
        }
        if stats.statistic <= statistic_at_suspect {
            // The upward pressure stopped: transient, not drift.
            self.detector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .reset();
            self.counters
                .drift_false_alarm
                .fetch_add(1, Ordering::Relaxed);
            self.emit(|ev| ev.recorder.incr(&ev.drift_false_alarm));
            self.set_phase(Phase::Stable);
            return StepReport::FalseAlarm;
        }
        let cooldown_until = *self
            .cooldown_until
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if now < cooldown_until {
            // Confirmed, but a previous attempt's quiet period is still
            // running. Stay suspicious; the next step past the cooldown
            // retrains.
            return StepReport::CoolingDown;
        }
        self.counters
            .drift_confirmed
            .fetch_add(1, Ordering::Relaxed);
        self.emit(|ev| ev.recorder.incr(&ev.drift_confirmed));
        self.retrain(now)
    }

    /// The Retraining → Shadowing → {swap, reject, inconclusive} arc.
    /// Every exit sets the cooldown and resets the detector: whatever
    /// happened, the world changed (or a decision was made on it) and
    /// fresh evidence is required before the next attempt.
    fn retrain(&self, now: Duration) -> StepReport {
        self.set_phase(Phase::Retraining);
        let finish = |report: StepReport, next: Phase| {
            *self
                .cooldown_until
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = now + self.cfg.cooldown;
            self.detector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .reset();
            self.set_phase(next);
            report
        };
        let abort = |panicked: bool| {
            self.counters
                .retrain_aborted
                .fetch_add(1, Ordering::Relaxed);
            self.emit(|ev| ev.recorder.incr(&ev.retrain_aborted));
            if panicked {
                self.counters
                    .retrain_panicked
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.retrain_panicked));
            }
        };

        let data: Vec<(Query, f64)> = {
            let reservoir = self.reservoir.lock().unwrap_or_else(|e| e.into_inner());
            reservoir.iter().cloned().collect()
        };
        self.counters
            .retrain_triggered
            .fetch_add(1, Ordering::Relaxed);
        self.emit(|ev| ev.recorder.incr(&ev.retrain_triggered));

        // Deterministic interleaved split: every k-th pair is holdout,
        // the rest train. Interleaving keeps both halves covering the
        // same (possibly drifting) time range.
        let k = (1.0 / self.cfg.holdout_fraction).round().max(2.0) as usize;
        let mut train = Vec::with_capacity(data.len());
        let mut holdout = Vec::new();
        for (i, pair) in data.into_iter().enumerate() {
            if i % k == 0 {
                holdout.push(pair);
            } else {
                train.push(pair);
            }
        }
        if train.len() < self.cfg.min_train_samples || holdout.len() < self.cfg.min_holdout {
            abort(false);
            return finish(
                StepReport::RetrainAborted { panicked: false },
                Phase::Stable,
            );
        }

        // Budgeted, panic-isolated training. The budget closure reads
        // the injected clock, so a stalling trainer (chaos `SlowTrain`)
        // is aborted deterministically in tests and on wall time in
        // production.
        let clock = Arc::clone(&self.clock);
        let deadline = now + self.cfg.train_budget;
        let trainer = Arc::clone(&self.trainer);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut should_continue = || (clock)() < deadline;
            trainer.train(&train, &mut should_continue)
        }));
        let candidate = match outcome {
            Ok(Ok(candidate)) => candidate,
            Ok(Err(_)) => {
                abort(false);
                return finish(
                    StepReport::RetrainAborted { panicked: false },
                    Phase::Stable,
                );
            }
            Err(_) => {
                abort(true);
                return finish(StepReport::RetrainAborted { panicked: true }, Phase::Stable);
            }
        };

        self.set_phase(Phase::Shadowing);
        let live = self.slot.load();
        let (verdict, candidate_median) = self.shadow_score(&live, &candidate, &holdout);
        match verdict {
            ShadowVerdict::Reject => {
                self.counters
                    .shadow_rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.shadow_rejected));
                finish(StepReport::ShadowRejected, Phase::Stable)
            }
            ShadowVerdict::Inconclusive => {
                self.counters
                    .shadow_inconclusive
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.shadow_inconclusive));
                finish(StepReport::ShadowInconclusive, Phase::Stable)
            }
            ShadowVerdict::Accept => {
                let probe: Vec<Query> = holdout.iter().map(|(q, _)| q.clone()).collect();
                match self
                    .slot
                    .try_publish(SharedEstimator::clone(&candidate), &probe)
                {
                    Ok(generation) => {
                        self.counters
                            .shadow_accepted
                            .fetch_add(1, Ordering::Relaxed);
                        self.emit(|ev| ev.recorder.incr(&ev.shadow_accepted));
                        self.probation_q
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .clear();
                        finish(
                            StepReport::SwapAccepted { generation },
                            Phase::Probation(ProbationData {
                                pinned: live,
                                generation,
                                baseline_median: candidate_median,
                                probe,
                            }),
                        )
                    }
                    Err(_) => {
                        // Shadow liked it but the probe gate did not
                        // (e.g. a non-finite answer on a holdout query):
                        // counts as a rejection, live keeps serving.
                        self.counters
                            .shadow_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        self.emit(|ev| ev.recorder.incr(&ev.shadow_rejected));
                        finish(StepReport::ShadowRejected, Phase::Stable)
                    }
                }
            }
        }
    }

    /// Paired comparison of candidate vs live on the holdout. A panic or
    /// non-finite answer from the candidate on any pair scores as an
    /// immediate loss with infinite q-error (the live model gets the
    /// same treatment, so a broken live model can still be beaten).
    fn shadow_score(
        &self,
        live: &SharedEstimator,
        candidate: &SharedEstimator,
        holdout: &[(Query, f64)],
    ) -> (ShadowVerdict, f64) {
        let score = |est: &SharedEstimator, query: &Query, truth: f64| -> f64 {
            match catch_unwind(AssertUnwindSafe(|| est.estimate(query))) {
                Ok(v) if v.is_finite() => q_error(truth, v),
                _ => f64::INFINITY,
            }
        };
        let mut live_qs = Vec::with_capacity(holdout.len());
        let mut cand_qs = Vec::with_capacity(holdout.len());
        let (mut wins, mut losses) = (0u64, 0u64);
        for (query, truth) in holdout {
            let lq = score(live, query, *truth);
            let cq = score(candidate, query, *truth);
            if cq < lq {
                wins += 1;
            } else if cq > lq {
                losses += 1;
            }
            live_qs.push(lq);
            cand_qs.push(cq);
        }
        let live_median = median(&mut live_qs);
        let cand_median = median(&mut cand_qs);
        let n = (wins + losses) as f64;
        if n == 0.0 {
            return (ShadowVerdict::Inconclusive, cand_median);
        }
        let margin = wins as f64 - losses as f64;
        let threshold = self.cfg.shadow_z * n.sqrt();
        let verdict = if margin > threshold && cand_median <= live_median * self.cfg.min_improvement
        {
            ShadowVerdict::Accept
        } else if margin.abs() <= threshold {
            ShadowVerdict::Inconclusive
        } else {
            ShadowVerdict::Reject
        };
        (verdict, cand_median)
    }

    fn step_probation(&self) -> StepReport {
        let mut qs = {
            let buffer = self.probation_q.lock().unwrap_or_else(|e| e.into_inner());
            if buffer.len() < self.cfg.probation_samples {
                return StepReport::Idle;
            }
            buffer.clone()
        };
        let observed_median = median(&mut qs);
        let data = {
            let mut phase = self.phase.lock().unwrap_or_else(|e| e.into_inner());
            match std::mem::replace(&mut *phase, Phase::Stable) {
                Phase::Probation(data) => data,
                // Raced by a concurrent transition; restore and bail.
                other => {
                    *phase = other;
                    return StepReport::Idle;
                }
            }
        };
        self.emit(|ev| ev.recorder.set_gauge(&ev.state, AdaptPhase::Stable.gauge()));
        self.detector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reset();
        if observed_median <= data.baseline_median * self.cfg.rollback_ratio {
            self.counters
                .probation_passed
                .fetch_add(1, Ordering::Relaxed);
            self.emit(|ev| ev.recorder.incr(&ev.probation_passed));
            return StepReport::ProbationPassed;
        }
        // Regressed. Roll back — unless someone else already swapped,
        // in which case rolling back would clobber *their* model.
        if self.slot.generation() != data.generation {
            self.counters
                .probation_abandoned
                .fetch_add(1, Ordering::Relaxed);
            self.emit(|ev| ev.recorder.incr(&ev.probation_abandoned));
            return StepReport::ProbationAbandoned;
        }
        match self.slot.try_rollback(data.pinned, &data.probe) {
            Ok(generation) => {
                self.counters
                    .probation_rolled_back
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.probation_rolled_back));
                StepReport::RolledBack { generation }
            }
            Err(_) => {
                // The pinned model no longer passes its own probe; the
                // (regressed but functional) candidate is still the
                // safer thing to serve.
                self.counters
                    .probation_abandoned
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.probation_abandoned));
                StepReport::ProbationAbandoned
            }
        }
    }
}

impl FeedbackSink for AdaptController {
    /// Accumulate one sanitized observation: into the reservoir (shed
    /// oldest beyond capacity), into the drift detector (as
    /// `ln(q_error)`, so the Page-Hinkley mean shift is multiplicative
    /// in q-error), and — while on probation — into the post-swap
    /// evidence buffer.
    fn feedback(&self, query: &Query, truth: f64, estimate: f64) {
        let q = q_error(truth, estimate);
        {
            let mut reservoir = self.reservoir.lock().unwrap_or_else(|e| e.into_inner());
            if reservoir.len() == self.cfg.reservoir_capacity {
                reservoir.pop_front();
                self.counters.reservoir_shed.fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.reservoir_shed));
            }
            reservoir.push_back((query.clone(), truth));
            let len = reservoir.len() as u64;
            drop(reservoir);
            self.counters
                .feedback_accepted
                .fetch_add(1, Ordering::Relaxed);
            self.emit(|ev| {
                ev.recorder.incr(&ev.feedback_accepted);
                ev.recorder.set_gauge(&ev.reservoir_len, len);
            });
        }
        self.detector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(q.ln());
        let on_probation = matches!(
            self.phase.lock().unwrap_or_else(|e| e.into_inner()).kind(),
            AdaptPhase::Probation
        );
        if on_probation {
            self.probation_q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(q);
        }
    }
}

/// Median of `samples` (which is reordered); 0 when empty. Infinite
/// entries are legal and sort last, exactly as intended for "the model
/// broke on this query" sentinels.
fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Handle for a background adaptation thread; stops (and joins) on
/// [`stop`](AdaptHandle::stop) or drop.
pub struct AdaptHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl AdaptHandle {
    /// Signal the loop to exit and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for AdaptHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run `controller.step()` every `interval` on a background thread until
/// the returned handle is stopped or dropped. The deterministic tests
/// bypass this and call `step` directly; production wiring uses it so
/// adaptation needs no external driver.
pub fn spawn_adaptation(controller: Arc<AdaptController>, interval: Duration) -> AdaptHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("qfe-adapt".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                controller.step();
                std::thread::sleep(interval);
            }
        })
        .ok();
    AdaptHandle { stop, thread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::estimator::CardinalityEstimator;
    use qfe_core::TableId;

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    fn q() -> Query {
        Query::single_table(TableId(0), vec![])
    }

    /// An auto-advancing manual clock: every read advances virtual time
    /// by `step_ms`, so budget loops polling the clock always terminate
    /// deterministically without any real sleeping.
    fn auto_clock(step_ms: u64) -> AdaptClock {
        let ticks = AtomicU64::new(0);
        Arc::new(move || {
            let t = ticks.fetch_add(1, Ordering::Relaxed);
            Duration::from_millis(t * step_ms)
        })
    }

    fn small_cfg() -> AdaptConfig {
        AdaptConfig {
            reservoir_capacity: 256,
            detector: PageHinkleyConfig {
                delta: 0.05,
                lambda: 1.0,
                min_samples: 10,
            },
            confirm_window: 5,
            cooldown: Duration::ZERO,
            train_budget: Duration::from_millis(100),
            min_train_samples: 8,
            holdout_fraction: 0.25,
            min_holdout: 2,
            shadow_z: 1.0,
            min_improvement: 0.95,
            probation_samples: 8,
            rollback_ratio: 1.5,
        }
    }

    fn trainer_returning(value: f64) -> Arc<dyn CandidateTrainer> {
        Arc::new(
            move |_data: &[(Query, f64)],
                  _sc: &mut dyn FnMut() -> bool|
                  -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
                Ok(Arc::new(Constant(value)) as SharedEstimator)
            },
        )
    }

    /// Healthy feedback: truth equals the live estimate, q-error 1.
    fn feed_healthy(ctl: &AdaptController, n: usize) {
        let query = q();
        for _ in 0..n {
            let est = ctl.slot.load().estimate(&query);
            ctl.feedback(&query, est.max(1.0), est);
        }
    }

    /// Drifted feedback: the world moved to `truth` while the live model
    /// keeps answering whatever it answers.
    fn feed_truth(ctl: &AdaptController, truth: f64, n: usize) {
        let query = q();
        for _ in 0..n {
            let est = ctl.slot.load().estimate(&query);
            ctl.feedback(&query, truth, est);
        }
    }

    /// Walk the controller from Stable into a confirmed-drift retrain:
    /// healthy baseline, sustained shift to `truth`, suspicion, then the
    /// confirming step. Returns the retrain outcome.
    fn provoke(ctl: &AdaptController, truth: f64) -> StepReport {
        feed_healthy(ctl, 10);
        feed_truth(ctl, truth, 15);
        assert_eq!(ctl.step(), StepReport::Suspected);
        feed_truth(ctl, truth, 15);
        ctl.step()
    }

    #[test]
    fn reservoir_sheds_oldest_beyond_capacity() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let cfg = AdaptConfig {
            reservoir_capacity: 4,
            ..small_cfg()
        };
        let ctl = AdaptController::with_clock(slot, trainer_returning(1.0), cfg, auto_clock(1));
        for truth in 1..=10 {
            ctl.feedback(&q(), truth as f64, 1.0);
        }
        let stats = ctl.stats();
        assert_eq!(stats.reservoir_len, 4);
        assert_eq!(stats.feedback_accepted, 10);
        assert_eq!(stats.reservoir_shed, 6);
        let kept: Vec<f64> = ctl
            .reservoir
            .lock()
            .unwrap()
            .iter()
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(kept, vec![7.0, 8.0, 9.0, 10.0], "oldest shed first");
    }

    #[test]
    fn transient_spike_ages_out_as_a_false_alarm() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(1.0),
            small_cfg(),
            auto_clock(1),
        );
        // A short spike of bad truths trips the latch…
        feed_healthy(&ctl, 10);
        feed_truth(&ctl, 100.0, 3);
        assert_eq!(ctl.step(), StepReport::Suspected);
        assert_eq!(ctl.phase(), AdaptPhase::DriftSuspected);
        // …but the signal recovers, so the statistic stops growing and
        // the suspicion ages out past the confirm window.
        feed_healthy(&ctl, 10);
        assert_eq!(ctl.step(), StepReport::FalseAlarm);
        assert_eq!(ctl.phase(), AdaptPhase::Stable);
        let stats = ctl.stats();
        assert_eq!((stats.drift_suspected, stats.drift_false_alarm), (1, 1));
        assert_eq!(stats.retrain_triggered, 0, "no retrain on a false alarm");
        assert_eq!(slot.generation(), 0, "no swap either");
    }

    #[test]
    fn confirmed_drift_retrains_and_swaps_a_better_candidate() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        // Candidate answers 100 — exactly the truth the drifted stream
        // reports, so shadow scoring must prefer it decisively.
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(100.0),
            small_cfg(),
            auto_clock(1),
        );
        let report = provoke(&ctl, 100.0);
        assert_eq!(report, StepReport::SwapAccepted { generation: 1 });
        assert_eq!(ctl.phase(), AdaptPhase::Probation);
        assert_eq!(slot.load().estimate(&q()), 100.0, "candidate serves");
        let stats = ctl.stats();
        assert_eq!(stats.drift_confirmed, 1);
        assert_eq!(stats.retrain_triggered, 1);
        assert_eq!(stats.shadow_accepted, 1);
    }

    #[test]
    fn worse_candidate_is_rejected_and_live_keeps_serving() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(10.0)) as SharedEstimator));
        // Candidate is *further* from truth 100 than the live model.
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(2.0),
            small_cfg(),
            auto_clock(1),
        );
        assert_eq!(provoke(&ctl, 100.0), StepReport::ShadowRejected);
        assert_eq!(ctl.phase(), AdaptPhase::Stable);
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.load().estimate(&q()), 10.0, "live model untouched");
        assert_eq!(ctl.stats().shadow_rejected, 1);
    }

    #[test]
    fn panicking_trainer_is_contained_and_counted() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let trainer: Arc<dyn CandidateTrainer> = Arc::new(
            |_data: &[(Query, f64)],
             _sc: &mut dyn FnMut() -> bool|
             -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
                panic!("trainer bug")
            },
        );
        crate::install_quiet_panic_hook(vec!["trainer bug".into()]);
        let ctl =
            AdaptController::with_clock(Arc::clone(&slot), trainer, small_cfg(), auto_clock(1));
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::RetrainAborted { panicked: true }
        );
        assert_eq!(ctl.phase(), AdaptPhase::Stable, "loop survives the panic");
        assert_eq!(slot.generation(), 0, "no swap from a panicked attempt");
        let stats = ctl.stats();
        assert_eq!((stats.retrain_aborted, stats.retrain_panicked), (1, 1));
    }

    #[test]
    fn stalling_trainer_is_cut_off_by_the_clock_budget() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let polls = Arc::new(AtomicU64::new(0));
        let polls_seen = Arc::clone(&polls);
        // A trainer that never finishes on its own: it spins polling the
        // budget, exactly like the chaos SlowTrain fault.
        let trainer: Arc<dyn CandidateTrainer> = Arc::new(
            move |_data: &[(Query, f64)],
                  sc: &mut dyn FnMut() -> bool|
                  -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
                while sc() {
                    polls_seen.fetch_add(1, Ordering::Relaxed);
                }
                Err("interrupted by budget".into())
            },
        );
        // Auto-advancing clock: each read moves 10ms of virtual time, so
        // the 100ms budget expires after ~10 polls — deterministically,
        // with zero real sleeping.
        let ctl =
            AdaptController::with_clock(Arc::clone(&slot), trainer, small_cfg(), auto_clock(10));
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::RetrainAborted { panicked: false }
        );
        assert!(polls.load(Ordering::Relaxed) > 0, "trainer actually ran");
        assert_eq!(slot.generation(), 0);
        assert_eq!(ctl.stats().retrain_aborted, 1);
    }

    #[test]
    fn post_swap_regression_rolls_back_to_the_pinned_generation() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(100.0),
            small_cfg(),
            auto_clock(1),
        );
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::SwapAccepted { generation: 1 }
        );
        // Probation: the new model turns out to be terrible against the
        // *actual* post-swap truths (truth moved to 10000).
        feed_truth(&ctl, 10_000.0, 8);
        assert_eq!(ctl.step(), StepReport::RolledBack { generation: 2 });
        assert_eq!(slot.load().estimate(&q()), 1.0, "old model restored");
        assert_eq!(slot.rollback_count(), 1);
        let stats = ctl.stats();
        assert_eq!(stats.probation_rolled_back, 1);
        assert_eq!(stats.phase, AdaptPhase::Stable);
    }

    #[test]
    fn healthy_probation_passes_and_keeps_the_swap() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(100.0),
            small_cfg(),
            auto_clock(1),
        );
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::SwapAccepted { generation: 1 }
        );
        // Post-swap truths agree with the new model: probation passes.
        feed_truth(&ctl, 100.0, 8);
        assert_eq!(ctl.step(), StepReport::ProbationPassed);
        assert_eq!(slot.load().estimate(&q()), 100.0, "swap is final");
        assert_eq!(slot.rollback_count(), 0);
        assert_eq!(ctl.stats().probation_passed, 1);
    }

    #[test]
    fn external_swap_racing_the_rollback_abandons_probation() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(100.0),
            small_cfg(),
            auto_clock(1),
        );
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::SwapAccepted { generation: 1 }
        );
        // Someone else publishes while we're on probation…
        let probe = vec![q()];
        slot.try_publish(Arc::new(Constant(55.0)) as SharedEstimator, &probe)
            .unwrap();
        // …and the candidate regresses. Rolling back now would clobber
        // the external publication, so the controller must stand down.
        let query = q();
        for _ in 0..8 {
            ctl.feedback(&query, 10_000.0, 55.0);
        }
        assert_eq!(ctl.step(), StepReport::ProbationAbandoned);
        assert_eq!(slot.load().estimate(&query), 55.0, "external model kept");
        assert_eq!(slot.rollback_count(), 0);
        assert_eq!(ctl.stats().probation_abandoned, 1);
    }

    #[test]
    fn counters_conserve_across_mixed_outcomes() {
        // One accepted swap, one rejection, one panic-abort: triggers
        // must equal accepted + rejected + inconclusive + aborted.
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let attempt = Arc::new(AtomicU64::new(0));
        let attempt_seen = Arc::clone(&attempt);
        let trainer: Arc<dyn CandidateTrainer> = Arc::new(
            move |_data: &[(Query, f64)],
                  _sc: &mut dyn FnMut() -> bool|
                  -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
                match attempt_seen.fetch_add(1, Ordering::Relaxed) {
                    0 => Ok(Arc::new(Constant(100.0)) as SharedEstimator),
                    1 => Ok(Arc::new(Constant(2.0)) as SharedEstimator),
                    _ => panic!("trainer bug"),
                }
            },
        );
        crate::install_quiet_panic_hook(vec!["trainer bug".into()]);
        let ctl =
            AdaptController::with_clock(Arc::clone(&slot), trainer, small_cfg(), auto_clock(1));

        // Attempt 1: good candidate, swap, pass probation.
        assert!(matches!(
            provoke(&ctl, 100.0),
            StepReport::SwapAccepted { .. }
        ));
        feed_truth(&ctl, 100.0, 8);
        assert_eq!(ctl.step(), StepReport::ProbationPassed);

        // Attempt 2: the stream drifts again (truth 5000), candidate
        // (2.0) is worse than live (100.0) → rejected.
        assert_eq!(provoke(&ctl, 5_000.0), StepReport::ShadowRejected);

        // Attempt 3: trainer panics.
        assert_eq!(
            provoke(&ctl, 500_000.0),
            StepReport::RetrainAborted { panicked: true }
        );

        let s = ctl.stats();
        assert_eq!(s.retrain_triggered, 3);
        assert_eq!(
            s.retrain_triggered,
            s.shadow_accepted + s.shadow_rejected + s.shadow_inconclusive + s.retrain_aborted,
            "conservation: {s:?}"
        );
    }

    #[test]
    fn too_little_data_aborts_without_calling_the_trainer() {
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let called = Arc::new(AtomicU64::new(0));
        let called_seen = Arc::clone(&called);
        let trainer: Arc<dyn CandidateTrainer> = Arc::new(
            move |_data: &[(Query, f64)],
                  _sc: &mut dyn FnMut() -> bool|
                  -> Result<SharedEstimator, Box<dyn std::error::Error + Send + Sync>> {
                called_seen.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(Constant(1.0)) as SharedEstimator)
            },
        );
        let cfg = AdaptConfig {
            min_train_samples: 1_000,
            ..small_cfg()
        };
        let ctl = AdaptController::with_clock(slot, trainer, cfg, auto_clock(1));
        assert_eq!(
            provoke(&ctl, 100.0),
            StepReport::RetrainAborted { panicked: false }
        );
        assert_eq!(called.load(Ordering::Relaxed), 0);
        let s = ctl.stats();
        assert_eq!((s.retrain_triggered, s.retrain_aborted), (1, 1));
    }

    #[test]
    fn adapt_metrics_flow_through_the_recorder() {
        use qfe_obs::MetricsRecorder;
        let slot = Arc::new(ModelSlot::new(Arc::new(Constant(1.0)) as SharedEstimator));
        let ctl = AdaptController::with_clock(
            Arc::clone(&slot),
            trainer_returning(100.0),
            small_cfg(),
            auto_clock(1),
        );
        let rec = Arc::new(MetricsRecorder::new());
        ctl.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, "adapt");
        assert!(matches!(
            provoke(&ctl, 100.0),
            StepReport::SwapAccepted { .. }
        ));
        assert_eq!(rec.counter("adapt.drift.suspected"), 1);
        assert_eq!(rec.counter("adapt.drift.confirmed"), 1);
        assert_eq!(rec.counter("adapt.retrain.triggered"), 1);
        assert_eq!(rec.counter("adapt.shadow.accepted"), 1);
        assert_eq!(rec.counter("adapt.feedback.accepted"), 40);
        assert_eq!(rec.gauge("adapt.state"), AdaptPhase::Probation.gauge());
        assert!(rec.gauge("adapt.reservoir.len") > 0);
        // The slot's own events were wired through the same call.
        assert_eq!(rec.counter("slot.swap.accepted"), 1);
        assert_eq!(rec.gauge("slot.generation"), 1);
    }
}
