//! The std-only TCP front door: length-prefixed frames over
//! `TcpListener`, routed through a [`ShardRegistry`].
//!
//! Architecture: `NetServer::bind` creates one listener and
//! thread-per-core acceptor loops over clones of it (`try_clone`), so
//! accepts proceed in parallel without a dispatcher thread. Each
//! accepted connection gets a handler thread (bounded by
//! `max_connections`; beyond the cap the connection is closed and
//! counted, never queued). Handlers decode [`Frame`]s, route
//! `EstimateRequest`s by tenant key through the registry — which runs
//! them through the owning shard's quota gate and [`MicroBatcher`] —
//! and write the response frame back.
//!
//! Failure philosophy, same as the rest of the crate: *nothing a client
//! sends can panic or hang the server.* Malformed bytes become typed
//! [`ProtoError`]s (counted, answered with an error frame when framing
//! allows, then the connection closes — after a corrupt length prefix
//! there is no frame boundary to resync to). Slow clients hit the
//! per-connection idle deadline. Service failures map to typed
//! [`ErrCode`]s and the connection stays usable.
//!
//! [`MicroBatcher`]: crate::batch::MicroBatcher

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qfe_core::Deadline;
use qfe_obs::MetricsSnapshot;

use crate::proto::{write_frame, ErrCode, Frame, ProtoError, ReadError, MAX_FRAME_LEN};
use crate::shard::{FleetError, RouteError, ShardError, ShardKey, ShardRegistry};

/// Tuning for the TCP front door.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Acceptor threads; `0` means one per core
    /// (`available_parallelism`).
    pub acceptors: usize,
    /// Concurrent connections beyond which new accepts are closed
    /// immediately (and counted as refused).
    pub max_connections: usize,
    /// Socket timeout granularity: how often a blocked read wakes to
    /// check the shutdown flag. Small values make shutdown snappy.
    pub tick: Duration,
    /// Per-connection idle deadline: a connection making no read
    /// progress for this long is closed. Also bounds how long a
    /// half-sent frame may stall.
    pub idle_timeout: Duration,
    /// Budget applied when a request carries `budget_micros == 0`.
    pub default_budget: Duration,
    /// Clamp on client-supplied budgets, so a client cannot pin a
    /// worker for minutes.
    pub max_budget: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            acceptors: 0,
            max_connections: 256,
            tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(30),
            default_budget: Duration::from_millis(100),
            max_budget: Duration::from_secs(10),
        }
    }
}

/// Monotonic front-door counters (`active` is a gauge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted into a handler.
    pub accepted: u64,
    /// Connections closed at accept because the cap was reached.
    pub refused: u64,
    /// Handler threads currently live.
    pub active: usize,
    /// Frames successfully decoded.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Typed protocol errors (malformed bytes from a client).
    pub proto_errors: u64,
    /// Transport errors (resets, mid-frame EOF) — excludes clean closes.
    pub io_errors: u64,
    /// Connections closed by the idle deadline.
    pub idle_closed: u64,
    /// Requests answered with an estimate.
    pub requests_ok: u64,
    /// Requests answered with a typed error frame.
    pub requests_err: u64,
    /// Accept-loop errors survived (EMFILE and friends).
    pub accept_errors: u64,
}

struct Inner {
    registry: Arc<ShardRegistry>,
    cfg: NetConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    refused: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    proto_errors: AtomicU64,
    io_errors: AtomicU64,
    idle_closed: AtomicU64,
    requests_ok: AtomicU64,
    requests_err: AtomicU64,
    accept_errors: AtomicU64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP server. Dropping it shuts it down and joins every
/// thread it spawned.
pub struct NetServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start accepting. `addr` may carry port 0 for an
    /// OS-assigned port; read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    /// Bind/clone failures from the OS.
    pub fn bind(
        registry: Arc<ShardRegistry>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let acceptors = if cfg.acceptors == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            cfg.acceptors
        };
        let inner = Arc::new(Inner {
            registry,
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_err: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(acceptors);
        for i in 0..acceptors {
            let listener = listener.try_clone()?;
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("qfe-accept-{i}"))
                    .spawn(move || accept_loop(listener, inner))?,
            );
        }
        Ok(NetServer {
            inner,
            addr,
            acceptors: handles,
        })
    }

    /// Bind loopback on an OS-assigned port, retrying transient bind
    /// failures (exhausted ephemeral ports on busy CI machines) with a
    /// short backoff. This is the flake-proof entry point benches use.
    ///
    /// # Errors
    /// The last bind error after `attempts` tries.
    pub fn bind_loopback_with_retry(
        registry: Arc<ShardRegistry>,
        cfg: NetConfig,
        attempts: usize,
    ) -> io::Result<Self> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Self::bind(Arc::clone(&registry), ("127.0.0.1", 0), cfg.clone()) {
                Ok(server) => return Ok(server),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(50 * (attempt as u64 + 1)));
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("bind_loopback_with_retry: zero attempts")))
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes through.
    pub fn registry(&self) -> &Arc<ShardRegistry> {
        &self.inner.registry
    }

    /// Front-door counters.
    pub fn stats(&self) -> NetStats {
        let i = &self.inner;
        NetStats {
            accepted: i.accepted.load(Ordering::Acquire),
            refused: i.refused.load(Ordering::Acquire),
            active: i.active.load(Ordering::Acquire),
            frames_in: i.frames_in.load(Ordering::Acquire),
            frames_out: i.frames_out.load(Ordering::Acquire),
            proto_errors: i.proto_errors.load(Ordering::Acquire),
            io_errors: i.io_errors.load(Ordering::Acquire),
            idle_closed: i.idle_closed.load(Ordering::Acquire),
            requests_ok: i.requests_ok.load(Ordering::Acquire),
            requests_err: i.requests_err.load(Ordering::Acquire),
            accept_errors: i.accept_errors.load(Ordering::Acquire),
        }
    }

    /// One snapshot of the whole stack: fleet metrics (per-shard
    /// `shard.*`, `registry.*`) plus front-door `net.*` counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.inner.registry.metrics();
        let s = self.stats();
        snap.merge_counter("net.accepted", s.accepted);
        snap.merge_counter("net.refused", s.refused);
        snap.merge_counter("net.frames_in", s.frames_in);
        snap.merge_counter("net.frames_out", s.frames_out);
        snap.merge_counter("net.proto_errors", s.proto_errors);
        snap.merge_counter("net.io_errors", s.io_errors);
        snap.merge_counter("net.idle_closed", s.idle_closed);
        snap.merge_counter("net.requests_ok", s.requests_ok);
        snap.merge_counter("net.requests_err", s.requests_err);
        snap.merge_counter("net.accept_errors", s.accept_errors);
        snap.gauges.insert("net.active".into(), s.active as u64);
        snap
    }

    /// Stop accepting, close out handlers, and join every thread. Safe
    /// to call twice; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Accept loops block in `accept`; poke each one awake with a
        // throwaway connection. Failures are fine — the loop also exits
        // on its next accept error or incoming connection.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        let handlers = {
            let mut guard = self
                .inner
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        // Handlers see the flag at their next tick (bounded by
        // cfg.tick), so these joins are prompt.
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return; // the wake-up poke itself lands here
                }
                // Optimistic claim, same shape as the shard quota gate:
                // increment first so two racing accepts can't both
                // slip under the cap.
                let prev = inner.active.fetch_add(1, Ordering::AcqRel);
                if prev >= inner.cfg.max_connections {
                    inner.active.fetch_sub(1, Ordering::AcqRel);
                    inner.refused.fetch_add(1, Ordering::AcqRel);
                    drop(stream);
                    continue;
                }
                inner.accepted.fetch_add(1, Ordering::AcqRel);
                let conn_inner = Arc::clone(&inner);
                let spawned =
                    std::thread::Builder::new()
                        .name("qfe-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &conn_inner);
                            conn_inner.active.fetch_sub(1, Ordering::AcqRel);
                        });
                match spawned {
                    Ok(handle) => {
                        let mut guard = inner.handlers.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished handlers so a long-lived server
                        // doesn't accumulate join handles forever.
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion):
                        // treat like a refused connection.
                        inner.active.fetch_sub(1, Ordering::AcqRel);
                        inner.refused.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (EMFILE, ECONNABORTED):
                // count it, back off briefly, keep accepting. The
                // acceptor never dies while the server is up.
                inner.accept_errors.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// What one read attempt produced, beyond a decoded frame.
enum NetRead {
    Frame(Frame),
    /// Peer closed cleanly at a frame boundary.
    Closed,
    /// No read progress for `idle_timeout`.
    Idle,
    /// Server is shutting down.
    Shutdown,
}

/// What [`fill`] did with its buffer.
enum FillOutcome {
    /// Buffer completely filled.
    Full,
    /// Peer closed cleanly before the first byte (frame boundary only).
    Closed,
    /// No read progress for `idle_timeout`.
    Idle,
    /// Server is shutting down.
    Shutdown,
}

/// Fill `buf` from `stream`, tolerating tick-granularity timeouts while
/// progress is being made. `clean_close_ok` is true only at a frame
/// boundary (zero bytes filled).
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    inner: &Inner,
    clean_close_ok: bool,
) -> Result<FillOutcome, ReadError> {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        if inner.shutdown.load(Ordering::Acquire) {
            return Ok(FillOutcome::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_close_ok {
                    Ok(FillOutcome::Closed)
                } else {
                    Err(ReadError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )))
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() >= inner.cfg.idle_timeout {
                    return Ok(FillOutcome::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(FillOutcome::Full)
}

/// Read one frame with shutdown/idle awareness (see [`fill`]).
fn read_net_frame(stream: &mut TcpStream, inner: &Inner) -> Result<NetRead, ReadError> {
    let mut header = [0u8; 4];
    match fill(stream, &mut header, inner, true)? {
        FillOutcome::Full => {}
        FillOutcome::Closed => return Ok(NetRead::Closed),
        FillOutcome::Idle => return Ok(NetRead::Idle),
        FillOutcome::Shutdown => return Ok(NetRead::Shutdown),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ReadError::Proto(ProtoError::Oversized {
            declared: len,
            max: MAX_FRAME_LEN,
        }));
    }
    let mut payload = vec![0u8; len];
    match fill(stream, &mut payload, inner, false)? {
        FillOutcome::Full => {}
        FillOutcome::Closed => return Ok(NetRead::Closed),
        FillOutcome::Idle => return Ok(NetRead::Idle),
        FillOutcome::Shutdown => return Ok(NetRead::Shutdown),
    }
    Ok(NetRead::Frame(Frame::decode(&payload)?))
}

fn send(stream: &mut TcpStream, inner: &Inner, frame: &Frame) -> bool {
    match write_frame(stream, frame) {
        Ok(()) => {
            inner.frames_out.fetch_add(1, Ordering::AcqRel);
            true
        }
        Err(_) => {
            inner.io_errors.fetch_add(1, Ordering::AcqRel);
            false
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Inner) {
    // Socket hygiene: tick-granularity timeouts so shutdown is prompt,
    // no Nagle delay on small response frames.
    let _ = stream.set_read_timeout(Some(inner.cfg.tick));
    let _ = stream.set_write_timeout(Some(inner.cfg.idle_timeout));
    let _ = stream.set_nodelay(true);

    loop {
        let frame = match read_net_frame(&mut stream, inner) {
            Ok(NetRead::Frame(f)) => f,
            Ok(NetRead::Closed) | Ok(NetRead::Shutdown) => return,
            Ok(NetRead::Idle) => {
                inner.idle_closed.fetch_add(1, Ordering::AcqRel);
                return;
            }
            Err(ReadError::Proto(e)) => {
                // Malformed bytes: typed, counted, answered when the
                // stream is still writable — then close, because a
                // corrupt length prefix destroys frame alignment.
                inner.proto_errors.fetch_add(1, Ordering::AcqRel);
                let _ = send(
                    &mut stream,
                    inner,
                    &Frame::EstimateErr {
                        request_id: 0,
                        code: ErrCode::BadRequest,
                        detail: format!("protocol error: {e}"),
                    },
                );
                return;
            }
            Err(ReadError::Io(_)) => {
                inner.io_errors.fetch_add(1, Ordering::AcqRel);
                return;
            }
        };
        inner.frames_in.fetch_add(1, Ordering::AcqRel);

        match frame {
            Frame::Ping { token } => {
                if !send(&mut stream, inner, &Frame::Pong { token }) {
                    return;
                }
            }
            Frame::EstimateRequest {
                request_id,
                tenant,
                budget_micros,
                query,
            } => {
                let budget = if budget_micros == 0 {
                    inner.cfg.default_budget
                } else {
                    Duration::from_micros(budget_micros).min(inner.cfg.max_budget)
                };
                // Tenant 0 is the anonymous tenant: route by the
                // query's own sub-schema fingerprint.
                let key = if tenant == 0 {
                    ShardKey::of_query(&query)
                } else {
                    ShardKey(tenant)
                };
                let reply = if query.tables.is_empty() {
                    Frame::EstimateErr {
                        request_id,
                        code: ErrCode::BadRequest,
                        detail: "query accesses no table".into(),
                    }
                } else {
                    match inner
                        .registry
                        .estimate_within(key, &query, Deadline::within(budget))
                    {
                        Ok(est) => Frame::EstimateOk {
                            request_id,
                            value: est.value,
                            fallback_depth: est.fallback_depth.min(u32::MAX as usize) as u32,
                            estimator: est.estimator,
                        },
                        Err(e) => Frame::EstimateErr {
                            request_id,
                            code: err_code(&e),
                            detail: e.to_string(),
                        },
                    }
                };
                match &reply {
                    Frame::EstimateOk { .. } => {
                        inner.requests_ok.fetch_add(1, Ordering::AcqRel);
                    }
                    _ => {
                        inner.requests_err.fetch_add(1, Ordering::AcqRel);
                    }
                }
                if !send(&mut stream, inner, &reply) {
                    return;
                }
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation by a confused client: typed error,
            // connection stays open (framing is still aligned).
            Frame::EstimateOk { request_id, .. } | Frame::EstimateErr { request_id, .. } => {
                inner.proto_errors.fetch_add(1, Ordering::AcqRel);
                if !send(
                    &mut stream,
                    inner,
                    &Frame::EstimateErr {
                        request_id,
                        code: ErrCode::BadRequest,
                        detail: "unexpected server-to-client frame".into(),
                    },
                ) {
                    return;
                }
            }
            Frame::Pong { .. } => {
                inner.proto_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

fn err_code(e: &FleetError) -> ErrCode {
    match e {
        FleetError::Route(RouteError::NoShards) => ErrCode::UnknownTenant,
        FleetError::Shard(ShardError::QuotaExhausted { .. }) => ErrCode::QuotaExhausted,
        FleetError::Shard(ShardError::Serve(crate::error::ServeError::Overloaded { .. })) => {
            ErrCode::Overloaded
        }
        FleetError::Shard(ShardError::Serve(crate::error::ServeError::DeadlineExceeded {
            ..
        })) => ErrCode::DeadlineExceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::shard::{Shard, ShardConfig};
    use crate::slot::SharedEstimator;
    use qfe_core::{CardinalityEstimator, Query, TableId};
    use std::io::Write;

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "const".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    fn server_with_tenants(names: &[&str]) -> NetServer {
        let registry = Arc::new(ShardRegistry::new());
        for (i, name) in names.iter().enumerate() {
            let cfg = ShardConfig {
                quota: 16,
                service: ServiceConfig {
                    workers: 1,
                    ..ServiceConfig::default()
                },
            };
            registry
                .register(Shard::new(
                    *name,
                    ShardKey::for_tenant(name),
                    vec![Arc::new(Constant((i + 1) as f64 * 10.0)) as SharedEstimator],
                    cfg,
                ))
                .unwrap();
        }
        NetServer::bind_loopback_with_retry(
            registry,
            NetConfig {
                acceptors: 1,
                tick: Duration::from_millis(5),
                ..NetConfig::default()
            },
            3,
        )
        .unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, frame: &Frame) -> Frame {
        write_frame(stream, frame).unwrap();
        crate::proto::read_frame(stream).unwrap().unwrap()
    }

    fn request(tenant: u128, id: u64) -> Frame {
        Frame::EstimateRequest {
            request_id: id,
            tenant,
            budget_micros: 0,
            query: Query {
                tables: vec![TableId(0)],
                joins: vec![],
                predicates: vec![],
            },
        }
    }

    #[test]
    fn ping_pong_and_estimates_over_real_tcp() {
        let server = server_with_tenants(&["a", "b"]);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            roundtrip(&mut conn, &Frame::Ping { token: 9 }),
            Frame::Pong { token: 9 }
        );
        match roundtrip(&mut conn, &request(ShardKey::for_tenant("a").0, 1)) {
            Frame::EstimateOk {
                request_id, value, ..
            } => {
                assert_eq!(request_id, 1);
                assert_eq!(value, 10.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match roundtrip(&mut conn, &request(ShardKey::for_tenant("b").0, 2)) {
            Frame::EstimateOk { value, .. } => assert_eq!(value, 20.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_tenant_routes_by_rendezvous_not_error() {
        let server = server_with_tenants(&["a"]);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // A tenant nobody registered still lands on *some* shard.
        match roundtrip(&mut conn, &request(ShardKey::for_tenant("stranger").0, 3)) {
            Frame::EstimateOk { value, .. } => assert_eq!(value, 10.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_registry_is_a_typed_error_frame() {
        let registry = Arc::new(ShardRegistry::new());
        let server = NetServer::bind_loopback_with_retry(
            registry,
            NetConfig {
                acceptors: 1,
                tick: Duration::from_millis(5),
                ..NetConfig::default()
            },
            3,
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        match roundtrip(&mut conn, &request(7, 4)) {
            Frame::EstimateErr { code, .. } => assert_eq!(code, ErrCode::UnknownTenant),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_get_a_typed_error_then_close() {
        let mut server = server_with_tenants(&["a"]);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // A frame whose payload is one unknown tag byte.
        conn.write_all(&1u32.to_le_bytes()).unwrap();
        conn.write_all(&[0xEE]).unwrap();
        match crate::proto::read_frame(&mut conn).unwrap() {
            Some(Frame::EstimateErr { code, .. }) => assert_eq!(code, ErrCode::BadRequest),
            other => panic!("unexpected {other:?}"),
        }
        // Server closed its side after the framing error.
        assert_eq!(crate::proto::read_frame(&mut conn).unwrap(), None);
        // Give the handler a moment to record, then check counters.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.stats().proto_errors, 1);
        server.shutdown();
    }

    #[test]
    fn oversized_header_never_allocates_or_kills_the_server() {
        let server = server_with_tenants(&["a"]);
        let mut bad = TcpStream::connect(server.local_addr()).unwrap();
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
        match crate::proto::read_frame(&mut bad).unwrap() {
            Some(Frame::EstimateErr { code, .. }) => assert_eq!(code, ErrCode::BadRequest),
            other => panic!("unexpected {other:?}"),
        }
        // The server survives and serves the next connection.
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            roundtrip(&mut good, &Frame::Ping { token: 1 }),
            Frame::Pong { token: 1 }
        );
    }

    #[test]
    fn shutdown_joins_everything() {
        let mut server = server_with_tenants(&["a"]);
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        roundtrip(&mut conn, &Frame::Ping { token: 1 });
        server.shutdown();
        // Idempotent.
        server.shutdown();
        // The port is released: a fresh bind to the same addr works.
        drop(conn);
        let _rebind = TcpListener::bind(addr);
    }

    #[test]
    fn metrics_merge_net_registry_and_shard_counters() {
        let server = server_with_tenants(&["a"]);
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        roundtrip(&mut conn, &request(ShardKey::for_tenant("a").0, 1));
        let snap = server.metrics();
        assert!(snap.counter("net.requests_ok") >= 1);
        assert_eq!(snap.counter("shard.a.routing.routed"), 1);
        assert_eq!(snap.counter("registry.routes.exact"), 1);
    }
}
