//! Length-prefixed binary wire protocol for the TCP front door.
//!
//! Every frame on the wire is `[u32 LE payload length][payload]`, where
//! the payload starts with a one-byte frame tag. The format is designed
//! for hostile input: every decode path is bounded *before* it
//! allocates (frame cap, string cap, collection cap, recursion cap),
//! every malformed byte sequence maps to a typed [`ProtoError`], and no
//! input — truncated, oversized, or bit-flipped — can panic or hang the
//! decoder. `tests/proto_props.rs` sweeps exactly those corruptions.
//!
//! ## Frame layout
//!
//! | tag  | frame            | body |
//! |------|------------------|------|
//! | 0x01 | EstimateRequest  | `request_id:u64, tenant:u128, budget_micros:u64, query` |
//! | 0x02 | EstimateOk       | `request_id:u64, value:f64, fallback_depth:u32, estimator:str` |
//! | 0x03 | EstimateErr      | `request_id:u64, code:u8, detail:str` |
//! | 0x04 | Ping             | `token:u64` |
//! | 0x05 | Pong             | `token:u64` |
//!
//! All integers are little-endian. Strings are a `u32` length followed
//! by UTF-8 bytes. A query is `tables` (u32 count, then u64 ids),
//! `joins` (u32 count, then four u64s each), and `predicates` (u32
//! count, then column and expression tree). Expression nodes are
//! tagged `0 = leaf(op:u8, value)`, `1 = AND(u32 count, children)`,
//! `2 = OR(...)`; values are tagged `i`/`f`/`s` like the fingerprint
//! encoding in `qfe-core`. Floats travel as `to_bits` so round-trips
//! are bit-exact.

use std::fmt;
use std::io::{self, Read, Write};

use qfe_core::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
use qfe_core::query::{ColumnRef, JoinPredicate, Query};
use qfe_core::schema::{ColumnId, TableId};
use qfe_core::Value;

/// Hard cap on a frame payload. Anything larger is refused before
/// allocation — a 4-byte header claiming 4 GiB must cost nothing.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Cap on any single collection (tables, joins, predicates, children).
pub const MAX_ITEMS: usize = 4096;
/// Cap on a string field (estimator names, error details).
pub const MAX_STR_LEN: usize = 1 << 16;
/// Cap on predicate-expression nesting depth.
pub const MAX_DEPTH: usize = 32;

/// Why a frame could not be decoded. Every variant is a *diagnosis*:
/// the acceptor logs and counts these; it never panics on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before a field's bytes did.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A declared length exceeded its cap (frame, string, or payload).
    Oversized {
        /// The length the frame declared.
        declared: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The first payload byte is not a known frame tag.
    UnknownFrameTag(u8),
    /// An interior tag byte (op, value, expression node, error code) is
    /// out of range for its field.
    UnknownTag {
        /// Which field the tag belongs to.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The frame decoded cleanly but bytes were left over — a framing
    /// bug or corruption; trailing garbage is never silently ignored.
    TrailingBytes {
        /// How many bytes remained after the frame.
        extra: usize,
    },
    /// A collection declared more items than [`MAX_ITEMS`] or than the
    /// remaining bytes could possibly hold.
    TooManyItems {
        /// Which collection.
        what: &'static str,
        /// The declared count.
        count: usize,
        /// The cap it violated.
        max: usize,
    },
    /// Predicate expression nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// Which field.
        what: &'static str,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            ProtoError::Oversized { declared, max } => {
                write!(f, "oversized length {declared} (cap {max})")
            }
            ProtoError::UnknownFrameTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            ProtoError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag 0x{tag:02x}")
            }
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
            ProtoError::TooManyItems { what, count, max } => {
                write!(f, "{what} count {count} exceeds cap {max}")
            }
            ProtoError::TooDeep => write!(f, "expression nesting exceeds {MAX_DEPTH}"),
            ProtoError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Why a response carries an error instead of an estimate. One byte on
/// the wire; the mapping from service errors lives in `net.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The shard's admission queue turned the request away.
    Overloaded = 1,
    /// The request's budget ran out before any stage answered.
    DeadlineExceeded = 2,
    /// The shard's per-tenant quota was exhausted (fairness shed).
    QuotaExhausted = 3,
    /// No shard is registered that can serve this tenant key.
    UnknownTenant = 4,
    /// The request decoded but was semantically invalid (e.g. an
    /// ill-formed query).
    BadRequest = 5,
    /// Anything else — the catch-all that keeps the connection alive.
    Internal = 6,
}

impl ErrCode {
    fn from_u8(tag: u8) -> Result<Self, ProtoError> {
        Ok(match tag {
            1 => ErrCode::Overloaded,
            2 => ErrCode::DeadlineExceeded,
            3 => ErrCode::QuotaExhausted,
            4 => ErrCode::UnknownTenant,
            5 => ErrCode::BadRequest,
            6 => ErrCode::Internal,
            t => {
                return Err(ProtoError::UnknownTag {
                    what: "error code",
                    tag: t,
                })
            }
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One message on the wire, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: estimate `query` for tenant `tenant` within
    /// `budget_micros` (0 means "server default budget").
    EstimateRequest {
        /// Client-chosen correlation id, echoed in the response.
        request_id: u64,
        /// Routing key — a schema/tenant fingerprint (see `shard.rs`).
        tenant: u128,
        /// Per-request budget in microseconds; 0 = server default.
        budget_micros: u64,
        /// The query to estimate.
        query: Query,
    },
    /// Server → client: the estimate, with provenance.
    EstimateOk {
        /// Echo of the request's correlation id.
        request_id: u64,
        /// The estimated cardinality (finite, ≥ 1 by service contract).
        value: f64,
        /// Fallback stages exhausted before this answer (0 = primary).
        fallback_depth: u32,
        /// `name()` of the estimator that answered.
        estimator: String,
    },
    /// Server → client: a typed failure; the connection stays usable.
    EstimateErr {
        /// Echo of the request's correlation id (0 when the request id
        /// itself could not be decoded).
        request_id: u64,
        /// Failure class.
        code: ErrCode,
        /// Human-readable detail for logs.
        detail: String,
    },
    /// Liveness probe.
    Ping {
        /// Opaque token echoed in the matching [`Frame::Pong`].
        token: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echo of the ping's token.
        token: u64,
    },
}

const TAG_REQUEST: u8 = 0x01;
const TAG_OK: u8 = 0x02;
const TAG_ERR: u8 = 0x03;
const TAG_PING: u8 = 0x04;
const TAG_PONG: u8 = 0x05;

const EXPR_LEAF: u8 = 0;
const EXPR_AND: u8 = 1;
const EXPR_OR: u8 = 2;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Encoder-side honesty: never emit a string the decoder would
    // refuse. Truncating on a char boundary keeps the field valid UTF-8.
    let mut bytes = s.as_bytes();
    if bytes.len() > MAX_STR_LEN {
        let mut end = MAX_STR_LEN;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        bytes = &s.as_bytes()[..end];
    }
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(b'i');
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(b'f');
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(b's');
            put_str(out, s);
        }
    }
}

fn put_expr(out: &mut Vec<u8>, expr: &PredicateExpr) {
    match expr {
        PredicateExpr::Leaf(p) => {
            out.push(EXPR_LEAF);
            out.push(p.op as u8);
            put_value(out, &p.value);
        }
        PredicateExpr::And(children) | PredicateExpr::Or(children) => {
            out.push(if matches!(expr, PredicateExpr::And(_)) {
                EXPR_AND
            } else {
                EXPR_OR
            });
            put_u32(out, children.len() as u32);
            for c in children {
                put_expr(out, c);
            }
        }
    }
}

fn put_column(out: &mut Vec<u8>, c: &ColumnRef) {
    put_u64(out, c.table.0 as u64);
    put_u64(out, c.column.0 as u64);
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_u32(out, q.tables.len() as u32);
    for t in &q.tables {
        put_u64(out, t.0 as u64);
    }
    put_u32(out, q.joins.len() as u32);
    for j in &q.joins {
        put_column(out, &j.left);
        put_column(out, &j.right);
    }
    put_u32(out, q.predicates.len() as u32);
    for p in &q.predicates {
        put_column(out, &p.column);
        put_expr(out, &p.expr);
    }
}

impl Frame {
    /// Encode the frame payload (tag + body, *without* the length
    /// prefix). Use [`write_frame`] for on-the-wire framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Frame::EstimateRequest {
                request_id,
                tenant,
                budget_micros,
                query,
            } => {
                out.push(TAG_REQUEST);
                put_u64(&mut out, *request_id);
                out.extend_from_slice(&tenant.to_le_bytes());
                put_u64(&mut out, *budget_micros);
                put_query(&mut out, query);
            }
            Frame::EstimateOk {
                request_id,
                value,
                fallback_depth,
                estimator,
            } => {
                out.push(TAG_OK);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, value.to_bits());
                put_u32(&mut out, *fallback_depth);
                put_str(&mut out, estimator);
            }
            Frame::EstimateErr {
                request_id,
                code,
                detail,
            } => {
                out.push(TAG_ERR);
                put_u64(&mut out, *request_id);
                out.push(*code as u8);
                put_str(&mut out, detail);
            }
            Frame::Ping { token } => {
                out.push(TAG_PING);
                put_u64(&mut out, *token);
            }
            Frame::Pong { token } => {
                out.push(TAG_PONG);
                put_u64(&mut out, *token);
            }
        }
        out
    }

    /// Decode one frame from a complete payload (tag + body, without
    /// the length prefix). Rejects trailing bytes.
    ///
    /// # Errors
    /// A typed [`ProtoError`] for any malformed input; never panics.
    pub fn decode(payload: &[u8]) -> Result<Frame, ProtoError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(ProtoError::Oversized {
                declared: payload.len(),
                max: MAX_FRAME_LEN,
            });
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let tag = cur.u8()?;
        let frame = match tag {
            TAG_REQUEST => Frame::EstimateRequest {
                request_id: cur.u64()?,
                tenant: cur.u128()?,
                budget_micros: cur.u64()?,
                query: cur.query()?,
            },
            TAG_OK => Frame::EstimateOk {
                request_id: cur.u64()?,
                value: f64::from_bits(cur.u64()?),
                fallback_depth: cur.u32()?,
                estimator: cur.str("estimator name")?,
            },
            TAG_ERR => Frame::EstimateErr {
                request_id: cur.u64()?,
                code: ErrCode::from_u8(cur.u8()?)?,
                detail: cur.str("error detail")?,
            },
            TAG_PING => Frame::Ping { token: cur.u64()? },
            TAG_PONG => Frame::Pong { token: cur.u64()? },
            t => return Err(ProtoError::UnknownFrameTag(t)),
        };
        if cur.pos != payload.len() {
            return Err(ProtoError::TrailingBytes {
                extra: payload.len() - cur.pos,
            });
        }
        Ok(frame)
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn u128(&mut self) -> Result<u128, ProtoError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// A declared collection count, validated against both the absolute
    /// cap and the bytes actually left (each item needs ≥ `min_item`
    /// bytes) — so a corrupted count can never drive a huge allocation.
    fn count(&mut self, what: &'static str, min_item: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_ITEMS {
            return Err(ProtoError::TooManyItems {
                what,
                count: n,
                max: MAX_ITEMS,
            });
        }
        if n.saturating_mul(min_item) > self.remaining() {
            return Err(ProtoError::Truncated {
                needed: n * min_item,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            return Err(ProtoError::Oversized {
                declared: len,
                max: MAX_STR_LEN,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8 { what })
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.u8()? {
            b'i' => Ok(Value::Int(self.u64()? as i64)),
            b'f' => Ok(Value::Float(f64::from_bits(self.u64()?))),
            b's' => Ok(Value::Str(self.str("string literal")?)),
            t => Err(ProtoError::UnknownTag {
                what: "value",
                tag: t,
            }),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ProtoError> {
        let tag = self.u8()?;
        CmpOp::ALL
            .get(tag as usize)
            .copied()
            .ok_or(ProtoError::UnknownTag {
                what: "comparison operator",
                tag,
            })
    }

    fn expr(&mut self, depth: usize) -> Result<PredicateExpr, ProtoError> {
        if depth > MAX_DEPTH {
            return Err(ProtoError::TooDeep);
        }
        match self.u8()? {
            EXPR_LEAF => {
                let op = self.cmp_op()?;
                let value = self.value()?;
                Ok(PredicateExpr::Leaf(SimplePredicate { op, value }))
            }
            tag @ (EXPR_AND | EXPR_OR) => {
                let n = self.count("expression children", 1)?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(self.expr(depth + 1)?);
                }
                Ok(if tag == EXPR_AND {
                    PredicateExpr::And(children)
                } else {
                    PredicateExpr::Or(children)
                })
            }
            t => Err(ProtoError::UnknownTag {
                what: "expression node",
                tag: t,
            }),
        }
    }

    fn column(&mut self) -> Result<ColumnRef, ProtoError> {
        let table = TableId(self.u64()? as usize);
        let column = ColumnId(self.u64()? as usize);
        Ok(ColumnRef::new(table, column))
    }

    fn query(&mut self) -> Result<Query, ProtoError> {
        let n_tables = self.count("tables", 8)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(TableId(self.u64()? as usize));
        }
        let n_joins = self.count("joins", 32)?;
        let mut joins = Vec::with_capacity(n_joins);
        for _ in 0..n_joins {
            joins.push(JoinPredicate {
                left: self.column()?,
                right: self.column()?,
            });
        }
        let n_preds = self.count("predicates", 17)?;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            predicates.push(CompoundPredicate {
                column: self.column()?,
                expr: self.expr(0)?,
            });
        }
        Ok(Query {
            tables,
            joins,
            predicates,
        })
    }
}

// ---------------------------------------------------------------------------
// On-the-wire framing
// ---------------------------------------------------------------------------

/// A framing-layer read failure: either the transport broke or the
/// bytes were malformed.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying transport failed (includes mid-frame EOF).
    Io(io::Error),
    /// The bytes arrived but did not decode.
    Proto(ProtoError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "transport error: {e}"),
            ReadError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<ProtoError> for ReadError {
    fn from(e: ProtoError) -> Self {
        ReadError::Proto(e)
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Write one length-prefixed frame.
///
/// # Errors
/// Propagates transport errors from the writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = frame.encode();
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed
/// the connection cleanly *at a frame boundary*; EOF mid-frame is a
/// transport error.
///
/// The declared length is validated against [`MAX_FRAME_LEN`] before
/// any allocation, so a hostile 4-byte header cannot cost memory.
///
/// # Errors
/// [`ReadError::Io`] for transport failures, [`ReadError::Proto`] for
/// malformed bytes.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ReadError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled read loop for the header so a clean close (0 bytes
    // read) is distinguishable from a mid-header cut.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ReadError::Proto(ProtoError::Oversized {
            declared: len,
            max: MAX_FRAME_LEN,
        }));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame::decode(&payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::PredicateExpr as E;

    fn sample_query() -> Query {
        Query {
            tables: vec![TableId(0), TableId(3)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(0), ColumnId(1)),
                right: ColumnRef::new(TableId(3), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(2)),
                expr: E::Or(vec![
                    E::leaf(CmpOp::Eq, Value::Int(7)),
                    E::And(vec![
                        E::leaf(CmpOp::Ge, Value::Float(1.5)),
                        E::leaf(CmpOp::Lt, Value::Str("zebra".into())),
                    ]),
                ]),
            }],
        }
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = [
            Frame::EstimateRequest {
                request_id: 42,
                tenant: 0xDEAD_BEEF_DEAD_BEEF_0123,
                budget_micros: 2_000,
                query: sample_query(),
            },
            Frame::EstimateOk {
                request_id: 42,
                value: 1234.5,
                fallback_depth: 2,
                estimator: "postgres".into(),
            },
            Frame::EstimateErr {
                request_id: 43,
                code: ErrCode::QuotaExhausted,
                detail: "tenant over quota".into(),
            },
            Frame::Ping { token: 7 },
            Frame::Pong { token: 7 },
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f, "frame {f:?}");
        }
    }

    #[test]
    fn wire_round_trip_through_a_stream() {
        let f = Frame::Ping { token: 99 };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(f));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn oversized_header_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &bytes[..];
        match read_frame(&mut r) {
            Err(ReadError::Proto(ProtoError::Oversized { max, .. })) => {
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = Frame::Ping { token: 1 }.encode();
        bytes.push(0xFF);
        assert_eq!(
            Frame::decode(&bytes),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn hostile_counts_cannot_allocate() {
        // A request claiming 4096 tables in a 40-byte payload must be
        // refused by the count-vs-remaining check, not by OOM.
        let mut bytes = vec![TAG_REQUEST];
        bytes.extend_from_slice(&0u64.to_le_bytes()); // request_id
        bytes.extend_from_slice(&0u128.to_le_bytes()); // tenant
        bytes.extend_from_slice(&0u64.to_le_bytes()); // budget
        bytes.extend_from_slice(&4096u32.to_le_bytes()); // table count
        match Frame::decode(&bytes) {
            Err(ProtoError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_refused() {
        // AND(AND(AND(...(leaf)))) deeper than MAX_DEPTH.
        let mut expr = E::leaf(CmpOp::Eq, Value::Int(1));
        for _ in 0..(MAX_DEPTH + 2) {
            expr = E::And(vec![expr]);
        }
        let f = Frame::EstimateRequest {
            request_id: 0,
            tenant: 0,
            budget_micros: 0,
            query: Query {
                tables: vec![TableId(0)],
                joins: vec![],
                predicates: vec![CompoundPredicate {
                    column: ColumnRef::new(TableId(0), ColumnId(0)),
                    expr,
                }],
            },
        };
        assert_eq!(Frame::decode(&f.encode()), Err(ProtoError::TooDeep));
    }

    #[test]
    fn float_literals_round_trip_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, -7.25] {
            let f = Frame::EstimateRequest {
                request_id: 1,
                tenant: 1,
                budget_micros: 1,
                query: Query {
                    tables: vec![TableId(0)],
                    joins: vec![],
                    predicates: vec![CompoundPredicate {
                        column: ColumnRef::new(TableId(0), ColumnId(0)),
                        expr: E::leaf(CmpOp::Le, Value::Float(v)),
                    }],
                },
            };
            assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn long_estimator_names_are_truncated_not_refused() {
        let f = Frame::EstimateOk {
            request_id: 1,
            value: 2.0,
            fallback_depth: 0,
            estimator: "x".repeat(MAX_STR_LEN + 100),
        };
        match Frame::decode(&f.encode()).unwrap() {
            Frame::EstimateOk { estimator, .. } => assert_eq!(estimator.len(), MAX_STR_LEN),
            other => panic!("unexpected {other:?}"),
        }
    }
}
