//! Sharded multi-tenant serving: a fleet of [`EstimatorService`]s
//! behind one registry.
//!
//! One `EstimatorService` serves one model stack well, but "millions of
//! users" means many schemas and many tenants, each wanting its own
//! fallback chain, breakers, model slot, and admission bounds. This
//! module provides:
//!
//! - [`ShardKey`] — a 128-bit routing key derived from a tenant name or
//!   a query's sub-schema (reusing the FNV-1a construction of
//!   `qfe-core::fingerprint`), so equal tenants/schemas always route
//!   identically;
//! - [`Shard`] — one tenant's service plus its [`MicroBatcher`] and a
//!   per-shard admission *quota* (in-flight cap) in front of the
//!   service's own queue, so a hot tenant sheds at its own gate instead
//!   of starving the fleet. Quota decisions are conserved:
//!   `routed == admitted + quota_shed`, always;
//! - [`ShardRegistry`] — registration, eviction, and consistent
//!   routing. Exact key matches win; otherwise rendezvous
//!   (highest-random-weight) hashing picks an owner, so evicting one
//!   shard only remaps the keys that shard owned;
//! - fleet observability — [`ShardRegistry::metrics`] folds every
//!   shard's snapshot into one [`MetricsSnapshot`] under
//!   `shard.<name>.` prefixes, next to fleet-level `registry.*`
//!   counters.
//!
//! Shard lifecycle reuses the durability layer: a shard can be built
//! cold from stages, or warm-restarted from its *own* namespace in a
//! checkpoint store directory (one subdirectory per shard, so tenants
//! never read each other's checkpoints).

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use qfe_core::{Deadline, Estimate, Query, SubSchema};
use qfe_obs::MetricsSnapshot;
use qfe_store::{Checkpoint, CheckpointStore, StoreConfig, StoreFs};

use crate::batch::MicroBatcher;
use crate::error::ServeError;
use crate::persist::WarmRestartReport;
use crate::service::{EstimatorService, ServiceConfig};
use crate::slot::{ModelSlot, SharedEstimator};

/// 128-bit FNV-1a — the same construction `qfe-core::fingerprint` uses,
/// applied to routing keys.
fn fnv128(bytes: impl IntoIterator<Item = u8>) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A 128-bit routing key identifying a tenant (or a schema a tenant
/// serves). Keys are derived, never assigned, so every node in a fleet
/// computes the same key from the same tenant independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardKey(pub u128);

impl ShardKey {
    /// Key for a named tenant.
    pub fn for_tenant(name: &str) -> Self {
        ShardKey(fnv128(name.bytes()))
    }

    /// Key for a sub-schema: queries over the same table set share a
    /// key regardless of predicates, join order, or table order
    /// (`SubSchema` is sorted + deduplicated on construction).
    pub fn for_sub_schema(schema: &SubSchema) -> Self {
        ShardKey(fnv128(
            schema
                .tables()
                .iter()
                .flat_map(|t| (t.0 as u64).to_le_bytes()),
        ))
    }

    /// Key for the sub-schema of `query` — the default routing key when
    /// a client doesn't carry an explicit tenant.
    pub fn of_query(query: &Query) -> Self {
        Self::for_sub_schema(&query.sub_schema())
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Failures a shard caller can observe, over and above the service's
/// own [`ServeError`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard's in-flight quota is exhausted: this tenant is using
    /// its full share and the request is shed *at the shard gate*,
    /// before it could occupy fleet capacity.
    QuotaExhausted {
        /// Shard that shed the request.
        shard: String,
        /// The configured in-flight cap.
        quota: usize,
    },
    /// The shard's underlying service failed the request.
    Serve(ServeError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::QuotaExhausted { shard, quota } => {
                write!(f, "shard '{shard}' quota exhausted ({quota} in flight)")
            }
            ShardError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ServeError> for ShardError {
    fn from(e: ServeError) -> Self {
        ShardError::Serve(e)
    }
}

/// Per-shard tuning: the service config plus the fairness quota.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Most requests this shard may have in flight (admitted but not
    /// yet answered) before new arrivals are quota-shed. This is the
    /// fairness mechanism: it bounds one tenant's footprint regardless
    /// of how hot its traffic runs. Clamped to `>= 1`.
    pub quota: usize,
    /// Configuration for the shard's [`EstimatorService`].
    pub service: ServiceConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            quota: 64,
            service: ServiceConfig::default(),
        }
    }
}

/// Monotonic quota-gate counters for one shard. Conservation invariant:
/// `routed == admitted + quota_shed` — every routed request is counted
/// exactly once, either into the shard or away from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests the registry handed to this shard.
    pub routed: u64,
    /// Requests that passed the quota gate into the service.
    pub admitted: u64,
    /// Requests shed at the quota gate.
    pub quota_shed: u64,
    /// Requests currently inside the service (gauge, not monotonic).
    pub in_flight: usize,
    /// The configured in-flight cap.
    pub quota: usize,
}

impl ShardStats {
    /// Whether the quota-gate counters conserve.
    pub fn conserved(&self) -> bool {
        self.routed == self.admitted + self.quota_shed
    }
}

/// One tenant's serving stack: an [`EstimatorService`] with its own
/// fallback chain, breakers, and model slot, fronted by a
/// [`MicroBatcher`] and a fairness quota.
pub struct Shard {
    name: String,
    key: ShardKey,
    service: Arc<EstimatorService>,
    batcher: MicroBatcher,
    quota: usize,
    in_flight: AtomicUsize,
    routed: AtomicU64,
    admitted: AtomicU64,
    quota_shed: AtomicU64,
}

/// Decrements `in_flight` even when the service call panics or errors.
struct QuotaGuard<'a>(&'a AtomicUsize);

impl Drop for QuotaGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Shard {
    /// Build a shard cold from estimator stages (first stage primary,
    /// rest fallbacks — same contract as [`EstimatorService::new`]).
    pub fn new(
        name: impl Into<String>,
        key: ShardKey,
        stages: Vec<SharedEstimator>,
        cfg: ShardConfig,
    ) -> Arc<Self> {
        Self::from_service(
            name,
            key,
            Arc::new(EstimatorService::new(stages, cfg.service)),
            cfg.quota,
        )
    }

    /// Wrap an existing service as a shard (for callers that built the
    /// service themselves, e.g. via `warm_restart`).
    pub fn from_service(
        name: impl Into<String>,
        key: ShardKey,
        service: Arc<EstimatorService>,
        quota: usize,
    ) -> Arc<Self> {
        let batcher = MicroBatcher::new(Arc::clone(&service));
        Arc::new(Shard {
            name: name.into(),
            key,
            service,
            batcher,
            quota: quota.max(1),
            in_flight: AtomicUsize::new(0),
            routed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            quota_shed: AtomicU64::new(0),
        })
    }

    /// Build a shard whose model slot is warm-restarted from this
    /// shard's own namespace under `root`: checkpoints live in
    /// `<root>/<name>`, so one store directory hosts a whole fleet
    /// without tenants reading each other's models.
    ///
    /// # Errors
    /// Only an unreadable store namespace errors; bad checkpoints
    /// degrade to `cold` (typed in the report), same as
    /// [`EstimatorService::warm_restart`].
    #[allow(clippy::too_many_arguments)]
    pub fn warm_restart(
        name: &str,
        key: ShardKey,
        fs: Arc<dyn StoreFs>,
        root: &std::path::Path,
        decode: &dyn Fn(&Checkpoint) -> Option<SharedEstimator>,
        cold: SharedEstimator,
        probe: &[Query],
        fallbacks: Vec<SharedEstimator>,
        cfg: ShardConfig,
    ) -> io::Result<(Arc<Self>, Arc<ModelSlot>, WarmRestartReport)> {
        let store = Arc::new(CheckpointStore::open(
            fs,
            StoreConfig::new(root.join(name)),
        )?);
        let (service, slot, report) =
            EstimatorService::warm_restart(&store, decode, cold, probe, fallbacks, cfg.service)?;
        let shard = Self::from_service(name, key, Arc::new(service), cfg.quota);
        Ok((shard, slot, report))
    }

    /// The shard's display name (also its checkpoint namespace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The routing key this shard owns exactly.
    pub fn key(&self) -> ShardKey {
        self.key
    }

    /// The underlying service (for feedback, adaptation, hot swap).
    pub fn service(&self) -> &Arc<EstimatorService> {
        &self.service
    }

    /// Estimate within `deadline`, passing the quota gate first and the
    /// shard's micro-batcher second. Counts exactly one of
    /// `admitted`/`quota_shed` per call.
    ///
    /// # Errors
    /// [`ShardError::QuotaExhausted`] at the gate, or the service's own
    /// [`ServeError`] wrapped in [`ShardError::Serve`].
    pub fn estimate_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<Estimate, ShardError> {
        self.routed.fetch_add(1, Ordering::AcqRel);
        // Optimistic increment-then-check keeps the gate race-free: two
        // racing arrivals at quota-1 can't both slip under the cap.
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.quota {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.quota_shed.fetch_add(1, Ordering::AcqRel);
            return Err(ShardError::QuotaExhausted {
                shard: self.name.clone(),
                quota: self.quota,
            });
        }
        let _guard = QuotaGuard(&self.in_flight);
        self.admitted.fetch_add(1, Ordering::AcqRel);
        Ok(self.batcher.submit_within(query, deadline)?)
    }

    /// Quota-gate counters (see [`ShardStats::conserved`]).
    pub fn stats(&self) -> ShardStats {
        // The gate bumps `routed` first and exactly one of
        // `admitted`/`quota_shed` after, so a mid-gate request can make
        // a snapshot read routed > admitted + quota_shed transiently;
        // conservation is asserted only at quiescence (tests, bench
        // teardown), where the invariant is exact.
        let routed = self.routed.load(Ordering::Acquire);
        ShardStats {
            routed,
            admitted: self.admitted.load(Ordering::Acquire),
            quota_shed: self.quota_shed.load(Ordering::Acquire),
            in_flight: self.in_flight.load(Ordering::Acquire),
            quota: self.quota,
        }
    }

    /// The shard's full snapshot: its service metrics plus the quota
    /// gate as `routing.*` counters and gauges.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.service.metrics();
        let stats = self.stats();
        snap.merge_counter("routing.routed", stats.routed);
        snap.merge_counter("routing.admitted", stats.admitted);
        snap.merge_counter("routing.quota_shed", stats.quota_shed);
        snap.gauges
            .insert("routing.in_flight".into(), stats.in_flight as u64);
        snap.gauges
            .insert("routing.quota".into(), stats.quota as u64);
        snap
    }
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("name", &self.name)
            .field("key", &self.key)
            .field("quota", &self.quota)
            .finish_non_exhaustive()
    }
}

/// Why a request could not be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The registry is empty — nothing can serve anything.
    NoShards,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoShards => write!(f, "no shards registered"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Why a shard could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// A shard with this key already exists; evict it first. Silent
    /// replacement would strand in-flight requests' counters.
    DuplicateKey {
        /// Name of the shard already holding the key.
        existing: String,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::DuplicateKey { existing } => {
                write!(f, "key already registered to shard '{existing}'")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// The fleet: maps routing keys to shards, with consistent routing and
/// merged observability.
///
/// ## Routing invariants
///
/// 1. A key equal to a registered shard's own key routes to that shard,
///    always (exact match).
/// 2. Any other key routes by rendezvous hashing: every (key, shard)
///    pair gets a deterministic score and the highest score wins. Equal
///    keys therefore route identically for as long as membership is
///    unchanged, and evicting a shard only remaps the keys *that shard*
///    owned — everyone else's routing is untouched.
#[derive(Default)]
pub struct ShardRegistry {
    shards: RwLock<HashMap<u128, Arc<Shard>>>,
    registered_total: AtomicU64,
    evicted_total: AtomicU64,
    exact_routes: AtomicU64,
    rendezvous_routes: AtomicU64,
    unroutable: AtomicU64,
}

impl ShardRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisoned-lock fallback: a panic while holding the registry lock
    /// can only come from a panicking allocator; recovering the data is
    /// still sound because every write is a single insert/remove.
    fn read_shards(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u128, Arc<Shard>>> {
        self.shards.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a shard under its own key.
    ///
    /// # Errors
    /// [`RegisterError::DuplicateKey`] if the key is taken.
    pub fn register(&self, shard: Arc<Shard>) -> Result<(), RegisterError> {
        let mut shards = self.shards.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = shards.get(&shard.key().0) {
            return Err(RegisterError::DuplicateKey {
                existing: existing.name().to_owned(),
            });
        }
        shards.insert(shard.key().0, shard);
        self.registered_total.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Remove and return the shard owning `key`. In-flight requests on
    /// the returned `Arc` drain normally; new routes no longer see it.
    pub fn evict(&self, key: ShardKey) -> Option<Arc<Shard>> {
        let removed = self
            .shards
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key.0);
        if removed.is_some() {
            self.evicted_total.fetch_add(1, Ordering::AcqRel);
        }
        removed
    }

    /// The shard owning exactly `key`, if any (no rendezvous fallback).
    pub fn get(&self, key: ShardKey) -> Option<Arc<Shard>> {
        self.read_shards().get(&key.0).cloned()
    }

    /// Registered shard count.
    pub fn len(&self) -> usize {
        self.read_shards().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consistent routing (see the type-level invariants).
    ///
    /// # Errors
    /// [`RouteError::NoShards`] when the registry is empty.
    pub fn route(&self, key: ShardKey) -> Result<Arc<Shard>, RouteError> {
        let shards = self.read_shards();
        if let Some(s) = shards.get(&key.0) {
            self.exact_routes.fetch_add(1, Ordering::AcqRel);
            return Ok(Arc::clone(s));
        }
        // Rendezvous: score every shard against the key; highest wins.
        // Ties break toward the smaller shard key so the winner is a
        // pure function of (key, membership).
        let winner = shards
            .values()
            .map(|s| (rendezvous_score(key, s.key()), s))
            .max_by(|(sa, a), (sb, b)| sa.cmp(sb).then(b.key().cmp(&a.key())));
        match winner {
            Some((_, s)) => {
                self.rendezvous_routes.fetch_add(1, Ordering::AcqRel);
                Ok(Arc::clone(s))
            }
            None => {
                self.unroutable.fetch_add(1, Ordering::AcqRel);
                Err(RouteError::NoShards)
            }
        }
    }

    /// Route and estimate in one step — the path the TCP front door
    /// takes per request.
    ///
    /// # Errors
    /// Routing, quota, and service failures, each typed.
    pub fn estimate_within(
        &self,
        key: ShardKey,
        query: &Query,
        deadline: Deadline,
    ) -> Result<Estimate, FleetError> {
        let shard = self.route(key).map_err(FleetError::Route)?;
        shard
            .estimate_within(query, deadline)
            .map_err(FleetError::Shard)
    }

    /// Every registered shard, for iteration (stats, teardown checks).
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.read_shards().values().cloned().collect()
    }

    /// One fleet-wide snapshot: `registry.*` counters plus every
    /// shard's metrics under `shard.<name>.`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.merge_counter(
            "registry.registered_total",
            self.registered_total.load(Ordering::Acquire),
        );
        snap.merge_counter(
            "registry.evicted_total",
            self.evicted_total.load(Ordering::Acquire),
        );
        snap.merge_counter(
            "registry.routes.exact",
            self.exact_routes.load(Ordering::Acquire),
        );
        snap.merge_counter(
            "registry.routes.rendezvous",
            self.rendezvous_routes.load(Ordering::Acquire),
        );
        snap.merge_counter(
            "registry.routes.unroutable",
            self.unroutable.load(Ordering::Acquire),
        );
        snap.gauges
            .insert("registry.shards".into(), self.len() as u64);
        for shard in self.shards() {
            snap.merge_prefixed(&format!("shard.{}.", shard.name()), &shard.metrics());
        }
        snap
    }

    /// Whether every shard's quota-gate counters conserve — meaningful
    /// at quiescence (no requests mid-gate).
    pub fn conserved(&self) -> bool {
        self.shards().iter().all(|s| s.stats().conserved())
    }
}

impl fmt::Debug for ShardRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRegistry")
            .field("shards", &self.len())
            .finish_non_exhaustive()
    }
}

/// Deterministic rendezvous score for (request key, shard key).
fn rendezvous_score(key: ShardKey, shard: ShardKey) -> u128 {
    fnv128(key.0.to_le_bytes().into_iter().chain(shard.0.to_le_bytes()))
}

/// The full error surface of a routed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No shard could be selected.
    Route(RouteError),
    /// The selected shard failed the request.
    Shard(ShardError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Route(e) => write!(f, "{e}"),
            FleetError::Shard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::CardinalityEstimator;

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            format!("const({})", self.0)
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    fn shard(name: &str, value: f64, quota: usize) -> Arc<Shard> {
        let cfg = ShardConfig {
            quota,
            service: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        };
        Shard::new(
            name,
            ShardKey::for_tenant(name),
            vec![Arc::new(Constant(value)) as SharedEstimator],
            cfg,
        )
    }

    fn query() -> Query {
        Query {
            tables: vec![qfe_core::TableId(0)],
            joins: vec![],
            predicates: vec![],
        }
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        assert_eq!(ShardKey::for_tenant("a"), ShardKey::for_tenant("a"));
        assert_ne!(ShardKey::for_tenant("a"), ShardKey::for_tenant("b"));
        let s1 = SubSchema::new(vec![qfe_core::TableId(2), qfe_core::TableId(1)]);
        let s2 = SubSchema::new(vec![qfe_core::TableId(1), qfe_core::TableId(2)]);
        // Sorted construction ⇒ table order can't split a tenant.
        assert_eq!(ShardKey::for_sub_schema(&s1), ShardKey::for_sub_schema(&s2));
    }

    #[test]
    fn exact_keys_route_to_their_shard() {
        let reg = ShardRegistry::new();
        let a = shard("a", 10.0, 4);
        let b = shard("b", 20.0, 4);
        reg.register(Arc::clone(&a)).unwrap();
        reg.register(Arc::clone(&b)).unwrap();
        assert_eq!(reg.route(a.key()).unwrap().name(), "a");
        assert_eq!(reg.route(b.key()).unwrap().name(), "b");
    }

    #[test]
    fn rendezvous_is_stable_and_eviction_is_minimal() {
        let reg = ShardRegistry::new();
        for name in ["a", "b", "c", "d"] {
            reg.register(shard(name, 5.0, 4)).unwrap();
        }
        let keys: Vec<ShardKey> = (0..200u64)
            .map(|i| ShardKey::for_tenant(&format!("tenant-{i}")))
            .collect();
        let owners: Vec<String> = keys
            .iter()
            .map(|k| reg.route(*k).unwrap().name().to_owned())
            .collect();
        // Stability: same key, same owner.
        for (k, o) in keys.iter().zip(&owners) {
            assert_eq!(reg.route(*k).unwrap().name(), *o);
        }
        // All shards get some keys (sanity of the hash spread).
        for name in ["a", "b", "c", "d"] {
            assert!(owners.iter().any(|o| o == name), "{name} owns no keys");
        }
        // Minimal disruption: evicting 'c' only remaps c's keys.
        reg.evict(ShardKey::for_tenant("c")).unwrap();
        for (k, old) in keys.iter().zip(&owners) {
            let new = reg.route(*k).unwrap().name().to_owned();
            if old != "c" {
                assert_eq!(&new, old, "non-c key moved on c's eviction");
            } else {
                assert_ne!(new, "c");
            }
        }
    }

    #[test]
    fn duplicate_registration_is_typed() {
        let reg = ShardRegistry::new();
        reg.register(shard("a", 1.0, 4)).unwrap();
        match reg.register(shard("a", 2.0, 4)) {
            Err(RegisterError::DuplicateKey { existing }) => assert_eq!(existing, "a"),
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
    }

    #[test]
    fn empty_registry_is_unroutable() {
        let reg = ShardRegistry::new();
        match reg.route(ShardKey::for_tenant("x")) {
            Err(RouteError::NoShards) => {}
            Ok(s) => panic!("empty registry routed to {}", s.name()),
        }
        assert_eq!(reg.metrics().counter("registry.routes.unroutable"), 1);
    }

    #[test]
    fn quota_gate_conserves_and_sheds() {
        // quota 1 and a service wide enough that the gate, not the
        // service queue, is the binding constraint.
        let s = shard("hot", 3.0, 1);
        let q = query();
        assert!(s.estimate_within(&q, Deadline::unbounded()).is_ok());
        // Sequential calls release the gate each time: no sheds.
        assert!(s.estimate_within(&q, Deadline::unbounded()).is_ok());
        let stats = s.stats();
        assert_eq!(stats.routed, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.quota_shed, 0);
        assert!(stats.conserved());
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn fleet_metrics_prefix_per_shard() {
        let reg = ShardRegistry::new();
        let a = shard("alpha", 2.0, 4);
        reg.register(Arc::clone(&a)).unwrap();
        a.estimate_within(&query(), Deadline::unbounded()).unwrap();
        let snap = reg.metrics();
        assert_eq!(snap.counter("shard.alpha.routing.routed"), 1);
        assert_eq!(snap.counter("shard.alpha.routing.admitted"), 1);
        assert_eq!(snap.gauge("registry.shards"), 1);
        // The shard's own serve.* counters are visible under the prefix.
        assert!(snap.counter_sum_with_prefix("shard.alpha.serve.") > 0);
        assert!(reg.conserved());
    }
}
