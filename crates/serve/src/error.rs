//! Service-level error taxonomy.
//!
//! Stage-level failures (a model erroring, timing out, or tripping its
//! breaker) are [`qfe_core::EstimateError`]s and stay *inside* the
//! service's stage loop — they drive fallback, not the response. What a
//! caller of [`crate::EstimatorService`] can actually see is narrower and
//! typed here: either the request never got capacity ([`ServeError::Overloaded`])
//! or its time budget ran out ([`ServeError::DeadlineExceeded`]). Both
//! carry provenance: *where* in the request lifecycle the failure
//! happened and what the service state looked like, so an operator can
//! tell a queue-sizing problem from a slow-stage problem from a log line.

use std::fmt;
use std::time::Duration;

/// What to do with a new request when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the incoming request; queued requests keep their place.
    /// Favors requests already waiting (FIFO fairness).
    RejectNew,
    /// Shed the oldest queued request to make room for the new one.
    /// Favors fresh requests — the oldest waiter is the most likely to
    /// blow its deadline anyway.
    ShedOldest,
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedPolicy::RejectNew => write!(f, "reject-new"),
            ShedPolicy::ShedOldest => write!(f, "shed-oldest"),
        }
    }
}

/// How an overloaded request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadKind {
    /// Rejected on arrival: the queue was full under
    /// [`ShedPolicy::RejectNew`].
    RejectedAtAdmission,
    /// Admitted to the queue, then evicted by a newer arrival under
    /// [`ShedPolicy::ShedOldest`].
    ShedWhileQueued,
}

/// Failures a service caller can observe. Everything else degrades
/// internally (fallback stages, the floor) and still yields an estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is at capacity and this request was turned away.
    Overloaded {
        /// How the request was turned away (provenance).
        kind: OverloadKind,
        /// The policy in force when it happened.
        policy: ShedPolicy,
        /// Waiting requests at the moment of the decision.
        queue_len: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's budget ran out before any stage produced an answer.
    DeadlineExceeded {
        /// The budget the request arrived with.
        budget: Duration,
        /// Time actually spent before giving up.
        elapsed: Duration,
        /// Stages invoked (not skipped) before expiry. `0` with
        /// `admitted == false` means the budget died in the queue.
        stages_tried: usize,
        /// Whether the request made it past admission.
        admitted: bool,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                kind,
                policy,
                queue_len,
                capacity,
            } => {
                let how = match kind {
                    OverloadKind::RejectedAtAdmission => "rejected at admission",
                    OverloadKind::ShedWhileQueued => "shed while queued",
                };
                write!(
                    f,
                    "overloaded ({how}, policy {policy}, queue {queue_len}/{capacity})"
                )
            }
            ServeError::DeadlineExceeded {
                budget,
                elapsed,
                stages_tried,
                admitted,
            } => write!(
                f,
                "deadline exceeded after {elapsed:?} of a {budget:?} budget \
                 ({stages_tried} stages tried, admitted: {admitted})"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a ground-truth observation was rejected by
/// [`crate::EstimatorService::observe_truth`] before reaching the q-error
/// window or the adaptation feedback loop.
///
/// The underlying [`qfe_core::metrics::q_error`] clamps both sides to
/// ≥ 1, so a zero or negative truth would not error — it would silently
/// turn into an enormous, meaningless q-error and poison both the drift
/// detector and any model retrained on it. This guard exists so garbage
/// is *named and counted* (`obs.truth.rejected`) instead of laundered
/// into signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackError {
    /// The reported truth was NaN or ±∞.
    NonFiniteTruth,
    /// The reported truth was zero or negative — cardinalities are
    /// counts; a non-positive one is an upstream bug, not a small value.
    NonPositiveTruth,
    /// The reported truth was finite but absurdly large (> 1e18, beyond
    /// any real row count) — the signature of an overflowed or corrupted
    /// counter upstream.
    AbsurdTruth,
    /// The paired estimate was NaN or ±∞; the pair is dropped whole so a
    /// broken estimate cannot fabricate a q-error against a valid truth.
    NonFiniteEstimate,
}

impl fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackError::NonFiniteTruth => write!(f, "truth is non-finite"),
            FeedbackError::NonPositiveTruth => write!(f, "truth is zero or negative"),
            FeedbackError::AbsurdTruth => {
                write!(f, "truth exceeds any plausible cardinality (> 1e18)")
            }
            FeedbackError::NonFiniteEstimate => write!(f, "paired estimate is non-finite"),
        }
    }
}

impl std::error::Error for FeedbackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_provenance() {
        let e = ServeError::Overloaded {
            kind: OverloadKind::ShedWhileQueued,
            policy: ShedPolicy::ShedOldest,
            queue_len: 4,
            capacity: 4,
        };
        let s = e.to_string();
        assert!(
            s.contains("shed while queued") && s.contains("shed-oldest"),
            "{s}"
        );
        assert!(s.contains("4/4"), "{s}");

        let e = ServeError::DeadlineExceeded {
            budget: Duration::from_millis(10),
            elapsed: Duration::from_millis(12),
            stages_tried: 2,
            admitted: true,
        };
        assert!(e.to_string().contains("2 stages tried"), "{e}");
    }
}
