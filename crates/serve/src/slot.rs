//! Validated hot model replacement.
//!
//! Retraining happens out-of-band (drift detection, scheduled refresh);
//! the serving path must pick up the new model without a restart — and
//! must *never* pick up a bad one. [`ModelSlot`] is the publication
//! point: a candidate estimator is admitted only after it passes
//! validation on a probe workload (every estimate finite and `>= 1`,
//! no panic), and the switch itself is an atomic `Arc` swap — a request
//! that loaded the old model keeps it alive until the request finishes,
//! so there is no instant at which a half-published model serves.
//!
//! For serialized GBDT models there is a second gate *before* the probe:
//! [`decode_validated`] round-trips the bytes through the checksummed
//! (FNV-1a) format from `qfe-ml`, so a truncated or bit-flipped artifact
//! from a crashed trainer is rejected as [`SwapError::Corrupt`] without
//! ever being constructed.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use qfe_core::error::EstimateError;
use qfe_core::estimator::{CardinalityEstimator, Estimate};
use qfe_core::Query;
use qfe_ml::gbdt::Gbdt;
use qfe_ml::matrix::Matrix;
use qfe_ml::serialize::{gbdt_from_bytes, DecodeError};
use qfe_ml::train::Regressor;
use qfe_obs::Recorder;

/// Why a candidate model was refused publication.
#[derive(Debug, PartialEq)]
pub enum SwapError {
    /// The serialized artifact failed the checksum / structural decode.
    Corrupt(DecodeError),
    /// The candidate mis-answered the probe workload: a typed error, a
    /// non-finite / out-of-protocol value, or a panic on the named query.
    ProbeFailed {
        /// Index into the probe workload of the first failing query.
        query_index: usize,
        /// What the candidate did wrong on that query.
        error: EstimateError,
    },
    /// An empty probe set validates nothing; publication without
    /// validation is exactly the bug this type exists to prevent.
    EmptyProbe,
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Corrupt(e) => write!(f, "candidate model rejected: {e}"),
            SwapError::ProbeFailed { query_index, error } => {
                write!(f, "candidate failed probe query {query_index}: {error}")
            }
            SwapError::EmptyProbe => write!(f, "refusing to publish without a probe workload"),
        }
    }
}

impl std::error::Error for SwapError {}

/// Decode a serialized GBDT and validate it on a probe feature matrix —
/// the full acceptance gate for a model artifact produced elsewhere.
/// Checksum first (any corruption is [`SwapError::Corrupt`]), then finite
/// predictions on the probe ([`SwapError::ProbeFailed`]).
///
/// Decoding rebuilds the compiled inference form (flattened node arrays
/// and quantization table — see `qfe_ml::compiled`) from the enum trees,
/// so a model restored on warm restart serves at compiled speed from its
/// first query; the snapshot format itself carries no compiled state.
pub fn decode_validated(bytes: &[u8], probe: &Matrix) -> Result<Gbdt, SwapError> {
    let model = gbdt_from_bytes(bytes).map_err(SwapError::Corrupt)?;
    debug_assert!(
        model.is_compiled(),
        "decoded GBDT must carry its compiled inference form"
    );
    model
        .validate_probe(probe)
        .map_err(|e| SwapError::ProbeFailed {
            query_index: match e {
                qfe_ml::train::TrainError::NonFinitePrediction { index } => index,
                _ => 0,
            },
            error: EstimateError::Internal {
                estimator: "gbdt-candidate".into(),
                message: e.to_string(),
            },
        })?;
    Ok(model)
}

/// The estimator handle the serving layer passes around: shared,
/// thread-safe, and type-erased.
pub type SharedEstimator = Arc<dyn CardinalityEstimator + Send + Sync>;

/// Durability hook invoked after every successful publication (initial
/// attach excluded): the just-published model and its slot generation.
///
/// Implementations must be non-blocking and infallible from the slot's
/// point of view — the in-memory swap has already happened and stands
/// whatever the persister does. [`crate::persist::AsyncCheckpointer`]
/// implements this by snapshotting the model and handing the bytes to a
/// background writer; the call itself is additionally panic-isolated, so
/// a buggy persister can never take publication down.
pub trait ModelPersister: Send + Sync {
    /// Persist (or schedule persistence of) `model`, published as slot
    /// generation `slot_generation`.
    fn persist(&self, model: &SharedEstimator, slot_generation: u64);
}

/// An atomically swappable estimator slot (see the module docs).
///
/// The slot itself implements [`CardinalityEstimator`], so it drops into
/// a fallback chain or an [`crate::EstimatorService`] stage list like any
/// other estimator; every call estimates against the model that was
/// current when the call started.
pub struct ModelSlot {
    current: RwLock<SharedEstimator>,
    generation: AtomicU64,
    published: AtomicU64,
    rejected: AtomicU64,
    rolled_back: AtomicU64,
    events: RwLock<Option<SlotEvents>>,
    persister: RwLock<Option<Arc<dyn ModelPersister>>>,
}

/// Precomputed metric names + sink for slot lifecycle events. Names are
/// built once in [`ModelSlot::set_recorder`] so the swap path never
/// allocates for metrics.
struct SlotEvents {
    recorder: Arc<dyn Recorder>,
    accepted: String,
    rejected: String,
    rolled_back: String,
    generation: String,
}

impl ModelSlot {
    /// A slot serving `initial`.
    pub fn new(initial: SharedEstimator) -> Self {
        ModelSlot {
            current: RwLock::new(initial),
            generation: AtomicU64::new(0),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rolled_back: AtomicU64::new(0),
            events: RwLock::new(None),
            persister: RwLock::new(None),
        }
    }

    /// Attach the durability hook called after each successful
    /// publication (one persister; a second attach replaces the first).
    /// Persistence is strictly after-the-fact: publication has already
    /// committed in memory when the hook runs, and a failing or
    /// panicking persister changes nothing about what serves.
    pub fn set_persister(&self, persister: Arc<dyn ModelPersister>) {
        match self.persister.write() {
            Ok(mut g) => *g = Some(persister),
            Err(poisoned) => *poisoned.into_inner() = Some(persister),
        }
    }

    /// Route slot lifecycle events to `recorder` under `prefix`:
    /// `{prefix}.swap.accepted`, `{prefix}.swap.rejected`,
    /// `{prefix}.swap.rolled_back` (counters) and `{prefix}.generation`
    /// (gauge, set on every publication). The gauge is also set once
    /// here so a slot that never swaps still reports its generation.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>, prefix: &str) {
        let events = SlotEvents {
            accepted: format!("{prefix}.swap.accepted"),
            rejected: format!("{prefix}.swap.rejected"),
            rolled_back: format!("{prefix}.swap.rolled_back"),
            generation: format!("{prefix}.generation"),
            recorder,
        };
        events
            .recorder
            .set_gauge(&events.generation, self.generation());
        match self.events.write() {
            Ok(mut g) => *g = Some(events),
            Err(poisoned) => *poisoned.into_inner() = Some(events),
        }
    }

    fn emit<F: Fn(&SlotEvents)>(&self, f: F) {
        let guard = match self.events.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(events) = guard.as_ref() {
            f(events);
        }
    }

    fn read(&self) -> SharedEstimator {
        match self.current.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The currently published model. The returned `Arc` pins it: a
    /// request keeps estimating against the model it loaded even if a
    /// swap lands mid-request.
    pub fn load(&self) -> SharedEstimator {
        self.read()
    }

    /// Monotone publication counter; bumps on every successful swap.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// `(published, rejected)` swap attempts so far. Publications made by
    /// [`try_rollback`](ModelSlot::try_rollback) count in `published`.
    pub fn swap_counts(&self) -> (u64, u64) {
        (
            self.published.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }

    /// Publications that were rollbacks to a previously pinned model.
    pub fn rollback_count(&self) -> u64 {
        self.rolled_back.load(Ordering::Relaxed)
    }

    /// Validate `candidate` on `probe` and, if it passes, publish it
    /// atomically. On failure the slot keeps serving the current model.
    ///
    /// Validation requires every probe query to produce a finite estimate
    /// `>= 1`, without error and without panicking. Returns the new
    /// generation on success.
    pub fn try_publish(
        &self,
        candidate: SharedEstimator,
        probe: &[Query],
    ) -> Result<u64, SwapError> {
        match Self::validate(&candidate, probe) {
            Ok(()) => {
                let published = SharedEstimator::clone(&candidate);
                match self.current.write() {
                    Ok(mut g) => *g = candidate,
                    Err(poisoned) => *poisoned.into_inner() = candidate,
                }
                self.published.fetch_add(1, Ordering::Relaxed);
                let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
                self.emit(|ev| {
                    ev.recorder.incr(&ev.accepted);
                    ev.recorder.set_gauge(&ev.generation, generation);
                });
                let persister = {
                    let guard = match self.persister.read() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.as_ref().map(Arc::clone)
                };
                if let Some(p) = persister {
                    // The swap is already committed; a persister panic is
                    // contained and cannot undo or block it.
                    let _ = catch_unwind(AssertUnwindSafe(|| p.persist(&published, generation)));
                }
                Ok(generation)
            }
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.emit(|ev| ev.recorder.incr(&ev.rejected));
                Err(e)
            }
        }
    }

    /// Re-publish a previously pinned model — the rollback half of the
    /// probation protocol. The pinned model goes through the *same* probe
    /// gate as any candidate (a model that was healthy a generation ago
    /// is not automatically healthy now), and the publication bumps the
    /// generation forward: rollback is a new generation serving an old
    /// model, never a rewind of the counter. Counted separately in
    /// [`rollback_count`](ModelSlot::rollback_count) and the
    /// `{prefix}.swap.rolled_back` metric.
    pub fn try_rollback(&self, pinned: SharedEstimator, probe: &[Query]) -> Result<u64, SwapError> {
        let generation = self.try_publish(pinned, probe)?;
        self.rolled_back.fetch_add(1, Ordering::Relaxed);
        self.emit(|ev| ev.recorder.incr(&ev.rolled_back));
        Ok(generation)
    }

    fn validate(candidate: &SharedEstimator, probe: &[Query]) -> Result<(), SwapError> {
        if probe.is_empty() {
            return Err(SwapError::EmptyProbe);
        }
        for (query_index, q) in probe.iter().enumerate() {
            let outcome = catch_unwind(AssertUnwindSafe(|| candidate.try_estimate(q)));
            match outcome {
                Ok(Ok(est)) if est.value.is_finite() && est.value >= 1.0 => {}
                Ok(Ok(est)) => {
                    return Err(SwapError::ProbeFailed {
                        query_index,
                        error: EstimateError::NonFinite {
                            estimator: candidate.name(),
                            value: est.value,
                        },
                    })
                }
                Ok(Err(error)) => return Err(SwapError::ProbeFailed { query_index, error }),
                Err(_) => {
                    return Err(SwapError::ProbeFailed {
                        query_index,
                        error: EstimateError::Internal {
                            estimator: candidate.name(),
                            message: "candidate panicked during probe validation".into(),
                        },
                    })
                }
            }
        }
        Ok(())
    }
}

/// The slot is the canonical generation producer for cross-call estimate
/// caches: every accepted hot swap bumps the generation, so a cache
/// keyed on it (`qfe-exec`'s `EstimateCache`) drops all estimates the
/// previous model produced — the invalidation half of the adaptation
/// loop's atomic-swap contract.
impl qfe_core::estimator::GenerationSource for ModelSlot {
    fn generation(&self) -> u64 {
        ModelSlot::generation(self)
    }
}

impl CardinalityEstimator for ModelSlot {
    fn name(&self) -> String {
        format!("slot({})", self.read().name())
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.read().estimate(query)
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        self.read().try_estimate(query)
    }

    /// A single `read()` pins one published generation for the whole
    /// batch: a hot swap landing mid-batch cannot split the batch across
    /// two models.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        self.read().estimate_batch(queries)
    }

    fn memory_bytes(&self) -> usize {
        self.read().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::TableId;
    use qfe_ml::gbdt::GbdtConfig;
    use qfe_ml::serialize::gbdt_to_bytes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    struct Panicky;
    impl CardinalityEstimator for Panicky {
        fn name(&self) -> String {
            "panicky".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            panic!("bad model")
        }
    }

    fn probe() -> Vec<Query> {
        (0..4)
            .map(|_| Query::single_table(TableId(0), vec![]))
            .collect()
    }

    #[test]
    fn publishes_a_valid_candidate_and_bumps_generation() {
        let slot = ModelSlot::new(Arc::new(Constant(10.0)));
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.estimate(&probe()[0]), 10.0);
        let g = slot
            .try_publish(Arc::new(Constant(20.0)), &probe())
            .unwrap();
        assert_eq!(g, 1);
        assert_eq!(slot.estimate(&probe()[0]), 20.0);
        assert_eq!(slot.swap_counts(), (1, 0));
    }

    #[test]
    fn rejects_nan_sub_one_panicking_and_unvalidated_candidates() {
        let slot = ModelSlot::new(Arc::new(Constant(10.0)));
        let nan = slot.try_publish(Arc::new(Constant(f64::NAN)), &probe());
        assert!(matches!(nan, Err(SwapError::ProbeFailed { .. })), "{nan:?}");
        let low = slot.try_publish(Arc::new(Constant(0.5)), &probe());
        assert!(matches!(low, Err(SwapError::ProbeFailed { .. })), "{low:?}");
        let panicky = slot.try_publish(Arc::new(Panicky), &probe());
        assert!(
            matches!(panicky, Err(SwapError::ProbeFailed { query_index: 0, .. })),
            "{panicky:?}"
        );
        let empty = slot.try_publish(Arc::new(Constant(5.0)), &[]);
        assert_eq!(empty, Err(SwapError::EmptyProbe));
        // Every rejection left the old model serving.
        assert_eq!(slot.estimate(&probe()[0]), 10.0);
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.swap_counts(), (0, 4));
    }

    #[test]
    fn loaded_model_is_pinned_across_a_swap() {
        let slot = ModelSlot::new(Arc::new(Constant(10.0)));
        let pinned = slot.load();
        slot.try_publish(Arc::new(Constant(20.0)), &probe())
            .unwrap();
        assert_eq!(pinned.estimate(&probe()[0]), 10.0, "old Arc still alive");
        assert_eq!(slot.estimate(&probe()[0]), 20.0, "slot serves the new one");
    }

    #[test]
    fn rollback_republishes_the_pinned_model_as_a_new_generation() {
        let slot = ModelSlot::new(Arc::new(Constant(10.0)));
        let pinned = slot.load();
        slot.try_publish(Arc::new(Constant(20.0)), &probe())
            .unwrap();
        let g = slot.try_rollback(pinned, &probe()).unwrap();
        assert_eq!(g, 2, "rollback moves the generation forward, never back");
        assert_eq!(slot.estimate(&probe()[0]), 10.0, "old model serves again");
        assert_eq!(slot.rollback_count(), 1);
        assert_eq!(slot.swap_counts(), (2, 0), "rollback is also a publication");
        // A rollback to a now-broken model is refused like any candidate.
        let bad = slot.try_rollback(Arc::new(Panicky), &probe());
        assert!(matches!(bad, Err(SwapError::ProbeFailed { .. })), "{bad:?}");
        assert_eq!(slot.rollback_count(), 1);
        assert_eq!(slot.estimate(&probe()[0]), 10.0);
    }

    #[test]
    fn recorder_sees_swap_lifecycle_events() {
        use qfe_obs::MetricsRecorder;
        let slot = ModelSlot::new(Arc::new(Constant(10.0)));
        let rec = Arc::new(MetricsRecorder::new());
        slot.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, "slot");
        assert_eq!(rec.gauge("slot.generation"), 0, "gauge primed on attach");

        let pinned = slot.load();
        slot.try_publish(Arc::new(Constant(20.0)), &probe())
            .unwrap();
        let _ = slot.try_publish(Arc::new(Constant(f64::NAN)), &probe());
        slot.try_rollback(pinned, &probe()).unwrap();

        assert_eq!(rec.counter("slot.swap.accepted"), 2);
        assert_eq!(rec.counter("slot.swap.rejected"), 1);
        assert_eq!(rec.counter("slot.swap.rolled_back"), 1);
        assert_eq!(rec.gauge("slot.generation"), 2);
    }

    #[test]
    fn decode_validated_accepts_round_trip_and_rejects_bit_flips() {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f32>> = (0..64).map(|_| vec![rng.gen::<f32>()]).collect();
        let y: Vec<f32> = rows.iter().map(|r| r[0] * 2.0 + 1.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 5,
            ..GbdtConfig::default()
        });
        gb.try_fit(&x, &y).unwrap();
        let bytes = gbdt_to_bytes(&gb);

        let ok = decode_validated(&bytes, &x).unwrap();
        assert_eq!(ok.predict_batch(&x), gb.predict_batch(&x));
        // The decode path must hand back a model that is already in its
        // compiled form — warm restarts serve at compiled speed.
        assert!(ok.is_compiled());

        // Flip one payload bit: the checksum gate must reject it.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            decode_validated(&corrupt, &x),
            Err(SwapError::Corrupt(DecodeError::ChecksumMismatch))
        ));
        // Truncation is also a typed rejection.
        assert!(matches!(
            decode_validated(&bytes[..bytes.len() - 3], &x),
            Err(SwapError::Corrupt(_))
        ));
    }
}
