//! Durability wiring between the serving layer and the checkpoint store.
//!
//! Two directions:
//!
//! - **Going down** ([`AsyncCheckpointer`]): every model the
//!   [`ModelSlot`] publishes — the initial model, adapt-accepted
//!   candidates, rollbacks — is snapshotted and handed to a background
//!   writer thread that runs the store's atomic save protocol. The
//!   serving and swap paths never wait on disk: the hook snapshots
//!   in-memory bytes and enqueues; a full queue drops the checkpoint
//!   (counted, `persist.dropped`) rather than blocking, and a failed
//!   save (counted by the store as `persist.write_failed`) changes
//!   nothing about what serves — the in-memory swap stands.
//!
//! - **Coming back up** ([`EstimatorService::warm_restart`]): recovery
//!   scans the store, decodes the newest valid checkpoint through a
//!   caller-supplied rebuild function, probe-validates it through the
//!   slot's normal publication gate, and serves it — falling back to the
//!   supplied cold-start estimator at every failure point, each with a
//!   typed [`RestoreOutcome`] and a counter.
//!
//! Every `persist.*` counter — the checkpointer's, the store's, and
//! recovery's — lands in the service's [`qfe_obs::MetricsSnapshot`], so
//! one artifact shows the whole durability loop.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{SystemTime, UNIX_EPOCH};

use qfe_core::Query;
use qfe_obs::{NoopRecorder, Recorder};
use qfe_store::{Checkpoint, CheckpointMeta, CheckpointStore, RecoveryReport};

use crate::service::{EstimatorService, ServiceConfig};
use crate::slot::{ModelPersister, ModelSlot, SharedEstimator};

/// One queued persistence request.
struct Job {
    meta: CheckpointMeta,
    model: Vec<u8>,
}

/// Background checkpoint writer (see the module docs).
///
/// Keeps one worker thread and a bounded queue. At quiescence (after
/// [`shutdown`](AsyncCheckpointer::shutdown)) the counters conserve:
/// `persist.enqueued == persist.written + persist.write_failed`, with
/// overflow accounted separately under `persist.dropped` and
/// snapshot-less models under `persist.skipped`.
pub struct AsyncCheckpointer {
    store: Arc<CheckpointStore>,
    tx: Mutex<Option<mpsc::SyncSender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    recorder: Mutex<Arc<dyn Recorder>>,
    enqueued: AtomicU64,
    dropped: AtomicU64,
    skipped: AtomicU64,
}

impl AsyncCheckpointer {
    /// Spawn the writer over `store` with room for `queue_depth`
    /// in-flight checkpoints (clamped to `>= 1`).
    pub fn new(store: Arc<CheckpointStore>, queue_depth: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let worker_store = Arc::clone(&store);
        let worker = std::thread::Builder::new()
            .name("qfe-persist".into())
            .spawn(move || {
                // Save outcomes are counted by the store itself
                // (persist.written / persist.write_failed); nothing to do
                // with the result here — serving already moved on.
                for job in rx {
                    let _ = worker_store.save(&job.meta, job.model);
                }
            })
            .ok();
        AsyncCheckpointer {
            store,
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(worker),
            recorder: Mutex::new(Arc::new(NoopRecorder)),
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        }
    }

    /// Route the checkpointer's own counters (`persist.enqueued`,
    /// `persist.dropped`, `persist.skipped`) into `recorder`, and the
    /// underlying store's `persist.*` counters with it.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        self.store.set_recorder(Arc::clone(&recorder));
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = recorder;
    }

    fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The store this checkpointer writes into.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// `(enqueued, dropped, skipped)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.enqueued.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.skipped.load(Ordering::Relaxed),
        )
    }

    /// Queue `model` bytes for persistence. Never blocks: a full queue
    /// drops the request and counts it.
    pub fn enqueue(&self, meta: CheckpointMeta, model: Vec<u8>) {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            // Already shut down: equivalent to a full queue.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.recorder().incr("persist.dropped");
            return;
        };
        match tx.try_send(Job { meta, model }) {
            Ok(()) => {
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                self.recorder().incr("persist.enqueued");
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.recorder().incr("persist.dropped");
            }
        }
    }

    /// Drain the queue and stop the worker. After this returns, every
    /// enqueued checkpoint has been saved or counted as failed, and the
    /// conservation identity in the type docs holds. Further `enqueue`
    /// calls count as dropped.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        drop(tx); // closes the channel; the worker drains and exits
        let worker = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = worker {
            let _ = handle.join();
        }
    }
}

impl Drop for AsyncCheckpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ModelPersister for AsyncCheckpointer {
    /// Snapshot the published model and queue it. A model with no
    /// durable form ([`snapshot_bytes`] returning `None` — statistics-
    /// only estimators, untrained models) is skipped and counted, never
    /// an error.
    ///
    /// [`snapshot_bytes`]: qfe_core::CardinalityEstimator::snapshot_bytes
    fn persist(&self, model: &SharedEstimator, slot_generation: u64) {
        match model.snapshot_bytes() {
            None => {
                self.skipped.fetch_add(1, Ordering::Relaxed);
                self.recorder().incr("persist.skipped");
            }
            Some(bytes) => {
                let meta = CheckpointMeta {
                    kind: model.name(),
                    qft: String::new(),
                    trained_at_unix_s: SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_secs())
                        .unwrap_or(0),
                    sample_count: 0,
                    note: format!("slot generation {slot_generation}"),
                };
                self.enqueue(meta, bytes);
            }
        }
    }
}

/// How [`EstimatorService::warm_restart`] arrived at the model it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// The newest valid checkpoint was decoded, passed the probe gate,
    /// and serves (store generation inside).
    Restored(u64),
    /// The store held no valid checkpoint; the cold estimator serves.
    NoCheckpoint,
    /// A valid checkpoint existed but the rebuild function refused it
    /// (e.g. featurizer mismatch after a config change); cold start.
    DecodeRejected,
    /// The rebuilt model failed probe validation; cold start.
    ProbeRejected,
}

/// Everything a warm restart did, for logs and assertions.
#[derive(Debug)]
pub struct WarmRestartReport {
    /// What the recovery scan found, bucket by bucket.
    pub recovery: RecoveryReport,
    /// Which path ended up serving.
    pub outcome: RestoreOutcome,
}

impl EstimatorService {
    /// Route `ckpt`'s `persist.*` counters — and those of the store it
    /// writes into — into this service's metrics, so saves, drops, GC,
    /// and retries show up in [`metrics`](EstimatorService::metrics)
    /// next to the serving counters.
    pub fn attach_persistence(&self, ckpt: &AsyncCheckpointer) {
        ckpt.set_recorder(Arc::clone(self.recorder()) as Arc<dyn Recorder>);
    }

    /// Build a service whose first stage is a [`ModelSlot`] warm-started
    /// from `store`: the newest valid checkpoint is rebuilt via `decode`
    /// and published through the slot's normal probe gate; any failure
    /// along the way degrades to `cold` (typed in the report, counted
    /// under `persist.*`). `fallbacks` become the remaining stages.
    ///
    /// The store's recorder is pointed at the service's, so subsequent
    /// `persist.*` activity (saves, GC, retries) shows up in
    /// [`metrics`](EstimatorService::metrics) alongside the recovery
    /// counters this constructor merges in.
    ///
    /// # Errors
    /// Only an unreadable store directory errors out — individual bad
    /// checkpoints never do (they quarantine and fall through).
    pub fn warm_restart(
        store: &Arc<CheckpointStore>,
        decode: &dyn Fn(&Checkpoint) -> Option<SharedEstimator>,
        cold: SharedEstimator,
        probe: &[Query],
        fallbacks: Vec<SharedEstimator>,
        cfg: ServiceConfig,
    ) -> io::Result<(Self, Arc<ModelSlot>, WarmRestartReport)> {
        let slot = Arc::new(ModelSlot::new(cold));
        let recovery = store.recover()?;
        let outcome = match &recovery.latest {
            None => RestoreOutcome::NoCheckpoint,
            Some(ck) => match decode(ck) {
                None => RestoreOutcome::DecodeRejected,
                Some(est) => match slot.try_publish(est, probe) {
                    Ok(_) => RestoreOutcome::Restored(ck.generation),
                    Err(_) => RestoreOutcome::ProbeRejected,
                },
            },
        };

        let mut stages: Vec<SharedEstimator> = Vec::with_capacity(1 + fallbacks.len());
        stages.push(Arc::clone(&slot) as SharedEstimator);
        stages.extend(fallbacks);
        let service = EstimatorService::new(stages, cfg);

        // Late recorder wiring: recovery above counted into the store's
        // previous (noop) recorder, so merge the report's buckets here —
        // no double counting — then point the store at the service for
        // everything that happens from now on.
        let rec = Arc::clone(service.recorder()) as Arc<dyn Recorder>;
        rec.add("persist.quarantined", recovery.quarantined as u64);
        rec.add("persist.skipped_version", recovery.skipped_version as u64);
        rec.add("persist.tmp_debris", recovery.tmp_debris as u64);
        rec.add("persist.unreadable", recovery.unreadable as u64);
        match outcome {
            RestoreOutcome::Restored(generation) => {
                rec.incr("persist.restored");
                rec.set_gauge("persist.restored_generation", generation);
            }
            RestoreOutcome::NoCheckpoint => {}
            RestoreOutcome::DecodeRejected | RestoreOutcome::ProbeRejected => {
                rec.incr("persist.restore_rejected");
            }
        }
        slot.set_recorder(Arc::clone(&rec), "slot");
        store.set_recorder(rec);

        Ok((service, slot, WarmRestartReport { recovery, outcome }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::estimator::CardinalityEstimator;
    use qfe_core::TableId;
    use qfe_store::{ChaosFs, Fault, FaultPlan, MemFs, StoreConfig, StoreFs};

    /// A constant estimator whose snapshot is its value's bits — enough
    /// to prove the persistence loop without training a real model.
    struct Snappable(f64);
    impl CardinalityEstimator for Snappable {
        fn name(&self) -> String {
            "snappable".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
        fn snapshot_bytes(&self) -> Option<Vec<u8>> {
            Some(self.0.to_le_bytes().to_vec())
        }
    }

    /// A constant estimator with no durable form.
    struct Ephemeral(f64);
    impl CardinalityEstimator for Ephemeral {
        fn name(&self) -> String {
            "ephemeral".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    fn decode_snappable(ck: &Checkpoint) -> Option<SharedEstimator> {
        let bytes: [u8; 8] = ck.model.as_slice().try_into().ok()?;
        Some(Arc::new(Snappable(f64::from_le_bytes(bytes))))
    }

    fn probe() -> Vec<Query> {
        (0..3)
            .map(|_| Query::single_table(TableId(0), vec![]))
            .collect()
    }

    fn mem_store(mem: &Arc<MemFs>) -> Arc<CheckpointStore> {
        let mut store = CheckpointStore::open(
            Arc::clone(mem) as Arc<dyn StoreFs>,
            StoreConfig::new("/store"),
        )
        .unwrap();
        store.set_sleeper(Arc::new(|_| {}));
        Arc::new(store)
    }

    fn q() -> Query {
        Query::single_table(TableId(0), vec![])
    }

    #[test]
    fn accepted_swap_is_checkpointed_asynchronously() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let ckpt = Arc::new(AsyncCheckpointer::new(Arc::clone(&store), 8));
        let slot = ModelSlot::new(Arc::new(Ephemeral(1.0)));
        slot.set_persister(Arc::clone(&ckpt) as Arc<dyn ModelPersister>);

        slot.try_publish(Arc::new(Snappable(42.0)), &probe())
            .unwrap();
        ckpt.shutdown(); // quiesce

        assert_eq!(ckpt.stats(), (1, 0, 0));
        let report = store.recover().unwrap();
        let ck = report.latest.expect("swap persisted");
        assert_eq!(ck.model, 42.0f64.to_le_bytes().to_vec());
        assert_eq!(ck.kind, "snappable");
        assert_eq!(ck.note, "slot generation 1");
    }

    #[test]
    fn snapshotless_model_is_skipped_and_counted() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let ckpt = Arc::new(AsyncCheckpointer::new(Arc::clone(&store), 8));
        let slot = ModelSlot::new(Arc::new(Ephemeral(1.0)));
        slot.set_persister(Arc::clone(&ckpt) as Arc<dyn ModelPersister>);

        slot.try_publish(Arc::new(Ephemeral(5.0)), &probe())
            .unwrap();
        ckpt.shutdown();

        assert_eq!(ckpt.stats(), (0, 0, 1), "no snapshot → skipped, not error");
        assert!(store.recover().unwrap().latest.is_none());
        assert_eq!(slot.estimate(&q()), 5.0, "swap stands regardless");
    }

    #[test]
    fn failed_persist_never_undoes_the_swap() {
        let mem = Arc::new(MemFs::new());
        let chaos = Arc::new(ChaosFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            FaultPlan::new(),
        ));
        let mut inner = CheckpointStore::open(
            Arc::clone(&chaos) as Arc<dyn StoreFs>,
            StoreConfig::new("/store"),
        )
        .unwrap();
        inner.set_sleeper(Arc::new(|_| {}));
        let store = Arc::new(inner);
        let rec = Arc::new(qfe_obs::MetricsRecorder::new());
        store.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        // Every fs op from now on dies.
        chaos.plant(chaos.ops_seen(), Fault::CrashPoint);

        let ckpt = Arc::new(AsyncCheckpointer::new(Arc::clone(&store), 8));
        let slot = ModelSlot::new(Arc::new(Ephemeral(1.0)));
        slot.set_persister(Arc::clone(&ckpt) as Arc<dyn ModelPersister>);

        slot.try_publish(Arc::new(Snappable(9.0)), &probe())
            .unwrap();
        ckpt.shutdown();

        assert_eq!(slot.estimate(&q()), 9.0, "in-memory swap stands");
        assert_eq!(slot.generation(), 1);
        assert_eq!(rec.counter("persist.write_failed"), 1);
        assert_eq!(rec.counter("persist.written"), 0);
    }

    /// A [`StoreFs`] whose writes block until the test opens a gate —
    /// makes "the worker is mid-save" a deterministic state.
    struct GatedFs {
        inner: Arc<MemFs>,
        gate: Mutex<bool>,
        cv: std::sync::Condvar,
    }
    impl GatedFs {
        fn new(inner: Arc<MemFs>) -> Self {
            GatedFs {
                inner,
                gate: Mutex::new(false),
                cv: std::sync::Condvar::new(),
            }
        }
        fn open_gate(&self) {
            *self.gate.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_all();
        }
        fn wait_open(&self) {
            let mut open = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            while !*open {
                open = self.cv.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
    impl StoreFs for GatedFs {
        fn read(&self, p: &std::path::Path) -> std::io::Result<Vec<u8>> {
            self.inner.read(p)
        }
        fn write_all(&self, p: &std::path::Path, b: &[u8]) -> std::io::Result<()> {
            self.wait_open();
            self.inner.write_all(p, b)
        }
        fn sync_file(&self, p: &std::path::Path) -> std::io::Result<()> {
            self.inner.sync_file(p)
        }
        fn rename(&self, f: &std::path::Path, t: &std::path::Path) -> std::io::Result<()> {
            self.inner.rename(f, t)
        }
        fn sync_dir(&self, p: &std::path::Path) -> std::io::Result<()> {
            self.inner.sync_dir(p)
        }
        fn list(&self, p: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
            self.inner.list(p)
        }
        fn create_dir_all(&self, p: &std::path::Path) -> std::io::Result<()> {
            self.inner.create_dir_all(p)
        }
        fn remove(&self, p: &std::path::Path) -> std::io::Result<()> {
            self.inner.remove(p)
        }
        fn exists(&self, p: &std::path::Path) -> bool {
            self.inner.exists(p)
        }
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let mem = Arc::new(MemFs::new());
        // Open store over the raw MemFs first so open()'s own fs calls
        // don't hit the gate, then rebuild it over the gated view.
        mem.create_dir_all(std::path::Path::new("/store")).unwrap();
        let gated = Arc::new(GatedFs::new(Arc::clone(&mem)));
        let mut inner = CheckpointStore::open(
            Arc::clone(&gated) as Arc<dyn StoreFs>,
            StoreConfig::new("/store"),
        )
        .unwrap();
        inner.set_sleeper(Arc::new(|_| {}));
        let store = Arc::new(inner);

        let ckpt = AsyncCheckpointer::new(Arc::clone(&store), 1);
        // Job 1 → worker picks it up and blocks in write_all.
        // Job 2 → sits in the depth-1 queue.
        // Job 3 → queue full: dropped, and enqueue returns immediately.
        ckpt.enqueue(CheckpointMeta::default(), vec![1]);
        // Wait until the worker has dequeued job 1 (queue has room again).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            ckpt.enqueue(CheckpointMeta::default(), vec![2]);
            let (enq, _, _) = ckpt.stats();
            if enq == 2 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "worker never started");
            std::thread::yield_now();
        }
        let before = std::time::Instant::now();
        ckpt.enqueue(CheckpointMeta::default(), vec![3]);
        assert!(
            before.elapsed() < std::time::Duration::from_secs(1),
            "enqueue must not block on a full queue"
        );
        let (enqueued, dropped, skipped) = ckpt.stats();
        assert_eq!((enqueued, skipped), (2, 0));
        assert!(dropped >= 1, "overflow counted, not silently lost");

        gated.open_gate();
        ckpt.shutdown();
        // Conservation at quiescence: both enqueued jobs were written.
        let report = store.recover().unwrap();
        assert_eq!(report.valid, 2);
        assert_eq!(report.quarantined, 0);
        assert!(report.latest.is_some());
    }

    #[test]
    fn enqueue_after_shutdown_counts_as_dropped() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let ckpt = AsyncCheckpointer::new(store, 4);
        ckpt.shutdown();
        ckpt.enqueue(CheckpointMeta::default(), vec![1]);
        assert_eq!(ckpt.stats(), (0, 1, 0));
    }

    #[test]
    fn warm_restart_serves_recovered_model() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store
            .save(
                &CheckpointMeta {
                    note: "adapted".into(),
                    ..CheckpointMeta::default()
                },
                77.0f64.to_le_bytes().to_vec(),
            )
            .unwrap();
        mem.crash(); // simulate process death after the durable save

        let store2 = mem_store(&mem);
        let (service, slot, report) = EstimatorService::warm_restart(
            &store2,
            &decode_snappable,
            Arc::new(Ephemeral(1.0)),
            &probe(),
            vec![],
            ServiceConfig::default(),
        )
        .unwrap();
        assert!(matches!(report.outcome, RestoreOutcome::Restored(_)));
        assert_eq!(service.estimate(&q()).unwrap().value, 77.0);
        assert_eq!(slot.generation(), 1, "restore is a normal publication");
        let m = service.metrics();
        assert_eq!(m.counter("persist.restored"), 1);
        assert_eq!(m.gauge("persist.restored_generation"), 0);
        assert_eq!(m.gauge("slot.generation"), 1);
    }

    #[test]
    fn warm_restart_with_empty_store_is_a_cold_start() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let (service, _slot, report) = EstimatorService::warm_restart(
            &store,
            &decode_snappable,
            Arc::new(Ephemeral(3.0)),
            &probe(),
            vec![],
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RestoreOutcome::NoCheckpoint);
        assert_eq!(service.estimate(&q()).unwrap().value, 3.0);
        assert_eq!(service.metrics().counter("persist.restored"), 0);
    }

    #[test]
    fn warm_restart_decode_rejection_degrades_to_cold() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store
            .save(&CheckpointMeta::default(), vec![1, 2, 3]) // not 8 bytes
            .unwrap();
        let (service, _slot, report) = EstimatorService::warm_restart(
            &store,
            &decode_snappable,
            Arc::new(Ephemeral(3.0)),
            &probe(),
            vec![],
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RestoreOutcome::DecodeRejected);
        assert_eq!(service.estimate(&q()).unwrap().value, 3.0);
        assert_eq!(service.metrics().counter("persist.restore_rejected"), 1);
    }

    #[test]
    fn warm_restart_probe_rejection_degrades_to_cold() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store
            .save(
                &CheckpointMeta::default(),
                f64::NAN.to_le_bytes().to_vec(), // rebuilds, then fails probe
            )
            .unwrap();
        let (service, slot, report) = EstimatorService::warm_restart(
            &store,
            &decode_snappable,
            Arc::new(Ephemeral(3.0)),
            &probe(),
            vec![],
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcome, RestoreOutcome::ProbeRejected);
        assert_eq!(slot.generation(), 0, "rejected candidate never published");
        assert_eq!(service.estimate(&q()).unwrap().value, 3.0);
        assert_eq!(service.metrics().counter("persist.restore_rejected"), 1);
    }

    #[test]
    fn quarantined_recovery_counters_reach_service_metrics() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store
            .save(&CheckpointMeta::default(), 5.0f64.to_le_bytes().to_vec())
            .unwrap();
        // Plant a corrupt sibling.
        mem.write_all(
            &std::path::PathBuf::from("/store/ckpt-00000000000000aa.qfc"),
            b"garbage",
        )
        .unwrap();
        let (service, _slot, report) = EstimatorService::warm_restart(
            &store,
            &decode_snappable,
            Arc::new(Ephemeral(1.0)),
            &probe(),
            vec![],
            ServiceConfig::default(),
        )
        .unwrap();
        assert!(matches!(report.outcome, RestoreOutcome::Restored(_)));
        assert!(report.recovery.conserved());
        let m = service.metrics();
        assert_eq!(m.counter("persist.quarantined"), 1);
        // Post-restart store activity lands in the same snapshot.
        store
            .save(&CheckpointMeta::default(), 6.0f64.to_le_bytes().to_vec())
            .unwrap();
        assert_eq!(service.metrics().counter("persist.written"), 1);
    }
}
