//! `qfe-serve` — deadline-aware, fault-isolated serving front end.
//!
//! The estimator crates answer "how do we estimate a cardinality?"; this
//! crate answers "how do we keep answering when things go wrong, under
//! concurrency, on a clock?". The entry point is
//! [`EstimatorService`], which layers, outermost
//! first:
//!
//! - **admission + load shedding** ([`admission`], [`error::ShedPolicy`]) —
//!   bounded concurrency and a bounded queue; overload becomes a typed
//!   [`ServeError::Overloaded`], not unbounded latency;
//! - **deadlines** ([`qfe_core::Deadline`]) — the per-request budget rides
//!   through the stage loop; slow stages are abandoned and the remaining
//!   budget flows to the fallbacks;
//! - **panic isolation** — every stage call is wrapped in `catch_unwind`;
//! - **circuit breaking** ([`qfe_estimators::breaker`]) — chronically
//!   failing stages are skipped and probed back in;
//! - **validated hot swap** ([`slot::ModelSlot`]) — retrained models are
//!   published atomically, and only after passing a checksum gate and a
//!   probe workload;
//! - **closed-loop adaptation** ([`adapt::AdaptController`]) — ground
//!   truth fed back through the service drives Page-Hinkley drift
//!   detection, budgeted retraining, shadow validation, and probationary
//!   swaps with automatic rollback — accuracy self-heals without a
//!   restart, and a broken trainer can never take serving down;
//! - **micro-batching** ([`batch::MicroBatcher`]) — singleton arrivals
//!   are coalesced by a worker pool into batched stage calls
//!   ([`EstimatorService::estimate_batch`](service::EstimatorService::estimate_batch)),
//!   amortizing featurization and model forwards across the batch while
//!   keeping per-request deadlines and per-row failure routing;
//! - **durability** ([`persist`]) — published models checkpoint to a
//!   crash-safe [`qfe_store::CheckpointStore`] off the hot path, and
//!   [`EstimatorService::warm_restart`](service::EstimatorService::warm_restart)
//!   rebuilds the newest valid checkpoint through the slot's probe gate
//!   on startup, so adapted accuracy survives a process death;
//! - **sharding** ([`shard`]) — a [`shard::ShardRegistry`] maps 128-bit
//!   tenant/schema fingerprints to per-tenant services (each with its
//!   own chain, breakers, slot, quota, and checkpoint namespace) with
//!   consistent rendezvous routing and one merged fleet snapshot;
//! - **the network front door** ([`net`], [`proto`]) — a std-only TCP
//!   server speaking a length-prefixed binary protocol: thread-per-core
//!   acceptors, per-connection deadlines, and typed [`proto::ProtoError`]s
//!   for every malformed byte a client can send — nothing on the wire
//!   panics or hangs the acceptor.
//!
//! The crate deliberately contains no estimation logic: it composes any
//! [`qfe_core::CardinalityEstimator`] stack.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod adapt;
pub mod admission;
pub mod batch;
pub mod error;
pub mod net;
pub mod persist;
pub mod proto;
pub mod service;
pub mod shard;
pub mod slot;

pub use adapt::{
    spawn_adaptation, AdaptConfig, AdaptController, AdaptHandle, AdaptPhase, AdaptStats,
    CandidateTrainer, FeedbackSink, StepReport,
};
pub use admission::AdmissionStats;
pub use batch::{BatcherStats, MicroBatcher};
pub use error::{FeedbackError, OverloadKind, ServeError, ShedPolicy};
pub use net::{NetConfig, NetServer, NetStats};
pub use persist::{AsyncCheckpointer, RestoreOutcome, WarmRestartReport};
pub use proto::{read_frame, write_frame, ErrCode, Frame, ProtoError, ReadError};
pub use service::{
    EstimatorService, ServiceConfig, ServiceStats, StageServiceStats, BATCH_SIZE_METRIC,
    REQUEST_LATENCY_METRIC,
};
pub use shard::{
    FleetError, RegisterError, RouteError, Shard, ShardConfig, ShardError, ShardKey, ShardRegistry,
    ShardStats,
};
pub use slot::{decode_validated, ModelPersister, ModelSlot, SharedEstimator, SwapError};

/// Install a panic hook that silences panics whose payload matches one of
/// `quiet` — chaos-injected panics, in practice — while delegating
/// everything else to the previously installed hook.
///
/// The service *contains* injected panics, but Rust's default hook prints
/// each one to stderr before `catch_unwind` sees it; a chaos stress run
/// would drown real failures in thousands of expected backtraces. Call
/// this once at the start of such a run (tests, demos). Process-global.
pub fn install_quiet_panic_hook(quiet: Vec<String>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| info.payload().downcast_ref::<String>().cloned());
        if let Some(msg) = payload {
            if quiet.contains(&msg) {
                return;
            }
        }
        previous(info);
    }));
}
