//! Dynamic micro-batching over an [`EstimatorService`].
//!
//! Callers that arrive one query at a time can't use
//! [`EstimatorService::estimate_batch`] themselves — somebody has to
//! collect the batch. The [`MicroBatcher`] is that somebody: `submit`
//! parks the caller on a completion slot while a small worker pool
//! (`cfg.workers`) drains the submission queue, coalescing up to
//! `cfg.max_batch_size` requests — waiting at most `cfg.max_batch_wait`
//! for the batch to fill — into one batched service call, then completes
//! each waiter individually. Under load, batches fill instantly and the
//! learned stage amortizes one featurize-and-forward across the whole
//! batch; when idle, a lone request waits at most `max_batch_wait`
//! before being dispatched as a batch of one.
//!
//! Deadline semantics: the dispatched batch runs under the *tightest*
//! member deadline (minimum remaining budget), so no member's budget is
//! silently extended by its batch-mates; members whose own deadline
//! already expired while queued are withdrawn before dispatch with a
//! per-row [`ServeError::DeadlineExceeded`] (`admitted: false` — the
//! budget died in the batcher's queue).
//!
//! Load shedding: the submission queue is bounded
//! (`max(queue_capacity, max_batch_size)`, so a full batch can always
//! accumulate); when full, new submissions are rejected with a typed
//! [`ServeError::Overloaded`] regardless of the service's own shed
//! policy — the batcher never evicts a parked caller.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qfe_core::estimator::Estimate;
use qfe_core::{Deadline, Query};
use qfe_obs::Recorder;

use crate::error::{OverloadKind, ServeError, ShedPolicy};
use crate::service::EstimatorService;

/// One parked caller: its query, its budget, and the channel its worker
/// completes it on.
struct BatchRequest {
    query: Query,
    deadline: Deadline,
    tx: mpsc::SyncSender<Result<Estimate, ServeError>>,
}

struct BatcherState {
    waiting: VecDeque<BatchRequest>,
    shutdown: bool,
}

/// State shared between submitters and workers. Counters live outside
/// the mutex; only the queue itself is locked.
struct Shared {
    state: Mutex<BatcherState>,
    cv: Condvar,
    submitted: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    dispatched: AtomicU64,
}

impl Shared {
    /// Poisoning recovery mirrors the admission queue: counters and the
    /// queue are valid under any interleaving, so a panicking peer must
    /// not wedge every future submission.
    fn lock(&self) -> MutexGuard<'_, BatcherState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// One coherent snapshot of the batcher's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatcherStats {
    /// Lifetime `submit` calls.
    pub submitted: u64,
    /// Submissions rejected because the queue was full (or the batcher
    /// was shutting down).
    pub shed: u64,
    /// Members withdrawn before dispatch because their deadline expired
    /// in the queue.
    pub expired: u64,
    /// Members actually dispatched to the service in a batch.
    pub dispatched: u64,
    /// Requests currently parked in the submission queue.
    pub queued: usize,
}

/// A worker pool that coalesces singleton submissions into batched
/// [`EstimatorService::estimate_batch_within`] calls (see module docs).
pub struct MicroBatcher {
    svc: Arc<EstimatorService>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl MicroBatcher {
    /// Start `cfg.workers` (clamped to `>= 1`) worker threads over
    /// `svc`, reading the batching knobs from the service's
    /// [`ServiceConfig`](crate::ServiceConfig). Workers run until the
    /// batcher is dropped; requests still queued at drop are served
    /// before the workers exit.
    ///
    /// The worker count is additionally capped at the shared
    /// [`qfe_core::parallel`] pool width (`QFE_THREADS` /
    /// `available_parallelism`): batcher workers drive featurization and
    /// model inference, so spawning more of them than the machine has
    /// cores only adds queueing jitter — oversized `cfg.workers` configs
    /// degrade gracefully to the pool size instead.
    pub fn new(svc: Arc<EstimatorService>) -> Self {
        let cfg = svc.config();
        let pool_width = qfe_core::parallel::current().threads();
        let workers_n = cfg.workers.max(1).min(pool_width.max(1));
        let max_batch = cfg.max_batch_size.max(1);
        let max_wait = cfg.max_batch_wait;
        let capacity = cfg.queue_capacity.max(max_batch);
        let shared = Arc::new(Shared {
            state: Mutex::new(BatcherState {
                waiting: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            submitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        });
        let workers = (0..workers_n)
            .filter_map(|i| {
                let svc = Arc::clone(&svc);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qfe-serve-batcher-{i}"))
                    .spawn(move || worker_loop(&svc, &shared, max_batch, max_wait))
                    .ok()
            })
            .collect::<Vec<_>>();
        if workers.is_empty() {
            // No worker could be spawned (resource exhaustion): close the
            // queue so submissions fail fast with `Overloaded` instead of
            // parking forever.
            shared.lock().shutdown = true;
        }
        MicroBatcher {
            svc,
            shared,
            workers,
            capacity,
        }
    }

    /// Submit one query under the service's default budget, blocking
    /// until a worker completes it. See [`submit_within`](Self::submit_within).
    pub fn submit(&self, query: &Query) -> Result<Estimate, ServeError> {
        self.submit_within(query, Deadline::within(self.svc.config().default_budget))
    }

    /// Submit one query under the caller's deadline, blocking until a
    /// worker batches and completes it.
    ///
    /// Returns exactly what the singleton path would: an [`Estimate`]
    /// with stage provenance, or a typed [`ServeError`] when the request
    /// was shed (queue full), expired in the queue, or ran out of budget
    /// inside the service.
    pub fn submit_within(&self, query: &Query, deadline: Deadline) -> Result<Estimate, ServeError> {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.svc.recorder().incr("serve.batch.submitted");
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut st = self.shared.lock();
            if st.shutdown || st.waiting.len() >= self.capacity {
                let queue_len = st.waiting.len();
                drop(st);
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.svc.recorder().incr("serve.batch.shed");
                return Err(ServeError::Overloaded {
                    kind: OverloadKind::RejectedAtAdmission,
                    // The batcher always rejects the newcomer — it never
                    // evicts a parked caller — whatever the service's own
                    // queue policy says.
                    policy: ShedPolicy::RejectNew,
                    queue_len,
                    capacity: self.capacity,
                });
            }
            st.waiting.push_back(BatchRequest {
                query: query.clone(),
                deadline,
                tx,
            });
        }
        self.shared.cv.notify_one();
        match rx.recv() {
            Ok(result) => result,
            // Unreachable in practice: workers complete every request
            // they pop, and drop-shutdown drains the queue. Kept total so
            // a future worker bug degrades to a typed error, not a hang
            // or a panic.
            Err(_) => Err(ServeError::DeadlineExceeded {
                budget: deadline.budget(),
                elapsed: deadline.elapsed(),
                stages_tried: 0,
                admitted: false,
            }),
        }
    }

    /// One coherent snapshot of the batcher's counters. After the queue
    /// drains, `submitted == shed + expired + dispatched`.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            dispatched: self.shared.dispatched.load(Ordering::Relaxed),
            queued: self.shared.lock().waiting.len(),
        }
    }

    /// The service this batcher dispatches to.
    pub fn service(&self) -> &Arc<EstimatorService> {
        &self.svc
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: block for a first request, coalesce a batch, withdraw
/// expired members, dispatch the rest under the tightest member
/// deadline, and complete every waiter individually.
fn worker_loop(
    svc: &Arc<EstimatorService>,
    shared: &Arc<Shared>,
    max_batch: usize,
    max_wait: Duration,
) {
    loop {
        // Phase 1: wait for the first member (or shutdown + empty queue).
        let first = {
            let mut st = shared.lock();
            loop {
                if let Some(req) = st.waiting.pop_front() {
                    break Some(req);
                }
                if st.shutdown {
                    break None;
                }
                st = match shared.cv.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(first) = first else {
            return;
        };
        // Phase 2: coalesce up to `max_batch` members, waiting at most
        // `max_wait` past the first for the batch to fill.
        let mut batch = vec![first];
        let fill_deadline = Instant::now() + max_wait;
        while batch.len() < max_batch {
            let mut st = shared.lock();
            while batch.len() < max_batch {
                match st.waiting.pop_front() {
                    Some(req) => batch.push(req),
                    None => break,
                }
            }
            if batch.len() >= max_batch || st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= fill_deadline {
                break;
            }
            let (g, timeout) = match shared.cv.wait_timeout(st, fill_deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            drop(g);
            if timeout.timed_out() {
                // One last drain attempt happens at the top of the loop.
                continue;
            }
        }
        // Phase 3: withdraw members whose budget died in the queue —
        // dispatching them would only burn the batch's budget on rows
        // that can no longer be answered in time.
        let mut live = Vec::with_capacity(batch.len());
        for req in batch {
            if req.deadline.expired() {
                shared.expired.fetch_add(1, Ordering::Relaxed);
                svc.recorder().incr("serve.batch.expired");
                let _ = req.tx.send(Err(ServeError::DeadlineExceeded {
                    budget: req.deadline.budget(),
                    elapsed: req.deadline.elapsed(),
                    stages_tried: 0,
                    admitted: false,
                }));
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            continue;
        }
        // Phase 4: dispatch under the tightest member deadline and
        // complete each waiter with its own row result.
        let mut batch_deadline = live[0].deadline;
        for req in &live[1..] {
            if req.deadline.remaining() < batch_deadline.remaining() {
                batch_deadline = req.deadline;
            }
        }
        shared
            .dispatched
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        let queries: Vec<Query> = live.iter().map(|r| r.query.clone()).collect();
        let results = svc.estimate_batch_within(&queries, batch_deadline);
        let mut results = results.into_iter();
        for req in live {
            let row = results.next().unwrap_or_else(|| {
                Err(ServeError::DeadlineExceeded {
                    budget: req.deadline.budget(),
                    elapsed: req.deadline.elapsed(),
                    stages_tried: 0,
                    admitted: true,
                })
            });
            let _ = req.tx.send(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use qfe_core::estimator::CardinalityEstimator;
    use qfe_core::TableId;

    struct Constant(f64);
    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            self.0
        }
    }

    struct Slow {
        delay: Duration,
        value: f64,
    }
    impl CardinalityEstimator for Slow {
        fn name(&self) -> String {
            "slow".into()
        }
        fn estimate(&self, _q: &Query) -> f64 {
            std::thread::sleep(self.delay);
            self.value
        }
    }

    fn q() -> Query {
        Query::single_table(TableId(0), vec![])
    }

    fn service(cfg: ServiceConfig) -> Arc<EstimatorService> {
        Arc::new(EstimatorService::new(vec![Arc::new(Constant(42.0))], cfg))
    }

    #[test]
    fn concurrent_submissions_are_batched_and_all_answered() {
        let svc = service(ServiceConfig {
            workers: 2,
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(5),
            // Room for every submitter: this test is about coalescing,
            // not shedding.
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let batcher = Arc::new(MicroBatcher::new(Arc::clone(&svc)));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(&q()))
            })
            .collect();
        for h in handles {
            let e = h.join().unwrap().unwrap();
            assert_eq!(e.value, 42.0);
            assert_eq!(e.estimator, "constant");
            assert_eq!(e.fallback_depth, 0);
        }
        let stats = batcher.stats();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.dispatched, 32);
        assert_eq!(stats.queued, 0);
        // Service-side accounting agrees: every request went through the
        // batched path, and coalescing produced fewer drains than rows.
        let sstats = svc.stats();
        assert_eq!(sstats.batched_requests, 32);
        assert_eq!(sstats.answered, 32);
        assert!(
            sstats.batch_drains <= 32,
            "drains never exceed rows: {sstats:?}"
        );
        // The batch-size histogram saw every drain, totalling every row.
        let m = svc.metrics();
        let sizes = m
            .histogram(crate::service::BATCH_SIZE_METRIC)
            .expect("batch size histogram");
        assert_eq!(sizes.count, sstats.batch_drains);
        assert_eq!(sizes.sum_nanos, 32);
        assert_eq!(m.counter("serve.batch.submitted"), 32);
    }

    #[test]
    fn expired_members_are_withdrawn_before_dispatch() {
        let svc = service(ServiceConfig::default());
        let batcher = MicroBatcher::new(Arc::clone(&svc));
        let err = batcher
            .submit_within(&q(), Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::DeadlineExceeded {
                    stages_tried: 0,
                    admitted: false,
                    ..
                }
            ),
            "{err:?}"
        );
        let stats = batcher.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.dispatched, 0);
        // Withdrawn members never reach the service.
        assert_eq!(svc.stats().batched_requests, 0);
        assert_eq!(svc.metrics().counter("serve.batch.expired"), 1);
    }

    #[test]
    fn full_queue_sheds_new_submissions_with_a_typed_error() {
        // One worker, one-row batches, a 50 ms stage: submissions pile up
        // behind the worker and overflow the 1-slot queue.
        let svc = Arc::new(EstimatorService::new(
            vec![Arc::new(Slow {
                delay: Duration::from_millis(50),
                value: 7.0,
            })],
            ServiceConfig {
                workers: 1,
                max_batch_size: 1,
                queue_capacity: 1,
                default_budget: Duration::from_secs(5),
                ..ServiceConfig::default()
            },
        ));
        let batcher = Arc::new(MicroBatcher::new(Arc::clone(&svc)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(&q()))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
            .count();
        assert!(ok >= 1, "somebody must be served: {results:?}");
        assert!(shed >= 1, "the 1-slot queue must overflow: {results:?}");
        let stats = batcher.stats();
        assert_eq!(stats.shed as usize, shed);
        assert_eq!(stats.submitted, 8);
        // Conservation: every submission was shed, expired, or dispatched.
        assert_eq!(
            stats.submitted,
            stats.shed + stats.expired + stats.dispatched
        );
    }

    #[test]
    fn drop_drains_queued_requests_before_stopping() {
        let svc = service(ServiceConfig {
            workers: 1,
            max_batch_size: 4,
            max_batch_wait: Duration::from_millis(20),
            ..ServiceConfig::default()
        });
        let batcher = Arc::new(MicroBatcher::new(Arc::clone(&svc)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(&q()))
            })
            .collect();
        // Drop our handle while submitters are in flight; the workers
        // hold their own Arc and drain before exiting.
        drop(batcher);
        for h in handles {
            let e = h.join().unwrap().unwrap();
            assert_eq!(e.value, 42.0);
        }
    }

    #[test]
    fn batch_of_one_when_idle_still_answers() {
        let svc = service(ServiceConfig {
            workers: 1,
            max_batch_size: 64,
            max_batch_wait: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let batcher = MicroBatcher::new(Arc::clone(&svc));
        let e = batcher.submit(&q()).unwrap();
        assert_eq!(e.value, 42.0);
        assert_eq!(batcher.stats().dispatched, 1);
        assert_eq!(batcher.service().stats().batch_drains, 1);
    }
}
