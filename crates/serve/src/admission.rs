//! Bounded admission with load shedding.
//!
//! The service runs at most `max_concurrency` requests at once; up to
//! `queue_capacity` more may wait. Beyond that the service *sheds load*
//! instead of queueing unboundedly — an unbounded queue converts overload
//! into unbounded latency, which for a deadline-bearing workload means
//! every queued request eventually times out anyway (serving none of them)
//! while memory grows. The two policies ([`ShedPolicy`]) pick *which*
//! request eats the typed [`ServeError::Overloaded`]: the newest arrival
//! (FIFO-fair) or the oldest waiter (freshest-first — the oldest waiter
//! has burned the most budget and is the most likely to miss its deadline
//! regardless).
//!
//! Implementation: a mutex-guarded counter + FIFO of per-request tickets,
//! each ticket a tiny `Mutex<TicketState>` + `Condvar`. A finishing
//! request hands its slot directly to the head of the queue (no thundering
//! herd, no barging: admission order is queue order). Waiters time out on
//! their own [`Deadline`] and withdraw, so a dead request never occupies a
//! queue slot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use qfe_core::Deadline;
use qfe_obs::Recorder;

use crate::error::{OverloadKind, ServeError, ShedPolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketState {
    Waiting,
    Admitted,
    Shed,
}

struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
    /// When the ticket entered the queue; the time-in-queue histogram
    /// records the span from here to whichever way the wait resolves
    /// (admitted, shed, or withdrawn).
    enqueued_at: Instant,
}

/// Recorder plus precomputed metric names (no allocation on the
/// admission path).
struct AdmissionMetrics {
    recorder: Arc<dyn Recorder>,
    /// Gauge: current queue length, updated on every queue mutation.
    depth: String,
    /// Histogram: time spent queued, recorded when a wait resolves.
    wait: String,
}

struct QueueState {
    running: usize,
    waiting: VecDeque<Arc<Ticket>>,
}

/// Counter snapshot of admission activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests currently executing.
    pub running: usize,
    /// Requests currently queued.
    pub queued: usize,
    /// Lifetime admissions.
    pub admitted: u64,
    /// Requests rejected on arrival (`RejectNew` with a full queue).
    pub rejected: u64,
    /// Queued requests evicted by a newer arrival (`ShedOldest`).
    pub shed: u64,
    /// Waiters that withdrew because their deadline expired in the queue.
    pub queue_timeouts: u64,
}

pub(crate) struct AdmissionQueue {
    max_concurrency: usize,
    capacity: usize,
    policy: ShedPolicy,
    state: Mutex<QueueState>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    queue_timeouts: AtomicU64,
    metrics: Option<AdmissionMetrics>,
}

/// An admitted request's slot; releasing it (on drop) admits the next
/// queued request if any.
pub(crate) struct Permit<'a> {
    queue: &'a AdmissionQueue,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.queue.release();
    }
}

impl AdmissionQueue {
    pub(crate) fn new(max_concurrency: usize, capacity: usize, policy: ShedPolicy) -> Self {
        AdmissionQueue {
            max_concurrency: max_concurrency.max(1),
            capacity,
            policy,
            state: Mutex::new(QueueState {
                running: 0,
                waiting: VecDeque::new(),
            }),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_timeouts: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Additionally publish a queue-depth gauge (`<prefix>.depth`) and a
    /// time-in-queue histogram (`<prefix>.wait`) to `recorder`. The
    /// lifetime counters stay on [`AdmissionStats`]; the service merges
    /// them into its metrics snapshot, so they are deliberately not
    /// double-recorded here.
    pub(crate) fn with_recorder(mut self, recorder: Arc<dyn Recorder>, prefix: &str) -> Self {
        self.metrics = Some(AdmissionMetrics {
            recorder,
            depth: format!("{prefix}.depth"),
            wait: format!("{prefix}.wait"),
        });
        self
    }

    fn set_depth_gauge(&self, depth: usize) {
        if let Some(m) = &self.metrics {
            m.recorder.set_gauge(&m.depth, depth as u64);
        }
    }

    fn record_wait(&self, ticket: &Ticket) {
        if let Some(m) = &self.metrics {
            m.recorder.record(&m.wait, ticket.enqueued_at.elapsed());
        }
    }

    /// Mutex recovery: the critical sections below cannot panic, but a
    /// poisoned admission queue must never brick the service — the
    /// guarded state is plain data either way.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_ticket<'t>(ticket: &'t Ticket) -> MutexGuard<'t, TicketState> {
        match ticket.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Block until admitted, shed, or the deadline expires in the queue.
    pub(crate) fn acquire(&self, deadline: &Deadline) -> Result<Permit<'_>, ServeError> {
        let ticket = {
            let mut st = self.lock();
            if st.running < self.max_concurrency {
                st.running += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { queue: self });
            }
            if st.waiting.len() >= self.capacity {
                match self.policy {
                    ShedPolicy::RejectNew => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Overloaded {
                            kind: OverloadKind::RejectedAtAdmission,
                            policy: self.policy,
                            queue_len: st.waiting.len(),
                            capacity: self.capacity,
                        });
                    }
                    ShedPolicy::ShedOldest => {
                        if let Some(victim) = st.waiting.pop_front() {
                            self.set_depth_gauge(st.waiting.len());
                            *Self::lock_ticket(&victim) = TicketState::Shed;
                            victim.cv.notify_all();
                            self.shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            // A zero-capacity queue under ShedOldest degenerates to
            // rejection: there is no queue to displace anyone from.
            if self.capacity == 0 {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    kind: OverloadKind::RejectedAtAdmission,
                    policy: self.policy,
                    queue_len: 0,
                    capacity: 0,
                });
            }
            let ticket = Arc::new(Ticket {
                state: Mutex::new(TicketState::Waiting),
                cv: Condvar::new(),
                enqueued_at: Instant::now(),
            });
            st.waiting.push_back(Arc::clone(&ticket));
            self.set_depth_gauge(st.waiting.len());
            ticket
        };
        self.wait_on(ticket, deadline)
    }

    fn wait_on(&self, ticket: Arc<Ticket>, deadline: &Deadline) -> Result<Permit<'_>, ServeError> {
        let mut state = Self::lock_ticket(&ticket);
        loop {
            match *state {
                TicketState::Admitted => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    self.record_wait(&ticket);
                    return Ok(Permit { queue: self });
                }
                TicketState::Shed => {
                    self.record_wait(&ticket);
                    let st = self.lock();
                    return Err(ServeError::Overloaded {
                        kind: OverloadKind::ShedWhileQueued,
                        policy: self.policy,
                        queue_len: st.waiting.len(),
                        capacity: self.capacity,
                    });
                }
                TicketState::Waiting => {
                    let remaining = deadline.remaining();
                    if remaining.is_zero() {
                        // Withdraw — but only if we are still queued. If
                        // the ticket is gone from the queue, an admit or
                        // shed is racing us: re-check the state (the
                        // resolver sets it right after popping).
                        drop(state);
                        let mut st = self.lock();
                        if let Some(pos) = st.waiting.iter().position(|t| Arc::ptr_eq(t, &ticket)) {
                            st.waiting.remove(pos);
                            self.set_depth_gauge(st.waiting.len());
                            drop(st);
                            self.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                            self.record_wait(&ticket);
                            return Err(ServeError::DeadlineExceeded {
                                budget: deadline.budget(),
                                elapsed: deadline.elapsed(),
                                stages_tried: 0,
                                admitted: false,
                            });
                        }
                        drop(st);
                        state = Self::lock_ticket(&ticket);
                        if *state == TicketState::Waiting {
                            // Popped but not yet resolved: the resolver
                            // holds no locks we need — yield briefly.
                            let (g, _) = ticket
                                .cv
                                .wait_timeout(state, Duration::from_millis(1))
                                .unwrap_or_else(|p| p.into_inner());
                            state = g;
                        }
                        continue;
                    }
                    let (g, _) = ticket
                        .cv
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(|p| p.into_inner());
                    state = g;
                }
            }
        }
    }

    /// Hand the slot to the next waiter, or free it.
    fn release(&self) {
        let mut st = self.lock();
        if let Some(next) = st.waiting.pop_front() {
            self.set_depth_gauge(st.waiting.len());
            *Self::lock_ticket(&next) = TicketState::Admitted;
            next.cv.notify_all();
            // `running` is unchanged: the slot transfers directly.
        } else {
            st.running = st.running.saturating_sub(1);
        }
    }

    pub(crate) fn stats(&self) -> AdmissionStats {
        let st = self.lock();
        AdmissionStats {
            running: st.running,
            queued: st.waiting.len(),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_timeouts: self.queue_timeouts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn admits_up_to_concurrency_then_queues() {
        let q = Arc::new(AdmissionQueue::new(2, 4, ShedPolicy::RejectNew));
        let d = Deadline::unbounded();
        let p1 = q.acquire(&d).unwrap();
        let _p2 = q.acquire(&d).unwrap();
        assert_eq!(q.stats().running, 2);

        // Third request must wait until a permit is released.
        let entered = Arc::new(AtomicUsize::new(0));
        let handle = {
            let entered = Arc::clone(&entered);
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let _p = q.acquire(&Deadline::unbounded()).unwrap();
                entered.fetch_add(1, Ordering::SeqCst);
            })
        };
        while q.stats().queued == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(entered.load(Ordering::SeqCst), 0, "must be queued");
        drop(p1);
        handle.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reject_new_rejects_when_queue_is_full() {
        let q = AdmissionQueue::new(1, 0, ShedPolicy::RejectNew);
        let d = Deadline::unbounded();
        let _p = q.acquire(&d).unwrap();
        let err = q.acquire(&d).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Overloaded {
                kind: OverloadKind::RejectedAtAdmission,
                policy: ShedPolicy::RejectNew,
                ..
            }
        ));
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn deadline_expires_in_queue() {
        let q = AdmissionQueue::new(1, 4, ShedPolicy::RejectNew);
        let _p = q.acquire(&Deadline::unbounded()).unwrap();
        let err = q
            .acquire(&Deadline::within(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::DeadlineExceeded {
                admitted: false,
                stages_tried: 0,
                ..
            }
        ));
        let s = q.stats();
        assert_eq!((s.queue_timeouts, s.queued), (1, 0), "waiter withdrew");
    }

    #[test]
    fn recorder_sees_queue_depth_and_wait_time() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let q = Arc::new(
            AdmissionQueue::new(1, 4, ShedPolicy::RejectNew)
                .with_recorder(recorder.clone(), "serve.queue"),
        );
        let p = q.acquire(&Deadline::unbounded()).unwrap();
        // A second request queues; the gauge reflects the depth.
        let handle = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.acquire(&Deadline::unbounded()).map(|_| ()))
        };
        while q.stats().queued == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(recorder.gauge("serve.queue.depth"), 1);
        drop(p);
        handle.join().unwrap().unwrap();
        assert_eq!(recorder.gauge("serve.queue.depth"), 0);
        // The queued request's wait shows up in the histogram; the
        // immediately admitted one is not recorded (it never queued).
        let snap = recorder.snapshot();
        let wait = snap.histogram("serve.queue.wait").expect("wait histogram");
        assert_eq!(wait.count, 1);
        assert!(wait.sum_nanos > 0);
    }

    #[test]
    fn shed_oldest_evicts_the_head_of_the_queue() {
        let q = Arc::new(AdmissionQueue::new(1, 1, ShedPolicy::ShedOldest));
        let _p = q.acquire(&Deadline::unbounded()).unwrap();

        // First waiter fills the queue...
        let first = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.acquire(&Deadline::unbounded()).map(|_| ()))
        };
        while q.stats().queued == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        // ...second arrival sheds it and takes its place.
        let second = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.acquire(&Deadline::within(Duration::from_millis(200)))
                    .map(|_| ())
            })
        };
        let first_result = first.join().unwrap();
        assert!(matches!(
            first_result,
            Err(ServeError::Overloaded {
                kind: OverloadKind::ShedWhileQueued,
                policy: ShedPolicy::ShedOldest,
                ..
            })
        ));
        assert_eq!(q.stats().shed, 1);
        // Releasing the permit admits the second waiter.
        drop(_p);
        assert!(second.join().unwrap().is_ok());
    }
}
