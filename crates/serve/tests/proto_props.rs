//! Adversarial coverage for the wire protocol, mirroring the
//! `corrupt_model.rs` pattern from qfe-ml: every frame type round-trips
//! bit-exactly, and *every* corruption of a valid frame — truncation at
//! each length, a flip of each bit, random multi-byte damage, arbitrary
//! garbage — yields a typed `ProtoError`, never a panic, never a hang,
//! and never a silently-wrong frame that compares equal to a different
//! encoding's frame.

use proptest::prelude::*;
use qfe_core::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
use qfe_core::query::{ColumnRef, JoinPredicate, Query};
use qfe_core::schema::{ColumnId, TableId};
use qfe_core::Value;
use qfe_serve::proto::MAX_FRAME_LEN;
use qfe_serve::{ErrCode, Frame, ProtoError};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// The vendored proptest shim has no `any::<T>()` / regex strategies;
/// full-width ranges and byte-vector strings cover the same space.
fn arb_u64() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

fn arb_u128() -> impl Strategy<Value = u128> {
    (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

fn arb_string(max_len: usize) -> BoxedStrategy<String> {
    prop::collection::vec(b'a'..=b'z', 0..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap())
        .boxed()
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (i64::MIN..i64::MAX).prop_map(Value::Int),
        // Finite floats only: the estimate/literal contract upstream is
        // finite values, and NaN breaks PartialEq round-trip checks.
        (i32::MIN..i32::MAX).prop_map(|v| Value::Float(v as f64 / 7.0)),
        arb_string(12).prop_map(Value::Str),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne),
    ]
}

fn arb_expr() -> impl Strategy<Value = PredicateExpr> {
    let leaf = (arb_op(), arb_value())
        .prop_map(|(op, value)| PredicateExpr::Leaf(SimplePredicate { op, value }));
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(PredicateExpr::And),
            prop::collection::vec(inner, 1..4).prop_map(PredicateExpr::Or),
        ]
    })
}

fn arb_column() -> impl Strategy<Value = ColumnRef> {
    (0usize..64, 0usize..64).prop_map(|(t, c)| ColumnRef::new(TableId(t), ColumnId(c)))
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(0usize..64, 1..4),
        prop::collection::vec((arb_column(), arb_column()), 0..3),
        prop::collection::vec((arb_column(), arb_expr()), 0..4),
    )
        .prop_map(|(tables, joins, preds)| Query {
            tables: tables.into_iter().map(TableId).collect(),
            joins: joins
                .into_iter()
                .map(|(left, right)| JoinPredicate { left, right })
                .collect(),
            predicates: preds
                .into_iter()
                .map(|(column, expr)| CompoundPredicate { column, expr })
                .collect(),
        })
}

fn arb_err_code() -> impl Strategy<Value = ErrCode> {
    prop_oneof![
        Just(ErrCode::Overloaded),
        Just(ErrCode::DeadlineExceeded),
        Just(ErrCode::QuotaExhausted),
        Just(ErrCode::UnknownTenant),
        Just(ErrCode::BadRequest),
        Just(ErrCode::Internal),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (arb_u64(), arb_u128(), arb_u64(), arb_query()).prop_map(
            |(request_id, tenant, budget_micros, query)| Frame::EstimateRequest {
                request_id,
                tenant,
                budget_micros,
                query,
            }
        ),
        (arb_u64(), 1u32..1_000_000, 0u32..8, arb_string(24)).prop_map(
            |(request_id, v, fallback_depth, estimator)| Frame::EstimateOk {
                request_id,
                value: v as f64,
                fallback_depth,
                estimator,
            }
        ),
        (arb_u64(), arb_err_code(), arb_string(32)).prop_map(|(request_id, code, detail)| {
            Frame::EstimateErr {
                request_id,
                code,
                detail,
            }
        }),
        arb_u64().prop_map(|token| Frame::Ping { token }),
        arb_u64().prop_map(|token| Frame::Pong { token }),
    ]
}

/// Decode must produce a value or a typed error — anything else
/// (panic, unbounded work) fails the test harness itself.
fn decode_is_total(bytes: &[u8]) {
    let _ = Frame::decode(bytes);
}

// ---------------------------------------------------------------------------
// Exhaustive sweeps on a representative frame
// ---------------------------------------------------------------------------

fn representative_request() -> Frame {
    Frame::EstimateRequest {
        request_id: 7,
        tenant: 0xABCD_EF01_2345_6789_ABCD_EF01_2345_6789,
        budget_micros: 1500,
        query: Query {
            tables: vec![TableId(0), TableId(2)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(0), ColumnId(1)),
                right: ColumnRef::new(TableId(2), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(3)),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, Value::Int(4)),
                    PredicateExpr::And(vec![
                        PredicateExpr::leaf(CmpOp::Ge, Value::Float(0.5)),
                        PredicateExpr::leaf(CmpOp::Ne, Value::Str("july".into())),
                    ]),
                ]),
            }],
        },
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = representative_request().encode();
    for len in 0..bytes.len() {
        match Frame::decode(&bytes[..len]) {
            Err(_) => {}
            Ok(f) => panic!("truncation to {len}/{} bytes decoded as {f:?}", bytes.len()),
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_or_decodes_to_a_different_valid_frame() {
    // A bit flip may still be a *valid* frame (e.g. flipping a bit of
    // request_id) — what it must never be is a panic, and if it does
    // decode, it must not compare equal to the original.
    let original = representative_request();
    let bytes = original.encode();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 1 << bit;
            match Frame::decode(&corrupted) {
                Err(_) => {}
                Ok(f) => assert_ne!(
                    f, original,
                    "bit {bit} of byte {byte} flipped yet decoded equal"
                ),
            }
        }
    }
}

#[test]
fn truncation_of_every_frame_type_never_panics() {
    let frames = [
        representative_request(),
        Frame::EstimateOk {
            request_id: 1,
            value: 42.0,
            fallback_depth: 1,
            estimator: "postgres".into(),
        },
        Frame::EstimateErr {
            request_id: 2,
            code: ErrCode::Overloaded,
            detail: "queue full".into(),
        },
        Frame::Ping { token: 3 },
        Frame::Pong { token: 4 },
    ];
    for f in &frames {
        let bytes = f.encode();
        for len in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..len]).is_err(),
                "truncated {f:?} decoded"
            );
        }
    }
}

#[test]
fn hostile_lengths_fail_fast_without_allocation() {
    // Frames claiming enormous collections/strings must be refused by
    // the bounds checks, not by attempting the allocation. If any of
    // these allocated multi-GiB buffers the test would OOM, not fail
    // an assert.
    let oversized = vec![0u8; MAX_FRAME_LEN + 1];
    assert!(matches!(
        Frame::decode(&oversized),
        Err(ProtoError::Oversized { .. })
    ));
    // EstimateOk with a string length field of u32::MAX.
    let mut bytes = vec![0x02];
    bytes.extend_from_slice(&1u64.to_le_bytes());
    bytes.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Frame::decode(&bytes),
        Err(ProtoError::Oversized { .. })
    ));
}

// ---------------------------------------------------------------------------
// Randomized sweeps
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_round_trips_bit_exactly(frame in arb_frame()) {
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes).expect("valid frame must decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn random_multi_byte_corruption_is_total(
        frame in arb_frame(),
        damage in prop::collection::vec((0usize..1 << 20, 1u8..255), 1..16),
    ) {
        let mut bytes = frame.encode();
        for (pos, val) in damage {
            let i = pos % bytes.len();
            bytes[i] ^= val;
        }
        decode_is_total(&bytes);
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        decode_is_total(&bytes);
    }

    #[test]
    fn random_truncations_never_panic(frame in arb_frame(), cut in 0usize..1 << 20) {
        let bytes = frame.encode();
        let len = cut % (bytes.len() + 1);
        decode_is_total(&bytes[..len]);
    }
}
