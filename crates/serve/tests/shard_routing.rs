//! Fleet-level routing invariants over real estimator seeds.
//!
//! What the registry promises a multi-tenant deployment:
//!
//! 1. **Determinism** — equal tenant/schema fingerprints route to the
//!    same shard, every time, including across differently-written but
//!    schema-equal queries.
//! 2. **Isolation** — shards share nothing that matters: tripping
//!    tenant A's circuit breaker leaves tenant B serving on its
//!    primary; quota-shedding tenant A's flood leaves tenant B's
//!    requests admitted.
//! 3. **Conservation** — per shard, `routed == admitted + quota_shed`
//!    at quiescence, and the fleet snapshot exposes each shard's
//!    counters under its own `shard.<name>.` prefix.
//!
//! Shards here are seeded with the PostgreSQL-style baseline estimator
//! over real (tiny) tables — the cheapest member of the estimator
//! family that still exercises a full featurize-and-estimate path.

use std::sync::Arc;
use std::time::Duration;

use qfe_core::predicate::{CmpOp, CompoundPredicate, PredicateExpr};
use qfe_core::query::{ColumnRef, Query};
use qfe_core::schema::{ColumnId, TableId};
use qfe_core::{CardinalityEstimator, Deadline, Value};
use qfe_data::{Column, Database, Table};
use qfe_estimators::{BreakerConfig, ChaosEstimator, EstimatorFault, PostgresEstimator};
use qfe_serve::{
    ServiceConfig, Shard, ShardConfig, ShardError, ShardKey, ShardRegistry, SharedEstimator,
};

fn tiny_db(rows: usize, seed: i64) -> Database {
    Database::new(
        vec![Table::new(
            "t",
            vec![
                (
                    "a".into(),
                    Column::Int((0..rows as i64).map(|v| (v * 7 + seed) % 50).collect()),
                ),
                (
                    "b".into(),
                    Column::Int((0..rows as i64).map(|v| (v + seed) % 10).collect()),
                ),
            ],
        )],
        &[],
    )
}

fn postgres_stage(db: &Database) -> SharedEstimator {
    Arc::new(PostgresEstimator::analyze_default(db))
}

fn lenient_service() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(3600),
            ..BreakerConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn query_on_table(value: i64) -> Query {
    Query {
        tables: vec![TableId(0)],
        joins: vec![],
        predicates: vec![CompoundPredicate {
            column: ColumnRef::new(TableId(0), ColumnId(0)),
            expr: PredicateExpr::leaf(CmpOp::Le, Value::Int(value)),
        }],
    }
}

#[test]
fn equal_fingerprints_route_to_the_same_shard() {
    let reg = ShardRegistry::new();
    for name in ["alpha", "beta", "gamma", "delta"] {
        let db = tiny_db(64, name.len() as i64);
        reg.register(Shard::new(
            name,
            ShardKey::for_tenant(name),
            vec![postgres_stage(&db)],
            ShardConfig {
                quota: 8,
                service: lenient_service(),
            },
        ))
        .unwrap();
    }
    // Exact tenants: repeat lookups always land home.
    for name in ["alpha", "beta", "gamma", "delta"] {
        for _ in 0..5 {
            assert_eq!(reg.route(ShardKey::for_tenant(name)).unwrap().name(), name);
        }
    }
    // Unregistered keys: rendezvous is a pure function of the key, so
    // equal fingerprints agree across repeated calls — and two queries
    // over the same table set produce equal keys no matter how their
    // predicates or table lists are written.
    let q1 = query_on_table(3);
    let mut q2 = query_on_table(40);
    q2.tables = vec![TableId(0), TableId(0)]; // dup: SubSchema dedups
    assert_eq!(ShardKey::of_query(&q1), ShardKey::of_query(&q2));
    let owner = reg
        .route(ShardKey::of_query(&q1))
        .unwrap()
        .name()
        .to_owned();
    for _ in 0..5 {
        assert_eq!(reg.route(ShardKey::of_query(&q2)).unwrap().name(), owner);
    }
}

#[test]
fn tripping_tenant_a_breaker_leaves_tenant_b_serving() {
    let reg = ShardRegistry::new();
    let db = tiny_db(64, 0);

    // Tenant A's primary always errors; its fallback is the histogram
    // baseline. Tenant B runs the healthy baseline as primary.
    let broken: SharedEstimator = Arc::new(ChaosEstimator::new(
        PostgresEstimator::analyze_default(&db),
        vec![EstimatorFault::Error],
        1.0,
        1,
    ));
    let a = Shard::new(
        "a",
        ShardKey::for_tenant("a"),
        vec![broken, postgres_stage(&db)],
        ShardConfig {
            quota: 8,
            service: lenient_service(),
        },
    );
    let b = Shard::new(
        "b",
        ShardKey::for_tenant("b"),
        vec![postgres_stage(&db)],
        ShardConfig {
            quota: 8,
            service: lenient_service(),
        },
    );
    reg.register(Arc::clone(&a)).unwrap();
    reg.register(Arc::clone(&b)).unwrap();

    // Hammer A until its stage-0 breaker opens (threshold 2).
    for i in 0..6 {
        let est = a
            .estimate_within(&query_on_table(i), Deadline::within(Duration::from_secs(1)))
            .expect("A still answers via fallback");
        assert!(est.fallback_depth > 0, "A's answer must come from fallback");
    }
    let a_breaker = &a.service().stats().stages[0].breaker;
    assert!(a_breaker.opened >= 1, "A's primary breaker never opened");

    // B is untouched: closed breaker, primary answers at depth 0.
    for i in 0..4 {
        let est = b
            .estimate_within(&query_on_table(i), Deadline::within(Duration::from_secs(1)))
            .expect("B serves");
        assert_eq!(est.fallback_depth, 0, "B must answer on its primary");
    }
    let b_stats = b.service().stats();
    assert_eq!(b_stats.stages[0].breaker.opened, 0);
    assert_eq!(b_stats.stages[0].panics, 0);
    assert!(reg.conserved());
}

#[test]
fn quota_shed_on_a_hot_tenant_leaves_the_other_admitted() {
    // A gets quota 1 and a slow-enough service that concurrent floods
    // collide at the gate; B has headroom. Flood A from many threads
    // while B trickles sequentially: B must never be shed.
    let db = tiny_db(64, 1);
    let a = Shard::new(
        "hot",
        ShardKey::for_tenant("hot"),
        vec![postgres_stage(&db)],
        ShardConfig {
            quota: 1,
            service: lenient_service(),
        },
    );
    let b = Shard::new(
        "calm",
        ShardKey::for_tenant("calm"),
        vec![postgres_stage(&db)],
        ShardConfig {
            quota: 8,
            service: lenient_service(),
        },
    );

    let mut handles = Vec::new();
    for t in 0..8 {
        let a = Arc::clone(&a);
        handles.push(std::thread::spawn(move || {
            let mut sheds = 0u64;
            for i in 0..50 {
                match a.estimate_within(
                    &query_on_table((t * 50 + i) % 50),
                    Deadline::within(Duration::from_secs(1)),
                ) {
                    Ok(_) => {}
                    Err(ShardError::QuotaExhausted { .. }) => sheds += 1,
                    Err(e) => panic!("unexpected error on hot shard: {e}"),
                }
            }
            sheds
        }));
    }
    for i in 0..40 {
        let est = b
            .estimate_within(&query_on_table(i), Deadline::within(Duration::from_secs(1)))
            .expect("calm tenant must keep serving during the flood");
        assert!(est.value >= 1.0);
    }
    let total_sheds: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let hot = a.stats();
    let calm = b.stats();
    assert!(hot.conserved(), "hot shard counters must conserve");
    assert!(calm.conserved(), "calm shard counters must conserve");
    assert_eq!(hot.routed, 400);
    assert_eq!(hot.quota_shed, total_sheds);
    assert_eq!(calm.routed, 40);
    assert_eq!(calm.quota_shed, 0, "calm tenant must never be quota-shed");
}

#[test]
fn fleet_snapshot_keeps_tenants_apart() {
    let reg = ShardRegistry::new();
    let db = tiny_db(32, 2);
    for name in ["x", "y"] {
        reg.register(Shard::new(
            name,
            ShardKey::for_tenant(name),
            vec![postgres_stage(&db)],
            ShardConfig {
                quota: 4,
                service: lenient_service(),
            },
        ))
        .unwrap();
    }
    // 3 requests to x, 1 to y, via registry routing.
    for i in 0..3 {
        reg.estimate_within(
            ShardKey::for_tenant("x"),
            &query_on_table(i),
            Deadline::within(Duration::from_secs(1)),
        )
        .unwrap();
    }
    reg.estimate_within(
        ShardKey::for_tenant("y"),
        &query_on_table(9),
        Deadline::within(Duration::from_secs(1)),
    )
    .unwrap();

    let snap = reg.metrics();
    assert_eq!(snap.counter("shard.x.routing.routed"), 3);
    assert_eq!(snap.counter("shard.x.routing.admitted"), 3);
    assert_eq!(snap.counter("shard.y.routing.routed"), 1);
    assert_eq!(snap.counter("registry.routes.exact"), 4);
    assert_eq!(snap.gauge("registry.shards"), 2);
    // Per-shard serving counters stay namespaced.
    assert!(snap.counter_sum_with_prefix("shard.x.serve.") > 0);
    assert!(snap.counter_sum_with_prefix("shard.y.serve.") > 0);
    assert!(reg.conserved());
}

#[test]
fn eviction_and_warm_reregistration_keep_routing_consistent() {
    let reg = ShardRegistry::new();
    let db = tiny_db(32, 3);
    for name in ["p", "q", "r"] {
        reg.register(Shard::new(
            name,
            ShardKey::for_tenant(name),
            vec![postgres_stage(&db)],
            ShardConfig {
                quota: 4,
                service: lenient_service(),
            },
        ))
        .unwrap();
    }
    let keys: Vec<ShardKey> = (0..100)
        .map(|i| ShardKey::for_tenant(&format!("k{i}")))
        .collect();
    let before: Vec<String> = keys
        .iter()
        .map(|k| reg.route(*k).unwrap().name().to_owned())
        .collect();

    // Evict and immediately re-register 'q' (a warm restart in fleet
    // terms): the membership set is unchanged, so *every* key must
    // route exactly as before.
    let evicted = reg.evict(ShardKey::for_tenant("q")).unwrap();
    assert_eq!(evicted.name(), "q");
    reg.register(Shard::new(
        "q",
        ShardKey::for_tenant("q"),
        vec![postgres_stage(&db)],
        ShardConfig {
            quota: 4,
            service: lenient_service(),
        },
    ))
    .unwrap();
    for (k, owner) in keys.iter().zip(&before) {
        assert_eq!(
            reg.route(*k).unwrap().name(),
            owner,
            "restart of one shard moved an unrelated key"
        );
    }
}

#[test]
fn estimates_survive_routing_with_real_estimators() {
    // End-to-end sanity: routed estimates agree with calling the
    // estimator directly — routing adds fairness, not distortion.
    let db = tiny_db(128, 4);
    let est = PostgresEstimator::analyze_default(&db);
    let reg = ShardRegistry::new();
    reg.register(Shard::new(
        "solo",
        ShardKey::for_tenant("solo"),
        vec![postgres_stage(&db)],
        ShardConfig {
            quota: 8,
            service: lenient_service(),
        },
    ))
    .unwrap();
    for i in 0..20 {
        let q = query_on_table(i);
        let direct = est.estimate(&q).max(1.0);
        let routed = reg
            .estimate_within(
                ShardKey::for_tenant("solo"),
                &q,
                Deadline::within(Duration::from_secs(1)),
            )
            .unwrap();
        assert!(
            (routed.value - direct).abs() < 1e-9,
            "query {i}: routed {} vs direct {direct}",
            routed.value
        );
    }
}
