//! Featurization instrumentation: a wrapper recording per-QFT encode
//! latency.
//!
//! Featurization sits on the estimation hot path — the End-to-End Learned
//! Cost Estimator line of work reports encode time as part of inference
//! latency — but `qfe-core` must not depend on this crate. So rather than
//! instrumenting `Featurizer::featurize` in core, [`ObservedFeaturizer`]
//! wraps any featurizer behind the same trait. Both metric names embed
//! the wrapped QFT's `name()` and are precomputed at construction, so the
//! per-encode cost is one clock read pair plus one recorder call.

use std::sync::Arc;
use std::time::Instant;

use qfe_core::error::QfeError;
use qfe_core::featurize::{FeatureVec, Featurizer};
use qfe_core::query::Query;

use crate::recorder::Recorder;

/// A [`Featurizer`] decorator that records encode latency and error
/// counts under `featurize.<qft>.latency` / `featurize.<qft>.errors`.
pub struct ObservedFeaturizer<F> {
    inner: F,
    recorder: Arc<dyn Recorder>,
    latency_metric: String,
    error_metric: String,
}

impl<F: Featurizer> ObservedFeaturizer<F> {
    /// Wrap `inner`, reporting to `recorder`.
    pub fn new(inner: F, recorder: Arc<dyn Recorder>) -> Self {
        let qft = inner.name();
        ObservedFeaturizer {
            inner,
            recorder,
            latency_metric: format!("featurize.{qft}.latency"),
            error_metric: format!("featurize.{qft}.errors"),
        }
    }

    /// The wrapped featurizer.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F> std::fmt::Debug for ObservedFeaturizer<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedFeaturizer")
            .field("latency_metric", &self.latency_metric)
            .field("error_metric", &self.error_metric)
            .finish_non_exhaustive()
    }
}

impl<F: Featurizer> Featurizer for ObservedFeaturizer<F> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let start = Instant::now();
        let result = self.inner.featurize(query);
        self.recorder.record(&self.latency_metric, start.elapsed());
        if result.is_err() {
            self.recorder.incr(&self.error_metric);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MetricsRecorder;
    use qfe_core::featurize::{AttributeSpace, SingularPredicateEncoding};
    use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::schema::{AttributeDomain, Catalog, ColumnId, ColumnMeta, TableId, TableMeta};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableMeta {
            name: "t".into(),
            columns: vec![ColumnMeta {
                name: "a".into(),
                domain: AttributeDomain::integers(0, 99),
            }],
            row_count: 1000,
        });
        cat
    }

    fn query() -> Query {
        Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Le, 50)],
            )],
        )
    }

    #[test]
    fn records_latency_per_encode_and_forwards_the_vector() {
        let catalog = catalog();
        let space = AttributeSpace::for_catalog(&catalog);
        let inner = SingularPredicateEncoding::new(space.clone());
        let plain = inner.featurize(&query()).expect("featurizable");

        let recorder = Arc::new(MetricsRecorder::new());
        let observed =
            ObservedFeaturizer::new(SingularPredicateEncoding::new(space), recorder.clone());
        assert_eq!(observed.name(), "simple");
        assert_eq!(observed.dim(), observed.inner().dim());

        for _ in 0..5 {
            let v = observed.featurize(&query()).expect("featurizable");
            assert_eq!(v, plain);
        }
        let hist = recorder
            .histogram("featurize.simple.latency")
            .expect("latency recorded");
        assert_eq!(hist.count(), 5);
        assert_eq!(recorder.counter("featurize.simple.errors"), 0);
    }

    #[test]
    fn counts_featurization_errors() {
        let catalog = catalog();
        let space = AttributeSpace::for_catalog(&catalog);
        let recorder = Arc::new(MetricsRecorder::new());
        let observed =
            ObservedFeaturizer::new(SingularPredicateEncoding::new(space), recorder.clone());

        // A query over an unknown table must fail and be counted.
        let bad = Query::single_table(
            TableId(9),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(9), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Eq, 1)],
            )],
        );
        assert!(observed.featurize(&bad).is_err());
        assert_eq!(recorder.counter("featurize.simple.errors"), 1);
        let hist = recorder
            .histogram("featurize.simple.latency")
            .expect("latency recorded even on error");
        assert_eq!(hist.count(), 1);
    }
}
