//! Online q-error tracking over a sliding window.
//!
//! Cardinality-estimation accuracy is not a training-time constant: the
//! CardEst benchmark study evaluates estimators under *workload drift*,
//! where accuracy decays as the data distribution moves away from the
//! training snapshot. [`QErrorWindow`] makes that decay observable at
//! runtime: whenever ground truth becomes available (e.g. after the query
//! actually executes), feed the (truth, estimate) pair and read back a
//! streaming [`ErrorSummary`] over the most recent `capacity`
//! observations. Non-finite inputs are counted and dropped instead of
//! poisoning the window — the exact failure `SummaryError` guards
//! against.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qfe_core::metrics::{q_error, ErrorSummary};

/// Sliding window of recent q-errors with atomic feed counters.
///
/// `observe` takes a short mutex on the window deque; it is called once
/// per *ground-truth arrival* (orders of magnitude rarer than estimates),
/// not on the estimation hot path.
#[derive(Debug)]
pub struct QErrorWindow {
    window: Mutex<VecDeque<f64>>,
    capacity: usize,
    observed: AtomicU64,
    rejected: AtomicU64,
}

impl QErrorWindow {
    /// A window retaining the `capacity` most recent q-errors
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        QErrorWindow {
            window: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            observed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Feed one (truth, estimate) pair. Non-finite inputs are rejected
    /// (counted, not recorded). Returns whether the pair was recorded.
    pub fn observe(&self, truth: f64, estimate: f64) -> bool {
        if !truth.is_finite() || !estimate.is_finite() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let q = q_error(truth, estimate);
        let mut window = self.window.lock().unwrap_or_else(|e| e.into_inner());
        if window.len() == self.capacity {
            window.pop_front();
        }
        window.push_back(q);
        self.observed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Pairs recorded since construction (including ones that have since
    /// slid out of the window).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Non-finite pairs rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of q-errors currently in the window.
    pub fn len(&self) -> usize {
        self.window.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no q-error has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summary of the q-errors currently in the window, or `None` while
    /// empty. Window contents are finite by construction, so the only
    /// possible `SummaryError` is emptiness.
    pub fn summary(&self) -> Option<ErrorSummary> {
        let window = self.window.lock().unwrap_or_else(|e| e.into_inner());
        let (front, back) = window.as_slices();
        let samples: Vec<f64> = front.iter().chain(back).copied().collect();
        drop(window);
        ErrorSummary::try_from_errors(&samples).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_summary() {
        let w = QErrorWindow::new(10);
        assert!(w.is_empty());
        assert!(w.summary().is_none());
    }

    #[test]
    fn summarizes_observed_pairs() {
        let w = QErrorWindow::new(10);
        assert!(w.observe(100.0, 100.0)); // q = 1
        assert!(w.observe(100.0, 10.0)); // q = 10
        let s = w.summary().expect("non-empty");
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(w.observed(), 2);
        assert_eq!(w.rejected(), 0);
    }

    #[test]
    fn window_slides_at_capacity() {
        let w = QErrorWindow::new(3);
        // q-errors 10, 1, 1, 1: the first (the only q=10) must slide out.
        w.observe(100.0, 10.0);
        for _ in 0..3 {
            w.observe(5.0, 5.0);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.observed(), 4);
        let s = w.summary().expect("non-empty");
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_recorded() {
        let w = QErrorWindow::new(10);
        assert!(!w.observe(f64::NAN, 5.0));
        assert!(!w.observe(5.0, f64::INFINITY));
        assert!(!w.observe(f64::NEG_INFINITY, f64::NAN));
        assert_eq!(w.rejected(), 3);
        assert_eq!(w.observed(), 0);
        assert!(w.summary().is_none());
        // A later valid pair still works — the window was not poisoned.
        assert!(w.observe(10.0, 20.0));
        assert_eq!(w.summary().expect("non-empty").max, 2.0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let w = QErrorWindow::new(0);
        w.observe(2.0, 2.0);
        w.observe(8.0, 2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.summary().expect("non-empty").max, 4.0);
    }

    /// A single sample must yield a full summary where every percentile
    /// equals that sample — no NaN, no panic from degenerate indexing.
    #[test]
    fn single_sample_percentiles_are_that_sample() {
        let w = QErrorWindow::new(16);
        assert!(w.observe(100.0, 50.0)); // q = 2
        let s = w.summary().expect("one sample is summarizable");
        assert_eq!(s.count, 1);
        for v in [s.mean, s.median, s.p90, s.p95, s.p99, s.min, s.max] {
            assert_eq!(v, 2.0, "{s:?}");
        }
    }

    /// All-identical samples: percentile derivation must not divide by a
    /// zero spread or produce NaN anywhere in the summary.
    #[test]
    fn all_identical_samples_summarize_cleanly() {
        let w = QErrorWindow::new(8);
        for _ in 0..8 {
            assert!(w.observe(10.0, 10.0)); // q = 1 exactly, 8 times
        }
        let s = w.summary().expect("non-empty");
        assert_eq!(s.count, 8);
        for v in [s.mean, s.median, s.p90, s.p95, s.p99, s.min, s.max] {
            assert!(v.is_finite(), "{s:?}");
            assert_eq!(v, 1.0, "{s:?}");
        }
    }

    /// Wrap the ring several times over: the deque's two internal slices
    /// (`as_slices`) must both be summarized, and the summary must cover
    /// exactly the last `capacity` observations.
    #[test]
    fn window_wrap_around_keeps_exactly_the_most_recent() {
        let w = QErrorWindow::new(4);
        // 3 full wraps plus a partial one; q-errors are 1, 2, 3, ... 14.
        for q in 1..=14u32 {
            assert!(w.observe(q as f64, 1.0));
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.observed(), 14);
        let s = w.summary().expect("non-empty");
        // Only {11, 12, 13, 14} remain.
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 11.0);
        assert_eq!(s.max, 14.0);
        assert_eq!(s.median, 12.5);
        assert!(s.mean.is_finite() && (s.mean - 12.5).abs() < 1e-12);
    }

    /// Zero and negative truths are *accepted* here (q_error clamps both
    /// sides to >= 1), which is exactly why the serving layer's
    /// `observe_truth` guard rejects them before they reach the window: a
    /// zero-truth query against a large estimate would otherwise inject a
    /// huge, meaningless q-error into the percentiles.
    #[test]
    fn clamped_inputs_document_the_service_level_guard() {
        let w = QErrorWindow::new(4);
        assert!(w.observe(0.0, 1e9));
        let s = w.summary().expect("non-empty");
        assert_eq!(s.max, 1e9, "clamping makes garbage look like signal");
    }
}
