//! Online q-error tracking over a sliding window.
//!
//! Cardinality-estimation accuracy is not a training-time constant: the
//! CardEst benchmark study evaluates estimators under *workload drift*,
//! where accuracy decays as the data distribution moves away from the
//! training snapshot. [`QErrorWindow`] makes that decay observable at
//! runtime: whenever ground truth becomes available (e.g. after the query
//! actually executes), feed the (truth, estimate) pair and read back a
//! streaming [`ErrorSummary`] over the most recent `capacity`
//! observations. Non-finite inputs are counted and dropped instead of
//! poisoning the window — the exact failure `SummaryError` guards
//! against.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qfe_core::metrics::{q_error, ErrorSummary};

/// Sliding window of recent q-errors with atomic feed counters.
///
/// `observe` takes a short mutex on the window deque; it is called once
/// per *ground-truth arrival* (orders of magnitude rarer than estimates),
/// not on the estimation hot path.
#[derive(Debug)]
pub struct QErrorWindow {
    window: Mutex<VecDeque<f64>>,
    capacity: usize,
    observed: AtomicU64,
    rejected: AtomicU64,
}

impl QErrorWindow {
    /// A window retaining the `capacity` most recent q-errors
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        QErrorWindow {
            window: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            observed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Feed one (truth, estimate) pair. Non-finite inputs are rejected
    /// (counted, not recorded). Returns whether the pair was recorded.
    pub fn observe(&self, truth: f64, estimate: f64) -> bool {
        if !truth.is_finite() || !estimate.is_finite() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let q = q_error(truth, estimate);
        let mut window = self.window.lock().unwrap_or_else(|e| e.into_inner());
        if window.len() == self.capacity {
            window.pop_front();
        }
        window.push_back(q);
        self.observed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Pairs recorded since construction (including ones that have since
    /// slid out of the window).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Non-finite pairs rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of q-errors currently in the window.
    pub fn len(&self) -> usize {
        self.window.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no q-error has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summary of the q-errors currently in the window, or `None` while
    /// empty. Window contents are finite by construction, so the only
    /// possible `SummaryError` is emptiness.
    pub fn summary(&self) -> Option<ErrorSummary> {
        let window = self.window.lock().unwrap_or_else(|e| e.into_inner());
        let (front, back) = window.as_slices();
        let samples: Vec<f64> = front.iter().chain(back).copied().collect();
        drop(window);
        ErrorSummary::try_from_errors(&samples).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_summary() {
        let w = QErrorWindow::new(10);
        assert!(w.is_empty());
        assert!(w.summary().is_none());
    }

    #[test]
    fn summarizes_observed_pairs() {
        let w = QErrorWindow::new(10);
        assert!(w.observe(100.0, 100.0)); // q = 1
        assert!(w.observe(100.0, 10.0)); // q = 10
        let s = w.summary().expect("non-empty");
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(w.observed(), 2);
        assert_eq!(w.rejected(), 0);
    }

    #[test]
    fn window_slides_at_capacity() {
        let w = QErrorWindow::new(3);
        // q-errors 10, 1, 1, 1: the first (the only q=10) must slide out.
        w.observe(100.0, 10.0);
        for _ in 0..3 {
            w.observe(5.0, 5.0);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.observed(), 4);
        let s = w.summary().expect("non-empty");
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_recorded() {
        let w = QErrorWindow::new(10);
        assert!(!w.observe(f64::NAN, 5.0));
        assert!(!w.observe(5.0, f64::INFINITY));
        assert!(!w.observe(f64::NEG_INFINITY, f64::NAN));
        assert_eq!(w.rejected(), 3);
        assert_eq!(w.observed(), 0);
        assert!(w.summary().is_none());
        // A later valid pair still works — the window was not poisoned.
        assert!(w.observe(10.0, 20.0));
        assert_eq!(w.summary().expect("non-empty").max, 2.0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let w = QErrorWindow::new(0);
        w.observe(2.0, 2.0);
        w.observe(8.0, 2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.summary().expect("non-empty").max, 4.0);
    }
}
