//! # qfe-obs
//!
//! Observability for the estimation pipeline: lock-free counters,
//! log₂-bucketed latency histograms, and one-call snapshots with stable
//! JSON and human-readable renderings.
//!
//! Both the End-to-End Learned Cost Estimator line of work and the CardEst
//! benchmark study treat *inference latency* and *estimator accuracy over
//! time* as first-class evaluation axes; this crate makes both observable
//! in the production paths instead of only in offline experiments.
//!
//! The design has three layers:
//!
//! * [`Recorder`] — the trait instrumented code talks to. Call sites hold
//!   precomputed metric names and emit counter increments, latency
//!   observations, and gauge updates. The [`NoopRecorder`] default makes
//!   instrumentation cost ~nothing when observability is off (every method
//!   is an empty body behind a virtual call).
//! * [`MetricsRecorder`] — the real sink: a name-keyed registry of atomic
//!   counters, gauges, and [`LatencyHistogram`]s. After a metric's first
//!   observation the hot path is an uncontended read-lock + atomic ops —
//!   no allocation, no mutex on the per-observation path.
//! * [`MetricsSnapshot`] — one coherent copy of every metric, with
//!   [`MetricsSnapshot::to_json`] (stable: keys sorted, integers only) and
//!   [`MetricsSnapshot::render_text`] for dashboards, CI artifacts, and
//!   tests.
//!
//! [`QErrorWindow`] adds the accuracy axis: a sliding window of q-errors
//! fed whenever ground truth becomes available, so model drift is visible
//! at runtime. [`PageHinkley`] turns that feed into a *decision* signal —
//! a deterministic cumulative test that latches when the mean q-error
//! shifts upward, which is what the serving layer's adaptation controller
//! keys retraining off. [`ObservedFeaturizer`] wraps any
//! [`qfe_core::featurize::Featurizer`] with per-QFT encode-latency
//! recording.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod drift;
pub mod hist;
pub mod observed;
pub mod qerror;
pub mod recorder;
pub mod snapshot;

pub use drift::{PageHinkley, PageHinkleyConfig, PageHinkleyStats};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use observed::ObservedFeaturizer;
pub use qerror::QErrorWindow;
pub use recorder::{MetricsRecorder, NoopRecorder, Recorder};
pub use snapshot::MetricsSnapshot;
