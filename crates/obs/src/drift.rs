//! Page-Hinkley drift detection over a scalar quality signal.
//!
//! The paper's drift experiment (Section 5.5.1) shows learned estimators
//! degrading *silently* once the workload moves away from the training
//! snapshot; the CardEst benchmark study makes the same point for data
//! drift. [`PageHinkley`] turns that offline observation into an online
//! signal: feed it a stream of per-query quality samples (in this
//! codebase: `ln(q_error)` from the live [`crate::QErrorWindow`] feed) and
//! it raises a latched trigger when the running mean has shifted upward by
//! more than a configured magnitude — the classic Page-Hinkley cumulative
//! test, the same detector family the online-learning literature uses for
//! concept drift.
//!
//! The detector is a pure state machine over the fed samples: no clocks,
//! no threads, no allocation after construction. Determinism is the
//! point — an adaptation controller replaying the same sample stream must
//! make the same retrain decisions, which is what makes the control loop
//! testable end to end.

/// Tuning for a [`PageHinkley`] detector.
#[derive(Debug, Clone)]
pub struct PageHinkleyConfig {
    /// Magnitude tolerance: per-sample deviations below `delta` do not
    /// accumulate. Larger values ignore more noise.
    pub delta: f64,
    /// Detection threshold on the accumulated upward deviation. With
    /// `ln(q_error)` samples, `lambda = 1.0` roughly means "the recent
    /// mean q-error looks e× worse than history".
    pub lambda: f64,
    /// Samples required before the detector may trigger — a cold-start
    /// guard so the first few observations cannot fire it.
    pub min_samples: u64,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        PageHinkleyConfig {
            delta: 0.05,
            lambda: 2.0,
            min_samples: 30,
        }
    }
}

/// Observable state of a [`PageHinkley`] detector.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkleyStats {
    /// Samples observed since the last reset.
    pub samples: u64,
    /// Running mean of the observed samples.
    pub mean: f64,
    /// Current cumulative test statistic (`m_t - min(m_t)`).
    pub statistic: f64,
    /// Whether the trigger has latched.
    pub triggered: bool,
}

/// The Page-Hinkley cumulative-sum test for an upward mean shift (see the
/// module docs). Triggering is *latched*: once raised it stays raised
/// until [`reset`](PageHinkley::reset), so a controller polling the
/// detector cannot miss a detection between polls.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    cfg: PageHinkleyConfig,
    samples: u64,
    mean: f64,
    cumulative: f64,
    min_cumulative: f64,
    triggered: bool,
}

impl PageHinkley {
    /// A fresh detector.
    pub fn new(cfg: PageHinkleyConfig) -> Self {
        PageHinkley {
            cfg,
            samples: 0,
            mean: 0.0,
            cumulative: 0.0,
            min_cumulative: 0.0,
            triggered: false,
        }
    }

    /// Feed one sample. Non-finite samples are ignored (the upstream
    /// q-error feed already rejects them; this is defense in depth so a
    /// stray NaN can never wedge the test statistic). Returns the latched
    /// trigger state after the observation.
    pub fn observe(&mut self, sample: f64) -> bool {
        if !sample.is_finite() {
            return self.triggered;
        }
        self.samples += 1;
        // Welford running mean, then the PH cumulative deviation.
        self.mean += (sample - self.mean) / self.samples as f64;
        self.cumulative += sample - self.mean - self.cfg.delta;
        self.min_cumulative = self.min_cumulative.min(self.cumulative);
        if self.samples >= self.cfg.min_samples.max(1)
            && self.cumulative - self.min_cumulative > self.cfg.lambda
        {
            self.triggered = true;
        }
        self.triggered
    }

    /// Whether the trigger has latched.
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Samples observed since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Drop all state: history, statistic, and the latch. Called after a
    /// model swap (the new model starts with a clean history) and when a
    /// suspected drift is re-checked for hysteresis.
    pub fn reset(&mut self) {
        self.samples = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.min_cumulative = 0.0;
        self.triggered = false;
    }

    /// Snapshot of the detector state.
    pub fn stats(&self) -> PageHinkleyStats {
        PageHinkleyStats {
            samples: self.samples,
            mean: self.mean,
            statistic: self.cumulative - self.min_cumulative,
            triggered: self.triggered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PageHinkleyConfig {
        PageHinkleyConfig {
            delta: 0.05,
            lambda: 1.0,
            min_samples: 10,
        }
    }

    #[test]
    fn stable_stream_never_triggers() {
        let mut ph = PageHinkley::new(cfg());
        for i in 0..1000 {
            // ln(q) hovering near 0 with tiny deterministic jitter.
            let jitter = ((i * 37) % 11) as f64 / 100.0;
            assert!(!ph.observe(jitter));
        }
        assert!(!ph.triggered());
        assert_eq!(ph.samples(), 1000);
    }

    #[test]
    fn mean_shift_triggers_and_latches() {
        let mut ph = PageHinkley::new(cfg());
        for _ in 0..50 {
            ph.observe(0.1); // healthy: q-error ~1.1
        }
        assert!(!ph.triggered());
        for _ in 0..50 {
            ph.observe(2.3); // drifted: q-error ~10
        }
        assert!(ph.triggered(), "{:?}", ph.stats());
        // Latched: recovery of the signal does not clear it.
        for _ in 0..100 {
            ph.observe(0.1);
        }
        assert!(ph.triggered());
        // Only reset does.
        ph.reset();
        assert!(!ph.triggered());
        assert_eq!(ph.samples(), 0);
    }

    #[test]
    fn cold_start_guard_blocks_early_triggers() {
        let mut ph = PageHinkley::new(PageHinkleyConfig {
            min_samples: 20,
            ..cfg()
        });
        // A violently bad stream must still wait out min_samples.
        for i in 0..19 {
            ph.observe(5.0);
            assert!(!ph.triggered(), "triggered at sample {i}");
        }
        ph.observe(5.0);
        // From sample 20 on it may trigger (and with this stream, the
        // statistic is far past lambda... but a constant stream has zero
        // deviation from its own mean). A constant bad stream is not
        // drift — only a *shift* is.
        assert!(!ph.triggered());
        for _ in 0..30 {
            ph.observe(50.0);
        }
        assert!(ph.triggered());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut ph = PageHinkley::new(cfg());
        for _ in 0..20 {
            ph.observe(0.1);
        }
        let before = ph.stats();
        ph.observe(f64::NAN);
        ph.observe(f64::INFINITY);
        ph.observe(f64::NEG_INFINITY);
        assert_eq!(ph.stats(), before, "non-finite must be a no-op");
    }

    #[test]
    fn deterministic_replay() {
        let stream: Vec<f64> = (0..200).map(|i| if i < 100 { 0.2 } else { 3.0 }).collect();
        let run = |cfg: PageHinkleyConfig| {
            let mut ph = PageHinkley::new(cfg);
            let mut trigger_at = None;
            for (i, &s) in stream.iter().enumerate() {
                if ph.observe(s) && trigger_at.is_none() {
                    trigger_at = Some(i);
                }
            }
            (trigger_at, ph.stats())
        };
        let (a, sa) = run(cfg());
        let (b, sb) = run(cfg());
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(a.is_some() && a.unwrap() >= 100, "{a:?}");
    }
}
