//! Point-in-time metric snapshots with stable JSON and human-readable
//! text renderings.
//!
//! Stability contract of [`MetricsSnapshot::to_json`]: keys are emitted
//! in sorted (BTreeMap) order, latency values are integer nanoseconds,
//! and the only floats are the q-error statistics (guaranteed finite by
//! `SummaryError` and rendered with Rust's shortest-roundtrip formatter,
//! which is deterministic). Equal snapshots therefore always render to
//! byte-identical JSON — the property the CI perf-trajectory artifact
//! and the rendering regression test rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use qfe_core::metrics::ErrorSummary;

use crate::hist::HistogramSnapshot;

/// One coherent copy of every metric a recorder held, plus an optional
/// q-error window summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Latency histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Sliding-window q-error summary, when ground truth has been fed.
    pub qerror: Option<ErrorSummary>,
}

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 known to be finite. `{:?}` is Rust's shortest-roundtrip
/// float formatter: deterministic, always contains a `.` or exponent, and
/// valid JSON for finite values.
fn json_f64(v: f64) -> String {
    format!("{v:?}")
}

fn json_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape(k));
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent) — convenience for tests.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Merge a counter into the snapshot, adding to any existing value.
    /// Used by components that keep their own atomics (e.g. per-stage
    /// counters on the service) to fold them into one snapshot.
    pub fn merge_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Fold an entire snapshot into this one with every key rewritten to
    /// `<prefix><key>`. Counters add (so repeated merges accumulate),
    /// gauges and histograms are last-write-wins under the prefixed name.
    /// This is how a fleet-level snapshot absorbs per-shard snapshots:
    /// shard `a`'s `serve.answered` lands as `shard.a.serve.answered`,
    /// and the prefix keeps tenants from colliding. The q-error summary
    /// is *not* merged — quantiles from different windows don't compose;
    /// per-shard summaries stay on the per-shard snapshot.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            self.merge_counter(&format!("{prefix}{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(format!("{prefix}{k}"), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.insert(format!("{prefix}{k}"), h.clone());
        }
    }

    /// Sum of all counters whose name starts with `prefix` — convenient
    /// for asserting "any stage recorded something" in tests.
    pub fn counter_sum_with_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Stable JSON rendering (see module docs for the contract).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":");
        json_u64_map(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        json_u64_map(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum_nanos\":{},\"max_nanos\":{},\"mean_nanos\":{},\"p50_nanos\":{},\"p90_nanos\":{},\"p99_nanos\":{},\"buckets\":[",
                escape(k),
                h.count,
                h.sum_nanos,
                h.max_nanos,
                h.mean_nanos(),
                h.p50_nanos(),
                h.p90_nanos(),
                h.p99_nanos(),
            );
            for (j, (bucket, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"qerror\":");
        match &self.qerror {
            None => out.push_str("null"),
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"count\":{},\"mean\":{},\"median\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    s.count,
                    json_f64(s.mean),
                    json_f64(s.median),
                    json_f64(s.p90),
                    json_f64(s.p95),
                    json_f64(s.p99),
                    json_f64(s.max),
                );
            }
        }
        out.push('}');
        out
    }

    /// Write the JSON rendering to `path` (the CI artifact path).
    pub fn write_json_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Human-readable multi-line rendering for logs and demos.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<48} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<48} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("latency (µs):\n");
            let _ = writeln!(
                out,
                "  {:<48} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            );
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<48} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    k,
                    h.count,
                    h.mean_nanos() / 1_000,
                    h.p50_nanos() / 1_000,
                    h.p90_nanos() / 1_000,
                    h.p99_nanos() / 1_000,
                    h.max_nanos / 1_000,
                );
            }
        }
        match &self.qerror {
            None => out.push_str("q-error: no ground truth observed\n"),
            Some(s) => {
                let _ = writeln!(out, "q-error ({} samples): {}", s.count, s.table_row());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(3000));
        let mut s = MetricsSnapshot::default();
        s.counters.insert("serve.requests".into(), 3);
        s.counters.insert("chain.stage0.hits".into(), 2);
        s.gauges.insert("queue.depth".into(), 1);
        s.histograms.insert("e2e".into(), h.snapshot());
        s
    }

    #[test]
    fn json_is_stable_and_exact() {
        // The exact rendering is part of the snapshot contract: CI
        // artifacts and downstream tooling parse this.
        let expected = concat!(
            "{\"counters\":{\"chain.stage0.hits\":2,\"serve.requests\":3},",
            "\"gauges\":{\"queue.depth\":1},",
            "\"histograms\":{\"e2e\":{\"count\":3,\"sum_nanos\":3200,",
            "\"max_nanos\":3000,\"mean_nanos\":1066,\"p50_nanos\":127,",
            "\"p90_nanos\":3000,\"p99_nanos\":3000,\"buckets\":[[7,2],[12,1]]}},",
            "\"qerror\":null}",
        );
        assert_eq!(sample().to_json(), expected);
        // And it is deterministic across calls.
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn json_includes_qerror_when_present() {
        // q-errors are finite by construction (SummaryError guard).
        let mut s = sample();
        s.qerror = Some(ErrorSummary::from_errors(&[1.0, 2.0, 4.0]));
        let json = s.to_json();
        assert!(json.contains("\"qerror\":{\"count\":3"));
        assert!(json.contains("\"median\":2.0"));
        assert!(!json.contains("qerror\":null"));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        assert_eq!(
            MetricsSnapshot::default().to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"qerror\":null}"
        );
    }

    #[test]
    fn accessors_default_to_zero() {
        let s = sample();
        assert_eq!(s.counter("serve.requests"), 3);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("queue.depth"), 1);
        assert_eq!(s.gauge("missing"), 0);
        assert!(s.histogram("e2e").is_some());
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn merge_counter_adds() {
        let mut s = sample();
        s.merge_counter("serve.requests", 2);
        s.merge_counter("fresh", 1);
        assert_eq!(s.counter("serve.requests"), 5);
        assert_eq!(s.counter("fresh"), 1);
    }

    #[test]
    fn prefix_sum_covers_matching_counters() {
        let mut s = MetricsSnapshot::default();
        s.merge_counter("chain.stage0.hits", 2);
        s.merge_counter("chain.stage1.hits", 3);
        s.merge_counter("serve.requests", 9);
        assert_eq!(s.counter_sum_with_prefix("chain."), 5);
        assert_eq!(s.counter_sum_with_prefix("nope."), 0);
    }

    #[test]
    fn merge_prefixed_rewrites_and_accumulates() {
        let mut fleet = MetricsSnapshot::default();
        fleet.merge_counter("registry.routed", 7);
        let mut shard = sample();
        shard.qerror = Some(ErrorSummary::from_errors(&[1.0, 2.0]));
        fleet.merge_prefixed("shard.a.", &shard);
        fleet.merge_prefixed("shard.a.", &shard); // counters accumulate
        assert_eq!(fleet.counter("shard.a.serve.requests"), 6);
        assert_eq!(fleet.counter("registry.routed"), 7);
        assert_eq!(fleet.gauge("shard.a.queue.depth"), 1);
        assert!(fleet.histogram("shard.a.e2e").is_some());
        // Un-prefixed originals must not leak in.
        assert_eq!(fleet.counter("serve.requests"), 0);
        // Quantile summaries don't compose across windows.
        assert!(fleet.qerror.is_none());
    }

    #[test]
    fn text_rendering_mentions_every_section() {
        let text = sample().render_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("serve.requests"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("latency"));
        assert!(text.contains("e2e"));
        assert!(text.contains("q-error"));
    }

    #[test]
    fn keys_are_escaped() {
        let mut s = MetricsSnapshot::default();
        s.merge_counter("weird\"name\\with\nescapes", 1);
        let json = s.to_json();
        assert!(json.contains("weird\\\"name\\\\with\\nescapes"));
    }
}
