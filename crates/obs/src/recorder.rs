//! The [`Recorder`] trait instrumented code talks to, plus the two
//! implementations: [`NoopRecorder`] (observability off, near-zero cost)
//! and [`MetricsRecorder`] (the real name-keyed metric registry).
//!
//! Metric names are `&str` at the call boundary; instrumented components
//! precompute their names as owned `String`s at construction time, so the
//! per-observation path never formats or allocates. `MetricsRecorder`
//! resolves a name to its atomic through a `RwLock<BTreeMap>` — after the
//! first observation of a name this is an uncontended read-lock plus
//! relaxed atomic ops. The write lock is taken only when a name is seen
//! for the first time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::hist::LatencyHistogram;
use crate::snapshot::MetricsSnapshot;

/// Sink for instrumentation events.
///
/// Implementations must be cheap and infallible: instrumented code calls
/// these on hot paths and never inspects a result.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the counter named `name`.
    fn add(&self, name: &str, delta: u64);

    /// Record one latency observation under `name`.
    fn record(&self, name: &str, elapsed: Duration);

    /// Set the gauge named `name` to `value` (last write wins).
    fn set_gauge(&self, name: &str, value: u64);

    /// Increment the counter named `name` by one.
    fn incr(&self, name: &str) {
        self.add(name, 1);
    }
}

/// A recorder that drops everything. The default when observability is
/// off: every method is an empty body, so instrumentation costs one
/// virtual call and nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _name: &str, _delta: u64) {}

    fn record(&self, _name: &str, _elapsed: Duration) {}

    fn set_gauge(&self, _name: &str, _value: u64) {}
}

/// Name-keyed registries of atomics. `BTreeMap` keeps keys sorted, which
/// is what makes snapshot renderings stable without a sort pass.
#[derive(Debug, Default)]
struct Registries {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<LatencyHistogram>>>,
}

/// Resolve `name` in a registry, registering it on first use. Fast path
/// is a read-lock; the write lock is only taken for unseen names. Lock
/// poisoning is survived by adopting the inner map, matching the
/// recovery idiom used across the workspace (observability must never
/// take the serving path down).
fn resolve<T, F: FnOnce() -> T>(
    registry: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    init: F,
) -> Arc<T> {
    {
        let map = registry.read().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get(name) {
            return Arc::clone(entry);
        }
    }
    let mut map = registry.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(init())),
    )
}

/// The real metric sink: lock-free counters, gauges, and
/// [`LatencyHistogram`]s, each addressable by name, snapshottable as a
/// whole via [`MetricsRecorder::snapshot`].
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    registries: Registries,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Current value of the counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let map = self
            .registries
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current value of the gauge `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        let map = self
            .registries
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name).map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// The histogram registered under `name`, if any observation was ever
    /// recorded there.
    pub fn histogram(&self, name: &str) -> Option<Arc<LatencyHistogram>> {
        let map = self
            .registries
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name).map(Arc::clone)
    }

    /// Copy every metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self
                .registries
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect()
        };
        let gauges = {
            let map = self
                .registries
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect()
        };
        let histograms = {
            let map = self
                .registries
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            qerror: None,
        }
    }
}

impl Recorder for MetricsRecorder {
    fn add(&self, name: &str, delta: u64) {
        resolve(&self.registries.counters, name, || AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn record(&self, name: &str, elapsed: Duration) {
        resolve(&self.registries.histograms, name, LatencyHistogram::new).record(elapsed);
    }

    fn set_gauge(&self, name: &str, value: u64) {
        resolve(&self.registries.gauges, name, || AtomicU64::new(0))
            .store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRecorder::new();
        r.incr("a");
        r.add("a", 4);
        r.incr("b");
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn gauges_take_last_write() {
        let r = MetricsRecorder::new();
        r.set_gauge("depth", 7);
        r.set_gauge("depth", 3);
        assert_eq!(r.gauge("depth"), 3);
        assert_eq!(r.gauge("never"), 0);
    }

    #[test]
    fn histograms_register_on_first_observation() {
        let r = MetricsRecorder::new();
        assert!(r.histogram("lat").is_none());
        r.record("lat", Duration::from_micros(5));
        r.record("lat", Duration::from_micros(7));
        let h = r.histogram("lat").expect("registered");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_copies_everything() {
        let r = MetricsRecorder::new();
        r.add("hits", 10);
        r.set_gauge("depth", 2);
        r.record("lat", Duration::from_millis(1));
        let s = r.snapshot();
        assert_eq!(s.counters.get("hits"), Some(&10));
        assert_eq!(s.gauges.get("depth"), Some(&2));
        assert_eq!(s.histograms.get("lat").map(|h| h.count), Some(1));
        // The snapshot is detached: later writes don't affect it.
        r.add("hits", 1);
        assert_eq!(s.counters.get("hits"), Some(&10));
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let r = NoopRecorder;
        r.incr("x");
        r.add("x", 100);
        r.record("x", Duration::from_secs(1));
        r.set_gauge("x", 1);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let r = Arc::new(MetricsRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.incr("shared");
                        r.record("lat", Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared"), 8000);
        assert_eq!(r.histogram("lat").expect("registered").count(), 8000);
    }
}
