//! Lock-free log₂-bucketed latency histograms.
//!
//! A latency distribution spanning nanoseconds (a no-op stage skip) to
//! seconds (a stalled model) cannot be captured by linear buckets of any
//! fixed width. Powers of two give constant relative resolution (~a factor
//! of 2 per bucket, enough to tell 10 µs from 100 µs from 1 ms), a fixed
//! memory footprint, and an O(1) branch-free bucket index —
//! `64 - leading_zeros(nanos)` — so recording is two relaxed atomic adds
//! and one atomic max. No allocation, no lock, no floating point on the
//! hot path; p50/p90/p99 are *derived from the bucket counts* at snapshot
//! time instead of being maintained online.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one per possible bit length of a u64 nanosecond
/// count, plus bucket 0 for zero.
pub const BUCKETS: usize = 65;

/// Index of the bucket covering `nanos`: 0 for 0, otherwise the bit
/// length of the value (bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
fn bucket_of(nanos: u64) -> usize {
    (u64::BITS - nanos.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent latency histogram with log₂ buckets (see module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free; safe from any thread.
    pub fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state. The copy is taken counter-by-counter with
    /// relaxed loads, so under concurrent writes it is approximately (not
    /// transactionally) consistent — fine for observability.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile
/// derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[i]` covers
    /// `[2^(i-1), 2^i)` nanoseconds; bucket 0 is exactly zero).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds (exact).
    pub sum_nanos: u64,
    /// Largest observation in nanoseconds (exact).
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Upper-bound estimate of the `q`-quantile in nanoseconds, derived
    /// from the bucket counts: the inclusive upper edge of the bucket
    /// containing the rank-`⌈q·count⌉` observation (exact `max` is used
    /// for the top bucket). Returns 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Median upper bound (see [`quantile_nanos`](Self::quantile_nanos)).
    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90_nanos(&self) -> u64 {
        self.quantile_nanos(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99_nanos(&self) -> u64 {
        self.quantile_nanos(0.99)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs — the compact
    /// form used by the JSON rendering.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_edges_partition_the_range() {
        // Every value lands in exactly the bucket whose upper bound is the
        // smallest one >= the value.
        for v in [0u64, 1, 2, 7, 8, 100, 1_000_000, 1 << 40] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits a lower bucket");
            }
        }
    }

    #[test]
    fn records_and_summarizes() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record(Duration::from_micros(micros));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max_nanos, 5_000_000);
        // Mean: (9*10_000 + 5_000_000) / 10 = 509_000 ns.
        assert_eq!(s.mean_nanos(), 509_000);
        // p50 falls in the 10µs bucket: upper bound 2^14 - 1 = 16383 ns.
        assert_eq!(s.p50_nanos(), 16_383);
        // p99 = rank 10 = the 5ms outlier's bucket, clamped to exact max.
        assert_eq!(s.p99_nanos(), 5_000_000);
        assert!(s.p50_nanos() <= s.p90_nanos() && s.p90_nanos() <= s.p99_nanos());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_nanos(), 0);
        assert_eq!(s.quantile_nanos(0.99), 0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_bound_the_true_value_within_a_factor_of_two() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let s = h.snapshot();
        let p50 = s.p50_nanos();
        // True median 500µs; the log2 upper bound may overshoot by < 2x.
        assert!((500_000..1_048_576).contains(&p50), "p50 = {p50}");
        let p99 = s.p99_nanos();
        assert!((990_000..2_000_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}
