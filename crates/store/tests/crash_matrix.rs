//! The crash-point matrix: every fault kind, at every step of the save
//! protocol, under every crash durability outcome — recovery must always
//! come back with a checksum-valid checkpoint and a conserved bucket
//! count, and must never come back empty while at least one valid
//! checkpoint exists on the (simulated) disk.
//!
//! The scenarios are fully deterministic: [`ChaosFs`] faults are planted
//! by operation index, and [`MemFs::crash_with`] resolves unsynced state
//! the same way every run. A property test layers randomized fault
//! plans on top of the exhaustive sweep.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use qfe_store::{
    ChaosFs, CheckpointMeta, CheckpointStore, CrashStyle, Fault, FaultPlan, MemFs, StoreConfig,
    StoreFs,
};

const SEED_MODEL: &[u8] = &[0xAB; 96];
const CANDIDATE_MODEL: &[u8] = &[0xCD; 160];

fn meta(note: &str) -> CheckpointMeta {
    CheckpointMeta {
        kind: "GB + conjunctive".into(),
        qft: "conjunctive".into(),
        trained_at_unix_s: 1_700_000_000,
        sample_count: 64,
        note: note.into(),
    }
}

/// A store over `fs` with instant (no-sleep) retries.
fn store_over(fs: Arc<dyn StoreFs>) -> CheckpointStore {
    let mut store = CheckpointStore::open(fs, StoreConfig::new("/store")).expect("open store");
    store.set_sleeper(Arc::new(|_| {}));
    store
}

/// Fresh MemFs holding one durably-saved seed checkpoint.
fn seeded_mem() -> (Arc<MemFs>, u64) {
    let mem = Arc::new(MemFs::new());
    let store = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    let generation = store
        .save(&meta("seed"), SEED_MODEL.to_vec())
        .expect("seed save");
    (mem, generation)
}

/// Number of fs operations one clean `save` makes (protocol steps + GC),
/// measured rather than hard-coded so the matrix tracks the protocol.
fn ops_per_save() -> u64 {
    let (mem, _) = seeded_mem();
    let chaos = Arc::new(ChaosFs::new(
        Arc::clone(&mem) as Arc<dyn StoreFs>,
        FaultPlan::new(),
    ));
    let store = store_over(Arc::clone(&chaos) as Arc<dyn StoreFs>);
    let before = chaos.ops_seen();
    store
        .save(&meta("probe"), CANDIDATE_MODEL.to_vec())
        .expect("probe save");
    chaos.ops_seen() - before
}

/// One matrix cell: seed a store, attempt a save with `fault` planted
/// `offset` ops into it, crash with `style`, recover, and check the
/// invariants. Returns the recovered note for the caller's bookkeeping.
fn run_cell(offset: u64, fault: Fault, style: CrashStyle) -> String {
    let (mem, seed_gen) = seeded_mem();
    let chaos = Arc::new(ChaosFs::new(
        Arc::clone(&mem) as Arc<dyn StoreFs>,
        FaultPlan::new(),
    ));
    let store = store_over(Arc::clone(&chaos) as Arc<dyn StoreFs>);
    chaos.plant(chaos.ops_seen() + offset, fault);
    let save_result = store.save(&meta("candidate"), CANDIDATE_MODEL.to_vec());

    mem.crash_with(style);

    // Warm restart: a brand-new store over the post-crash filesystem.
    let recovered = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    let report = recovered.recover().expect("recovery must not error");
    let ctx = format!("offset={offset} fault={fault:?} style={style:?}");

    assert!(
        report.conserved(),
        "buckets not conserved ({ctx}): {report:?}"
    );
    let latest = report
        .latest
        .unwrap_or_else(|| panic!("empty recovery despite durable seed ({ctx})"));

    // Whatever came back must be one of the two models, byte-exact —
    // decode's checksum pass guarantees it wasn't torn.
    match latest.note.as_str() {
        "seed" => {
            assert_eq!(latest.generation, seed_gen, "{ctx}");
            assert_eq!(latest.model, SEED_MODEL, "{ctx}");
        }
        "candidate" => {
            assert_eq!(latest.model, CANDIDATE_MODEL, "{ctx}");
            assert!(latest.generation > seed_gen, "{ctx}");
        }
        other => panic!("recovered unexpected checkpoint {other:?} ({ctx})"),
    }

    // If the save reported success, the candidate must have survived any
    // crash — that is the whole point of the sync-before-rename protocol.
    // (Exception: a fault *after* the dir sync, i.e. during GC, cannot
    // lose the already-durable candidate either, so the rule is simply:
    // reported success ⇒ candidate recovered.)
    if save_result.is_ok() {
        assert_eq!(
            latest.note, "candidate",
            "save reported durable success but crash lost it ({ctx})"
        );
    }

    // Recovery never deletes: every byte that was on disk is still on
    // disk under some name (valid, quarantined, skipped, or unreadable).
    let survivors = mem.list(&PathBuf::from("/store")).expect("list");
    assert!(
        survivors.len() >= report.valid,
        "files vanished during recovery ({ctx})"
    );

    latest.note
}

#[test]
fn every_fault_at_every_protocol_step_recovers_valid() {
    let n_ops = ops_per_save();
    assert!(
        (4..=16).contains(&n_ops),
        "save protocol measured at {n_ops} ops; matrix assumptions broken"
    );
    let faults = [
        Fault::TornWrite,
        Fault::ShortWrite,
        Fault::Enospc,
        Fault::FsyncFail,
        Fault::Transient(2),
        Fault::CrashPoint,
    ];
    let styles = [
        CrashStyle::TearUnsynced,
        CrashStyle::DropUnsynced,
        CrashStyle::TearKeepRenames,
    ];
    let mut cells = 0;
    for offset in 0..n_ops {
        for fault in faults {
            for style in styles {
                run_cell(offset, fault, style);
                cells += 1;
            }
        }
    }
    assert!(cells >= 72, "matrix ran only {cells} cells");
}

#[test]
fn transient_faults_never_lose_a_save() {
    // Transient errors are absorbed by retry: the save must succeed and
    // the candidate must be the recovered generation at every offset.
    let n_ops = ops_per_save();
    for offset in 0..n_ops {
        let note = run_cell(offset, Fault::Transient(2), CrashStyle::TearUnsynced);
        assert_eq!(
            note, "candidate",
            "retry failed to absorb transient at {offset}"
        );
    }
}

#[test]
fn crash_before_rename_preserves_seed() {
    // Crash points planted inside the write/sync steps (before the
    // rename publishes) must always fall back to the seed.
    for offset in 0..2 {
        let note = run_cell(offset, Fault::CrashPoint, CrashStyle::TearUnsynced);
        assert_eq!(
            note, "seed",
            "unpublished candidate leaked at offset {offset}"
        );
    }
}

#[test]
fn double_fault_still_recovers() {
    // Two independent faults in one save: ENOSPC mid-write on the first
    // attempt's op and a crash right after — recovery still yields the
    // seed.
    let (mem, _) = seeded_mem();
    let chaos = Arc::new(ChaosFs::new(
        Arc::clone(&mem) as Arc<dyn StoreFs>,
        FaultPlan::new(),
    ));
    let store = store_over(Arc::clone(&chaos) as Arc<dyn StoreFs>);
    let base = chaos.ops_seen();
    chaos.plant(base, Fault::Enospc);
    chaos.plant(base + 1, Fault::CrashPoint);
    assert!(store
        .save(&meta("candidate"), CANDIDATE_MODEL.to_vec())
        .is_err());
    mem.crash();
    let recovered = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    let report = recovered.recover().expect("recover");
    assert!(report.conserved());
    assert_eq!(report.latest.expect("seed survives").note, "seed");
}

#[test]
fn recovered_model_bytes_decode_to_compiled_form() {
    // A real trained forest through the crash → recover → decode cycle.
    // The wire format carries only the enum trees; the flattened compiled
    // form (node arrays + quantization table) is rebuilt at decode time,
    // so a warm restart serves at compiled speed from its first query
    // without the snapshot format ever changing.
    use qfe_ml::train::Regressor;
    let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![(i % 16) as f32]).collect();
    let y: Vec<f32> = rows.iter().map(|r| r[0] * 3.0 + 1.0).collect();
    let x = qfe_ml::Matrix::from_rows(&rows);
    let mut gb = qfe_ml::Gbdt::new(qfe_ml::GbdtConfig {
        n_trees: 8,
        ..qfe_ml::GbdtConfig::default()
    });
    gb.try_fit(&x, &y).expect("fit");
    let bytes = qfe_ml::gbdt_to_bytes(&gb);

    let mem = Arc::new(MemFs::new());
    let store = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    store.save(&meta("trained"), bytes.clone()).expect("save");
    mem.crash_with(CrashStyle::DropUnsynced);

    let recovered = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    let report = recovered.recover().expect("recover");
    let latest = report.latest.expect("durable save survives the crash");
    assert_eq!(latest.model, bytes, "byte-exact recovery");
    let restored = qfe_ml::gbdt_from_bytes(&latest.model).expect("decode");
    assert!(
        restored.is_compiled(),
        "decode must rebuild the compiled inference form"
    );
    assert_eq!(
        restored.predict_batch(&x),
        gb.predict_batch(&x),
        "restored compiled forest must predict bit-identically"
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(128))]

    /// Randomized fault plans: up to 4 faults scattered over the save
    /// window, any crash style. The invariants never bend.
    #[test]
    fn random_fault_plans_always_recover_valid(
        offsets in proptest::collection::vec(0u64..12, 0..4),
        kinds in proptest::collection::vec(0u8..6, 4),
        style_pick in 0u8..3,
    ) {
        let style = match style_pick {
            0 => CrashStyle::TearUnsynced,
            1 => CrashStyle::DropUnsynced,
            _ => CrashStyle::TearKeepRenames,
        };
        let (mem, _) = seeded_mem();
        let chaos = Arc::new(ChaosFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            FaultPlan::new(),
        ));
        let store = store_over(Arc::clone(&chaos) as Arc<dyn StoreFs>);
        let base = chaos.ops_seen();
        for (i, off) in offsets.iter().enumerate() {
            let fault = match kinds[i % kinds.len()] {
                0 => Fault::TornWrite,
                1 => Fault::ShortWrite,
                2 => Fault::Enospc,
                3 => Fault::FsyncFail,
                4 => Fault::Transient(1),
                _ => Fault::CrashPoint,
            };
            chaos.plant(base + off, fault);
        }
        let save_result = store.save(&meta("candidate"), CANDIDATE_MODEL.to_vec());
        mem.crash_with(style);

        let recovered = store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
        let report = recovered.recover().expect("recover");
        prop_assert!(report.conserved());
        let latest = report.latest.expect("seed was durable before the faulted save");
        prop_assert!(latest.note == "seed" || latest.note == "candidate");
        prop_assert!(latest.model == SEED_MODEL || latest.model == CANDIDATE_MODEL);
        if save_result.is_ok() {
            prop_assert_eq!(latest.note, "candidate");
        }
    }
}
