//! An in-memory filesystem that models durability, not just storage.
//!
//! [`MemFs`] tracks, per file, both the *visible* content (what reads see
//! now) and the *durable* content (what a power loss would preserve), and
//! treats renames as durable only once their directory has been synced —
//! the same contract [`StoreFs`] documents for the real filesystem. A
//! test drives the store normally, then calls [`MemFs::crash`] to
//! simulate pulling the plug: everything not yet durable is lost or torn,
//! exactly as a disk would lose it, and recovery runs against the wreck.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::fs::StoreFs;

/// How [`MemFs::crash_with`] treats state that was never made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Unsynced file content survives as a torn prefix (half the bytes) —
    /// the classic partially-persisted write that recovery must detect by
    /// checksum and quarantine. Un-dir-synced renames roll back.
    TearUnsynced,
    /// Unsynced files vanish entirely; un-dir-synced renames roll back.
    /// Models a crash before the page cache wrote anything back.
    DropUnsynced,
    /// Unsynced file content tears, but renames *survive* even without a
    /// directory sync — the other legal outcome of an un-synced rename
    /// (the dir entry happened to reach disk first).
    TearKeepRenames,
}

#[derive(Debug, Default)]
struct Inner {
    dirs: BTreeSet<PathBuf>,
    /// What reads and lists see right now.
    visible: BTreeMap<PathBuf, Vec<u8>>,
    /// Per current visible name: content guaranteed durable (synced).
    synced: BTreeMap<PathBuf, Vec<u8>>,
    /// Renames applied to `visible`/`synced` but not yet committed by a
    /// directory sync, oldest first.
    pending_renames: Vec<(PathBuf, PathBuf)>,
}

/// See the module docs.
#[derive(Debug, Default)]
pub struct MemFs {
    inner: Mutex<Inner>,
}

impl MemFs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Simulate power loss with the worst-case default
    /// ([`CrashStyle::TearUnsynced`]): visible state is rebuilt from what
    /// was actually durable. After this, the filesystem is usable again —
    /// run recovery against it.
    pub fn crash(&self) {
        self.crash_with(CrashStyle::TearUnsynced);
    }

    /// Simulate power loss with an explicit durability outcome for
    /// unsynced state. Deterministic: the same pre-crash history always
    /// yields the same post-crash filesystem.
    pub fn crash_with(&self, style: CrashStyle) {
        let mut inner = self.lock();
        // 1. Un-dir-synced renames: roll back (or keep, per style).
        if style != CrashStyle::TearKeepRenames {
            let pending = std::mem::take(&mut inner.pending_renames);
            for (from, to) in pending.into_iter().rev() {
                if let Some(content) = inner.visible.remove(&to) {
                    inner.visible.insert(from.clone(), content);
                }
                if let Some(content) = inner.synced.remove(&to) {
                    inner.synced.insert(from, content);
                }
            }
        } else {
            inner.pending_renames.clear();
        }
        // 2. File content: only synced bytes survive intact; everything
        // else tears or vanishes.
        let survivors: BTreeMap<PathBuf, Vec<u8>> = inner
            .visible
            .iter()
            .filter_map(|(path, content)| match inner.synced.get(path) {
                Some(durable) => Some((path.clone(), durable.clone())),
                None => match style {
                    CrashStyle::DropUnsynced => None,
                    CrashStyle::TearUnsynced | CrashStyle::TearKeepRenames => {
                        let torn = content[..content.len() / 2].to_vec();
                        Some((path.clone(), torn))
                    }
                },
            })
            .collect();
        inner.visible = survivors.clone();
        inner.synced = survivors;
    }

    /// Number of files currently visible (test helper).
    pub fn file_count(&self) -> usize {
        self.lock().visible.len()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl StoreFs for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.lock()
            .visible
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        inner.visible.insert(path.to_path_buf(), bytes.to_vec());
        // Overwriting invalidates any previous durability of this name.
        inner.synced.remove(path);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        let content = inner
            .visible
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))?;
        inner.synced.insert(path.to_path_buf(), content);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        let content = inner.visible.remove(from).ok_or_else(|| not_found(from))?;
        inner.visible.insert(to.to_path_buf(), content);
        if let Some(durable) = inner.synced.remove(from) {
            inner.synced.insert(to.to_path_buf(), durable);
        }
        inner
            .pending_renames
            .push((from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        // Commit every pending rename whose names live in `dir`.
        inner
            .pending_renames
            .retain(|(from, to)| from.parent() != Some(dir) && to.parent() != Some(dir));
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let inner = self.lock();
        Ok(inner
            .visible
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.lock().dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        inner.visible.remove(path).ok_or_else(|| not_found(path))?;
        inner.synced.remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let inner = self.lock();
        inner.visible.contains_key(path) || inner.dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_write_tears_on_crash() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"0123456789").unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"01234", "torn to half");
    }

    #[test]
    fn unsynced_write_vanishes_under_drop_style() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"0123456789").unwrap();
        fs.crash_with(CrashStyle::DropUnsynced);
        assert!(fs.read(&p("/d/a")).is_err());
    }

    #[test]
    fn synced_write_survives_crash() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"payload").unwrap();
        fs.sync_file(&p("/d/a")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"payload");
    }

    #[test]
    fn unsynced_rename_rolls_back_on_crash() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a.tmp"), b"payload").unwrap();
        fs.sync_file(&p("/d/a.tmp")).unwrap();
        fs.rename(&p("/d/a.tmp"), &p("/d/a")).unwrap();
        // No sync_dir: the rename is not durable.
        fs.crash();
        assert!(fs.read(&p("/d/a")).is_err(), "rename rolled back");
        assert_eq!(fs.read(&p("/d/a.tmp")).unwrap(), b"payload");
    }

    #[test]
    fn unsynced_rename_can_also_survive() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a.tmp"), b"payload").unwrap();
        fs.sync_file(&p("/d/a.tmp")).unwrap();
        fs.rename(&p("/d/a.tmp"), &p("/d/a")).unwrap();
        fs.crash_with(CrashStyle::TearKeepRenames);
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"payload");
        assert!(fs.read(&p("/d/a.tmp")).is_err());
    }

    #[test]
    fn dir_synced_rename_survives_crash() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write_all(&p("/d/a.tmp"), b"payload").unwrap();
        fs.sync_file(&p("/d/a.tmp")).unwrap();
        fs.rename(&p("/d/a.tmp"), &p("/d/a")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"payload");
        assert!(fs.read(&p("/d/a.tmp")).is_err());
    }

    #[test]
    fn overwrite_invalidates_previous_durability() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"old-content").unwrap();
        fs.sync_file(&p("/d/a")).unwrap();
        fs.write_all(&p("/d/a"), b"new!").unwrap();
        fs.crash();
        // The overwrite was never synced: torn new content, not old.
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"ne");
    }

    #[test]
    fn list_scopes_to_directory() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"x").unwrap();
        fs.write_all(&p("/d/sub/b"), b"y").unwrap();
        fs.write_all(&p("/e/c"), b"z").unwrap();
        assert_eq!(fs.list(&p("/d")).unwrap(), vec![p("/d/a")]);
    }

    #[test]
    fn remove_and_exists() {
        let fs = MemFs::new();
        fs.write_all(&p("/d/a"), b"x").unwrap();
        assert!(fs.exists(&p("/d/a")));
        fs.remove(&p("/d/a")).unwrap();
        assert!(!fs.exists(&p("/d/a")));
        assert!(fs.remove(&p("/d/a")).is_err());
    }
}
