//! Durable model store: crash-safe checkpointing and recovery for
//! trained cardinality estimators.
//!
//! A serving process that adapts its model online (see `qfe-serve`) has
//! state worth keeping: the currently-published estimator embodies
//! training plus every accepted adaptation since. This crate persists
//! that state so a restart resumes from the last accepted model instead
//! of a cold baseline — and does so under a hostile-filesystem threat
//! model: torn writes, short writes, ENOSPC, failed fsyncs, and crashes
//! between any two syscalls.
//!
//! The pieces:
//! - [`fs::StoreFs`] — the narrow filesystem boundary everything goes
//!   through; [`fs::RealFs`] for production.
//! - [`mem::MemFs`] — in-memory filesystem that models *durability*
//!   (synced vs merely visible) and can simulate power loss.
//! - [`chaos::ChaosFs`] — deterministic fault injector: plants torn
//!   writes, transient errors, and crash points at exact protocol steps.
//! - [`format::Checkpoint`] — the checksummed, versioned on-disk frame.
//! - [`store::CheckpointStore`] — atomic save (write-temp → fsync →
//!   rename → dir-sync), scavenging recovery that quarantines damage
//!   and never deletes, retention GC with pinning, and retry-with-
//!   backoff for transient errors. Emits `persist.*` metrics through
//!   `qfe-obs`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod chaos;
pub mod format;
pub mod fs;
pub mod mem;
pub mod store;

pub use chaos::{ChaosFs, Fault, FaultPlan};
pub use format::{Checkpoint, FormatError, CHECKPOINT_MAGIC, MANIFEST_VERSION};
pub use fs::{RealFs, StoreFs};
pub use mem::{CrashStyle, MemFs};
pub use store::{CheckpointMeta, CheckpointStore, RecoveryReport, RetryPolicy, StoreConfig};
