//! The pluggable filesystem boundary.
//!
//! Every byte the checkpoint store moves goes through [`StoreFs`], so a
//! test can swap the real filesystem for an in-memory one
//! ([`crate::mem::MemFs`]) or a fault injector ([`crate::chaos::ChaosFs`])
//! and exercise every failure mode — torn writes, failed fsyncs, crashes
//! between any two steps — deterministically, without touching disk.
//!
//! The trait is deliberately narrow: exactly the operations the
//! write-temp → fsync → rename → dir-sync protocol needs, with
//! whole-file reads and writes (checkpoints are single-digit megabytes;
//! streaming would buy nothing and cost fault-injection coverage).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Filesystem operations the checkpoint store depends on.
///
/// Durability contract implementations must honor:
/// - [`write_all`](StoreFs::write_all) makes data *visible*, not durable.
/// - [`sync_file`](StoreFs::sync_file) makes a file's *content* durable.
/// - [`rename`](StoreFs::rename) atomically replaces the target name; the
///   *name change* becomes durable only after
///   [`sync_dir`](StoreFs::sync_dir) on the parent directory.
///
/// A crash may lose anything not yet durable: unsynced file content can
/// come back absent, empty, or torn; an un-dir-synced rename can come
/// back under either name. Recovery is written against exactly this
/// model.
pub trait StoreFs: Send + Sync {
    /// Read the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create (or truncate) `path` and write all of `bytes`. Visible on
    /// return, durable only after [`sync_file`](StoreFs::sync_file).
    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// fsync the file's content (and metadata) to durable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// fsync the directory, making completed renames/creations in it
    /// durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// List the files (not subdirectories) directly under `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Delete a file. Only retention GC calls this — recovery never
    /// deletes anything, it quarantines via [`rename`](StoreFs::rename).
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem, via `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // POSIX idiom for making directory-entry updates durable.
        fs::File::open(dir)?.sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qfe-store-realfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_fs_round_trip() {
        let fs = RealFs;
        let dir = tmp_dir("rt");
        fs.create_dir_all(&dir).unwrap();
        let tmp = dir.join("a.tmp");
        let fin = dir.join("a.bin");
        fs.write_all(&tmp, b"hello").unwrap();
        fs.sync_file(&tmp).unwrap();
        fs.rename(&tmp, &fin).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert!(!fs.exists(&tmp));
        assert!(fs.exists(&fin));
        assert_eq!(fs.read(&fin).unwrap(), b"hello");
        assert_eq!(fs.list(&dir).unwrap(), vec![fin.clone()]);
        fs.remove(&fin).unwrap();
        assert!(fs.list(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_read_missing_is_io_error() {
        let fs = RealFs;
        let dir = tmp_dir("missing");
        assert!(fs.read(&dir.join("nope")).is_err());
        assert!(!fs.exists(&dir.join("nope")));
    }
}
