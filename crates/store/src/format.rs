//! The on-disk checkpoint format: a versioned manifest wrapping an
//! opaque model snapshot, integrity-checked end to end.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     "QFECKPT1"                      8 bytes
//! version   u32 manifest version            4   ← outside the checksum
//! checksum  FNV-1a-64 of the payload        8
//! payload:
//!   generation u64                          8
//!   kind:  len u32 + utf8                   (estimator name, "GB + conjunctive")
//!   qft:   len u32 + utf8                   (featurizer name, "conjunctive")
//!   trained_at_unix_s u64                   8
//!   sample_count u64                        8
//!   note:  len u32 + utf8                   (free-form provenance)
//!   model: len u32 + bytes                  (opaque, self-validating snapshot)
//! ```
//!
//! The version field sits *outside* the checksummed payload on purpose: a
//! checkpoint written by a future release with a different payload layout
//! must still be recognizable as "valid but newer" rather than
//! misparsed. Decoding checks magic → version → checksum → structure, so
//! an unsupported-but-higher version is a typed
//! [`FormatError::UnsupportedVersion`] (the file is left untouched for
//! the newer binary that owns it), while any bit damage inside the
//! supported format is caught by the checksum before structural parsing.
//!
//! The FNV-1a checksum is [`qfe_ml::serialize::fnv1a64`] — the same hash
//! the model frames use, so one implementation guards every layer.

use qfe_ml::serialize::{fnv1a64, Reader};

/// Magic header of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"QFECKPT1";

/// The manifest version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Longest accepted string field (kind/qft/note), in bytes.
const MAX_STRING: usize = 4096;

/// Largest accepted model snapshot, in bytes (a hard sanity bound — the
/// paper's models are kilobytes to low megabytes).
const MAX_MODEL: usize = 256 * 1024 * 1024;

/// Errors from decoding a checkpoint file.
#[derive(Debug, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong or truncated magic header — not a checkpoint file.
    BadMagic,
    /// The file ended before the declared structure was complete.
    Truncated,
    /// The stored checksum does not match the payload: torn/short write
    /// or bit rot. Recovery quarantines these.
    ChecksumMismatch,
    /// Structurally invalid (bad utf8, implausible length) despite a
    /// self-consistent checksum.
    Corrupt(&'static str),
    /// Written by a newer build: recognizable, not readable. Recovery
    /// skips (and counts) these without touching the file.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a QFECKPT1 checkpoint"),
            FormatError::Truncated => write!(f, "checkpoint truncated"),
            FormatError::ChecksumMismatch => {
                write!(f, "checkpoint corrupted (checksum mismatch)")
            }
            FormatError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            FormatError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint manifest version {found} is newer than supported {supported}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// A decoded checkpoint: manifest metadata plus the opaque model
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Store-assigned generation — strictly increasing across saves,
    /// never reused even across restarts.
    pub generation: u64,
    /// Estimator name, e.g. `GB + conjunctive` (provenance + a sanity
    /// check at restore time).
    pub kind: String,
    /// Featurizer (QFT) name the model was trained under.
    pub qft: String,
    /// Wall-clock seconds since the Unix epoch when the model finished
    /// training (0 when unknown).
    pub trained_at_unix_s: u64,
    /// Training-set size behind this model (0 when unknown).
    pub sample_count: u64,
    /// Free-form provenance note ("initial", "adapt swap", …).
    pub note: String,
    /// The opaque, self-validating model snapshot
    /// (e.g. a `QFELE001` learned-estimator frame).
    pub model: Vec<u8>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>, what: &'static str) -> Result<String, FormatError> {
    let len = r.u32().map_err(|_| FormatError::Truncated)? as usize;
    if len > MAX_STRING {
        return Err(FormatError::Corrupt(what));
    }
    let bytes = r.bytes(len).map_err(|_| FormatError::Truncated)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| FormatError::Corrupt(what))
}

impl Checkpoint {
    /// Encode into the on-disk frame (see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(
            8 + 12 + self.kind.len() + self.qft.len() + self.note.len() + 16 + 4 + self.model.len(),
        );
        payload.extend_from_slice(&self.generation.to_le_bytes());
        put_str(&mut payload, &self.kind);
        put_str(&mut payload, &self.qft);
        payload.extend_from_slice(&self.trained_at_unix_s.to_le_bytes());
        payload.extend_from_slice(&self.sample_count.to_le_bytes());
        put_str(&mut payload, &self.note);
        payload.extend_from_slice(&(self.model.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.model);

        let mut out = Vec::with_capacity(8 + 4 + 8 + payload.len());
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a checkpoint file.
    ///
    /// # Errors
    /// Never panics: magic, version, checksum, and structure are checked
    /// in that order, and each failure is a distinct [`FormatError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, FormatError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() || &bytes[..8] != CHECKPOINT_MAGIC {
            return Err(FormatError::BadMagic);
        }
        if bytes.len() < 12 {
            return Err(FormatError::Truncated);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version > MANIFEST_VERSION {
            return Err(FormatError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        if version == 0 {
            return Err(FormatError::Corrupt("manifest version 0"));
        }
        if bytes.len() < 20 {
            return Err(FormatError::Truncated);
        }
        let stored = u64::from_le_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
        ]);
        let payload = &bytes[20..];
        if fnv1a64(payload) != stored {
            return Err(FormatError::ChecksumMismatch);
        }
        let mut r = Reader::new(payload);
        let generation = r.u64().map_err(|_| FormatError::Truncated)?;
        let kind = get_str(&mut r, "kind")?;
        let qft = get_str(&mut r, "qft")?;
        let trained_at_unix_s = r.u64().map_err(|_| FormatError::Truncated)?;
        let sample_count = r.u64().map_err(|_| FormatError::Truncated)?;
        let note = get_str(&mut r, "note")?;
        let model_len = r.u32().map_err(|_| FormatError::Truncated)? as usize;
        if model_len > MAX_MODEL {
            return Err(FormatError::Corrupt("implausible model size"));
        }
        let model = r
            .bytes(model_len)
            .map_err(|_| FormatError::Truncated)?
            .to_vec();
        if !r.finished() {
            return Err(FormatError::Corrupt("trailing bytes"));
        }
        Ok(Checkpoint {
            generation,
            kind,
            qft,
            trained_at_unix_s,
            sample_count,
            note,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            generation: 42,
            kind: "GB + conjunctive".into(),
            qft: "conjunctive".into(),
            trained_at_unix_s: 1_700_000_000,
            sample_count: 1_500,
            note: "adapt swap".into(),
            model: (0u16..700).map(|i| (i % 251) as u8).collect(),
        }
    }

    #[test]
    fn round_trip() {
        let ck = sample();
        assert_eq!(Checkpoint::decode(&ck.encode()).unwrap(), ck);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bit_flips_rejected() {
        let clean = sample().encode();
        for pos in (0..clean.len()).step_by(3) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            assert!(Checkpoint::decode(&bytes).is_err(), "flip at byte {pos}");
        }
    }

    #[test]
    fn higher_version_is_typed_not_fatal() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            FormatError::UnsupportedVersion {
                found: 7,
                supported: MANIFEST_VERSION
            }
        );
    }

    #[test]
    fn version_zero_is_corrupt() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            FormatError::Corrupt("manifest version 0")
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(9);
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            FormatError::ChecksumMismatch
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'Z';
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            FormatError::BadMagic
        );
        assert_eq!(Checkpoint::decode(b"").unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn empty_model_and_strings_round_trip() {
        let ck = Checkpoint {
            generation: 0,
            kind: String::new(),
            qft: String::new(),
            trained_at_unix_s: 0,
            sample_count: 0,
            note: String::new(),
            model: Vec::new(),
        };
        assert_eq!(Checkpoint::decode(&ck.encode()).unwrap(), ck);
    }
}
