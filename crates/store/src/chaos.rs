//! Deterministic filesystem fault injection.
//!
//! [`ChaosFs`] wraps any [`StoreFs`] and injects failures by *operation
//! index*: every trait call the store makes increments a counter, and a
//! [`FaultPlan`] maps indices to faults. Because the store's save
//! protocol is a fixed sequence of operations (write-temp, fsync file,
//! rename, fsync dir — plus recovery's reads and lists), planting a
//! fault at index *i* reproduces exactly the same failure at exactly the
//! same protocol step, every run. That turns "what if the disk died
//! between rename and directory sync?" into a table-driven test.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fs::StoreFs;

/// A single injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A write persists only a prefix of the bytes and reports failure —
    /// the classic torn write (power blinked mid-`write(2)`).
    TornWrite,
    /// A write persists only a prefix of the bytes and reports *success*
    /// — the nastiest case: a short write the caller never noticed. Only
    /// the checksum can catch this one later.
    ShortWrite,
    /// The device is full: the write persists a prefix and fails with
    /// the raw `ENOSPC` OS error (`StorageFull` on toolchains that name
    /// that kind; we stay on the raw code for MSRV 1.82).
    Enospc,
    /// `fsync` fails with an I/O error; the data must be assumed
    /// non-durable.
    FsyncFail,
    /// The operation fails with [`io::ErrorKind::Interrupted`] this many
    /// times, then succeeds — the retry-with-backoff path exists for
    /// exactly this.
    Transient(u32),
    /// Simulated process death at this operation: it and every later
    /// operation fail. The test then crashes the underlying
    /// [`MemFs`](crate::MemFs) (or kills the process, for the real fs)
    /// and runs recovery.
    CrashPoint,
}

/// Operation index → fault. Indices count *logical* operations: the
/// retries a [`Fault::Transient`] absorbs do not advance the index, so a
/// plan stays aligned with the store's protocol steps regardless of the
/// retry policy in front of it.
pub type FaultPlan = BTreeMap<u64, Fault>;

/// See the module docs.
pub struct ChaosFs {
    inner: Arc<dyn StoreFs>,
    plan: Mutex<FaultPlan>,
    next_op: AtomicU64,
    crashed: AtomicBool,
}

/// `ENOSPC` as a raw OS error code (portable enough for the platforms
/// CI runs on; `io::ErrorKind::StorageFull` is not nameable at MSRV).
pub const ENOSPC: i32 = 28;

/// How many bytes of a faulted write reach the underlying fs.
fn torn_len(total: usize) -> usize {
    total / 3
}

impl ChaosFs {
    /// Wrap `inner`, injecting the faults in `plan`.
    pub fn new(inner: Arc<dyn StoreFs>, plan: FaultPlan) -> Self {
        ChaosFs {
            inner,
            plan: Mutex::new(plan),
            next_op: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Index the next operation will get — lets tests discover protocol
    /// lengths by dry-running a plan-free ChaosFs.
    pub fn ops_seen(&self) -> u64 {
        self.next_op.load(Ordering::SeqCst)
    }

    /// True once a [`Fault::CrashPoint`] has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Schedule `fault` at operation index `idx` (replacing any fault
    /// already planned there) — lets a test dry-run a protocol to learn
    /// its op count, then plant faults relative to the current index.
    pub fn plant(&self, idx: u64, fault: Fault) {
        self.plan
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(idx, fault);
    }

    fn crashed_err() -> io::Error {
        io::Error::other("simulated crash: process is dead")
    }

    /// Fault lookup for the current op. Consumes the op index except when
    /// a `Transient` absorbs the call (so its retry replays the same
    /// index).
    fn take_fault(&self) -> Result<Option<Fault>, io::Error> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(Self::crashed_err());
        }
        let mut plan = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        let idx = self.next_op.load(Ordering::SeqCst);
        match plan.get_mut(&idx) {
            Some(Fault::Transient(n)) => {
                if *n > 0 {
                    *n -= 1;
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected transient fault",
                    ));
                }
                plan.remove(&idx);
                self.next_op.fetch_add(1, Ordering::SeqCst);
                Ok(None)
            }
            Some(&mut fault) => {
                plan.remove(&idx);
                self.next_op.fetch_add(1, Ordering::SeqCst);
                if fault == Fault::CrashPoint {
                    self.crashed.store(true, Ordering::SeqCst);
                    return Err(Self::crashed_err());
                }
                Ok(Some(fault))
            }
            None => {
                self.next_op.fetch_add(1, Ordering::SeqCst);
                Ok(None)
            }
        }
    }

    /// Non-write operations can't tear; any write-shaped fault scheduled
    /// on them degrades to a plain I/O error.
    fn fault_to_error(fault: Fault) -> io::Error {
        match fault {
            Fault::Enospc => io::Error::from_raw_os_error(ENOSPC),
            _ => io::Error::other("injected I/O fault"),
        }
    }
}

impl StoreFs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.take_fault()? {
            None => self.inner.read(path),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn write_all(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.write_all(path, bytes),
            Some(Fault::TornWrite) => {
                self.inner
                    .write_all(path, &bytes[..torn_len(bytes.len())])?;
                Err(io::Error::other("injected torn write"))
            }
            Some(Fault::ShortWrite) => {
                // The silent one: partial data, successful return.
                self.inner.write_all(path, &bytes[..torn_len(bytes.len())])
            }
            Some(Fault::Enospc) => {
                self.inner
                    .write_all(path, &bytes[..torn_len(bytes.len())])?;
                Err(io::Error::from_raw_os_error(ENOSPC))
            }
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.sync_file(path),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.rename(from, to),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.sync_dir(dir),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.take_fault()? {
            None => self.inner.list(dir),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.create_dir_all(dir),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.take_fault()? {
            None => self.inner.remove(path),
            Some(f) => Err(Self::fault_to_error(f)),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are metadata-only and not fault-injected (they
        // don't move bytes and injecting here would desync op indices
        // between plans that do and don't probe).
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFs;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn torn_write_leaves_prefix_and_fails() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem.clone(), FaultPlan::from([(0, Fault::TornWrite)]));
        assert!(fs.write_all(&p("/d/a"), b"012345678").is_err());
        assert_eq!(mem.read(&p("/d/a")).unwrap(), b"012");
    }

    #[test]
    fn short_write_succeeds_silently_with_partial_data() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem.clone(), FaultPlan::from([(0, Fault::ShortWrite)]));
        fs.write_all(&p("/d/a"), b"012345678").unwrap();
        assert_eq!(mem.read(&p("/d/a")).unwrap(), b"012");
    }

    #[test]
    fn enospc_is_typed() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem, FaultPlan::from([(0, Fault::Enospc)]));
        let err = fs.write_all(&p("/d/a"), b"012345678").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
    }

    #[test]
    fn transient_fault_absorbs_then_succeeds_at_same_index() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem.clone(), FaultPlan::from([(0, Fault::Transient(2))]));
        assert_eq!(
            fs.write_all(&p("/d/a"), b"x").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            fs.write_all(&p("/d/a"), b"x").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        fs.write_all(&p("/d/a"), b"x").unwrap();
        assert_eq!(fs.ops_seen(), 1, "retries must not consume op indices");
    }

    #[test]
    fn crash_point_kills_every_later_operation() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem.clone(), FaultPlan::from([(1, Fault::CrashPoint)]));
        fs.write_all(&p("/d/a"), b"x").unwrap();
        assert!(fs.sync_file(&p("/d/a")).is_err());
        assert!(fs.is_crashed());
        assert!(fs.read(&p("/d/a")).is_err());
        assert!(fs.list(&p("/d")).is_err());
    }

    #[test]
    fn fault_on_sync_degrades_to_io_error() {
        let mem = Arc::new(MemFs::new());
        let fs = ChaosFs::new(mem.clone(), FaultPlan::from([(1, Fault::FsyncFail)]));
        fs.write_all(&p("/d/a"), b"x").unwrap();
        assert!(fs.sync_file(&p("/d/a")).is_err());
        // Not durable: a crash tears it.
        mem.crash();
        assert_eq!(mem.read(&p("/d/a")).unwrap(), b"");
    }
}
