//! The checkpoint store: atomic saves, scavenging recovery, retention GC.
//!
//! # Save protocol
//!
//! Every save runs the same four-step sequence against [`StoreFs`]:
//!
//! ```text
//! 1. write_all  ckpt-<gen>.qfc.tmp      bytes visible, not durable
//! 2. sync_file  ckpt-<gen>.qfc.tmp      bytes durable under the temp name
//! 3. read       ckpt-<gen>.qfc.tmp      read-back verification
//! 4. rename     .tmp → ckpt-<gen>.qfc   atomic publish
//! 5. sync_dir   <dir>                   the *name* is durable
//! ```
//!
//! A crash between any two steps leaves either no final file or a
//! complete, checksummed one — never a live name with torn content. The
//! read-back at step 3 closes the one hole fsync can't: a *silent short
//! write* (the kernel persisting a prefix while reporting success) would
//! otherwise be published as a corrupt checkpoint under a live name with
//! `save` reporting durable success. Checkpoints are small, so the extra
//! read costs microseconds and buys the invariant "save returned Ok ⇒
//! the published file is byte-exact". Each step is retried under
//! [`RetryPolicy`] for transient errors
//! (`Interrupted`/`WouldBlock`/`TimedOut`); hard failures abort the save
//! and leave any debris for recovery to classify.
//!
//! # Recovery
//!
//! [`CheckpointStore::recover`] scans the directory and sorts every file
//! into exactly one bucket: valid checkpoint, quarantined (corrupt —
//! renamed aside, **never deleted**), skipped (newer manifest version —
//! left untouched), temp debris (crashed save — quarantined), or
//! unreadable (I/O error even after retries — left in place). The newest
//! valid generation wins. The buckets are conserved: every scanned file
//! lands in exactly one, and [`RecoveryReport::conserved`] checks it.
//!
//! # Retention
//!
//! After each successful save, GC removes all but the newest
//! [`StoreConfig::retain`] valid checkpoints — except a pinned
//! generation (a rollback target) is always kept. Quarantined files are
//! never GC'd; they are evidence.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qfe_obs::{NoopRecorder, Recorder};

use crate::format::{Checkpoint, FormatError};
use crate::fs::StoreFs;

/// File extension of a live checkpoint.
const EXT: &str = ".qfc";
/// Suffix of an in-flight (or crashed) save.
const TMP_SUFFIX: &str = ".qfc.tmp";
/// Suffix recovery renames damaged files to. Quarantined files keep
/// their full original name in front of it, so provenance survives.
const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Bounded exponential backoff for transient I/O errors.
///
/// Only `Interrupted`, `WouldBlock`, and `TimedOut` are retried — those
/// are the kinds that mean "try again"; everything else (ENOSPC, bad fd,
/// simulated crash) fails the operation immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
        }
    }
}

fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Configuration for a [`CheckpointStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the checkpoints (created on open).
    pub dir: PathBuf,
    /// Valid generations to keep after GC (minimum 1).
    pub retain: usize,
    /// Transient-error retry policy applied to every fs operation.
    pub retry: RetryPolicy,
}

impl StoreConfig {
    /// Defaults (retain 3, default retries) under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            retain: 3,
            retry: RetryPolicy::default(),
        }
    }
}

/// Metadata recorded alongside a model snapshot; the store assigns the
/// generation itself.
#[derive(Debug, Clone, Default)]
pub struct CheckpointMeta {
    /// Estimator name (e.g. `GB + conjunctive`).
    pub kind: String,
    /// Featurizer (QFT) name the model was trained under.
    pub qft: String,
    /// Wall-clock training time, seconds since the Unix epoch (0 =
    /// unknown).
    pub trained_at_unix_s: u64,
    /// Training-set size (0 = unknown).
    pub sample_count: u64,
    /// Free-form provenance ("initial", "adapt swap", …).
    pub note: String,
}

/// What [`CheckpointStore::recover`] found, bucket by bucket.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// The newest valid checkpoint, if any exists.
    pub latest: Option<Checkpoint>,
    /// Files examined (previously-quarantined files are not re-examined
    /// and not counted here).
    pub scanned: usize,
    /// Checksum-valid, structurally sound checkpoints found.
    pub valid: usize,
    /// Damaged files renamed aside this scan.
    pub quarantined: usize,
    /// Newer-manifest-version files left untouched for a newer binary.
    pub skipped_version: usize,
    /// Crashed-save temp files quarantined this scan.
    pub tmp_debris: usize,
    /// Files that could not be read even after retries; left in place.
    pub unreadable: usize,
}

impl RecoveryReport {
    /// Every scanned file must land in exactly one bucket. A `false`
    /// here means the scan itself is buggy — tests assert on it.
    pub fn conserved(&self) -> bool {
        self.scanned
            == self.valid
                + self.quarantined
                + self.skipped_version
                + self.tmp_debris
                + self.unreadable
    }
}

/// Injectable sleep, so tests retry without wall-clock delay.
type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// See the module docs.
pub struct CheckpointStore {
    fs: Arc<dyn StoreFs>,
    cfg: StoreConfig,
    /// Next generation to assign. Seeded past every name seen on open —
    /// including corrupt and quarantined ones — so numbers are never
    /// reused even across crash/restart cycles.
    next_gen: AtomicU64,
    pinned: Mutex<Option<u64>>,
    recorder: Mutex<Arc<dyn Recorder>>,
    sleeper: Sleeper,
}

/// Parse the generation out of `ckpt-<16 hex>.qfc[…]` file names; `None`
/// for foreign files.
fn parse_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?;
    let hex = rest.get(..16)?;
    match rest.get(16..17) {
        Some(".") => u64::from_str_radix(hex, 16).ok(),
        _ => None,
    }
}

fn file_name(path: &Path) -> &str {
    path.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

impl CheckpointStore {
    /// Open (creating if needed) the store at `cfg.dir`.
    ///
    /// Scans existing names — valid, temp, and quarantined alike — to
    /// seed the generation counter past anything ever written.
    pub fn open(fs: Arc<dyn StoreFs>, cfg: StoreConfig) -> io::Result<Self> {
        let store = CheckpointStore {
            fs,
            cfg,
            next_gen: AtomicU64::new(0),
            pinned: Mutex::new(None),
            recorder: Mutex::new(Arc::new(NoopRecorder)),
            sleeper: Arc::new(std::thread::sleep),
        };
        store.with_retry(|fs| fs.create_dir_all(&store.cfg.dir))?;
        let names = store.with_retry(|fs| fs.list(&store.cfg.dir))?;
        let max_seen = names
            .iter()
            .filter_map(|p| parse_generation(file_name(p)))
            .max();
        store
            .next_gen
            .store(max_seen.map_or(0, |g| g + 1), Ordering::SeqCst);
        Ok(store)
    }

    /// Route `persist.*` metrics into `recorder` (defaults to a no-op).
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = recorder;
    }

    /// Replace the backoff sleep (tests pass a no-op to retry without
    /// wall-clock delay).
    pub fn set_sleeper(&mut self, sleeper: Arc<dyn Fn(Duration) + Send + Sync>) {
        self.sleeper = sleeper;
    }

    fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Generation the next save will get.
    pub fn next_generation(&self) -> u64 {
        self.next_gen.load(Ordering::SeqCst)
    }

    /// Keep `generation` through GC (rollback target). One pin at a
    /// time; pinning replaces the previous pin.
    pub fn pin(&self, generation: u64) {
        *self.pinned.lock().unwrap_or_else(|e| e.into_inner()) = Some(generation);
    }

    /// Clear the pin.
    pub fn unpin(&self) {
        *self.pinned.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn run_one<T>(&self, f: &dyn Fn(&dyn StoreFs) -> io::Result<T>) -> io::Result<T> {
        f(self.fs.as_ref())
    }

    /// Run `f` with bounded exponential backoff on transient errors.
    fn with_retry<T>(&self, f: impl Fn(&dyn StoreFs) -> io::Result<T>) -> io::Result<T> {
        let rec = self.recorder();
        let mut backoff = self.cfg.retry.initial_backoff;
        let mut attempt = 0u32;
        loop {
            match self.run_one(&f) {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(e.kind()) && attempt < self.cfg.retry.max_retries => {
                    attempt += 1;
                    rec.incr("persist.retried");
                    (self.sleeper)(backoff);
                    backoff = (backoff * 2).min(self.cfg.retry.max_backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn final_path(&self, generation: u64) -> PathBuf {
        self.cfg.dir.join(format!("ckpt-{generation:016x}{EXT}"))
    }

    fn tmp_path(&self, generation: u64) -> PathBuf {
        self.cfg
            .dir
            .join(format!("ckpt-{generation:016x}{TMP_SUFFIX}"))
    }

    /// Durably persist `model` under a fresh generation; returns the
    /// generation on success.
    ///
    /// On failure the generation number is burned (never reused) and any
    /// temp debris is left for the next [`recover`](Self::recover) to
    /// quarantine — this function never deletes.
    pub fn save(&self, meta: &CheckpointMeta, model: Vec<u8>) -> io::Result<u64> {
        let rec = self.recorder();
        let started = Instant::now();
        let generation = self.next_gen.fetch_add(1, Ordering::SeqCst);
        let ck = Checkpoint {
            generation,
            kind: meta.kind.clone(),
            qft: meta.qft.clone(),
            trained_at_unix_s: meta.trained_at_unix_s,
            sample_count: meta.sample_count,
            note: meta.note.clone(),
            model,
        };
        let bytes = ck.encode();
        let tmp = self.tmp_path(generation);
        let fin = self.final_path(generation);

        let result = self
            .with_retry(|fs| fs.write_all(&tmp, &bytes))
            .and_then(|()| self.with_retry(|fs| fs.sync_file(&tmp)))
            .and_then(|()| {
                // Read-back verification: catches silent short writes
                // that fsync happily made durable (see module docs).
                let back = self.with_retry(|fs| fs.read(&tmp))?;
                if back == bytes {
                    Ok(())
                } else {
                    Err(io::Error::other(
                        "read-back verification failed: short or corrupted write",
                    ))
                }
            })
            .and_then(|()| self.with_retry(|fs| fs.rename(&tmp, &fin)))
            .and_then(|()| self.with_retry(|fs| fs.sync_dir(&self.cfg.dir)));

        match result {
            Ok(()) => {
                rec.incr("persist.written");
                rec.record("persist.save", started.elapsed());
                self.gc();
                Ok(generation)
            }
            Err(e) => {
                rec.incr("persist.write_failed");
                Err(e)
            }
        }
    }

    /// Rename a damaged file aside (append [`QUARANTINE_SUFFIX`]); a
    /// best-effort dir sync makes the verdict durable. Never deletes.
    fn quarantine(&self, path: &Path) -> bool {
        let mut target = path.as_os_str().to_owned();
        target.push(QUARANTINE_SUFFIX);
        let target = PathBuf::from(target);
        let ok = self.with_retry(|fs| fs.rename(path, &target)).is_ok();
        if ok {
            let _ = self.with_retry(|fs| fs.sync_dir(&self.cfg.dir));
        }
        ok
    }

    /// Scan the directory, classify every file, and return the newest
    /// valid checkpoint (see the module docs for the buckets).
    pub fn recover(&self) -> io::Result<RecoveryReport> {
        let rec = self.recorder();
        let started = Instant::now();
        let mut report = RecoveryReport::default();
        let paths = self.with_retry(|fs| fs.list(&self.cfg.dir))?;

        let mut best: Option<Checkpoint> = None;
        for path in paths {
            let name = file_name(&path);
            if name.ends_with(QUARANTINE_SUFFIX) {
                continue; // already classified by an earlier scan
            }
            report.scanned += 1;
            if name.ends_with(TMP_SUFFIX) {
                // A save that never reached its rename. The content may
                // even be intact, but the protocol never published it —
                // treat it as debris and move it aside.
                report.tmp_debris += 1;
                rec.incr("persist.tmp_debris");
                self.quarantine(&path);
                continue;
            }
            if !name.ends_with(EXT) {
                // Foreign file in our directory: not ours to touch, but
                // it must land in a bucket. Count it as unreadable-by-us.
                report.unreadable += 1;
                rec.incr("persist.unreadable");
                continue;
            }
            let bytes = match self.with_retry(|fs| fs.read(&path)) {
                Ok(b) => b,
                Err(_) => {
                    report.unreadable += 1;
                    rec.incr("persist.unreadable");
                    continue;
                }
            };
            match Checkpoint::decode(&bytes) {
                Ok(ck) => {
                    report.valid += 1;
                    if best.as_ref().is_none_or(|b| ck.generation > b.generation) {
                        best = Some(ck);
                    }
                }
                Err(FormatError::UnsupportedVersion { .. }) => {
                    // Recognizable, just newer than this build: leave the
                    // file for the binary that owns it.
                    report.skipped_version += 1;
                    rec.incr("persist.skipped_version");
                }
                Err(_) => {
                    report.quarantined += 1;
                    rec.incr("persist.quarantined");
                    self.quarantine(&path);
                }
            }
        }

        if let Some(ck) = &best {
            rec.incr("persist.recovered");
            rec.add("persist.recovered_generation", 0); // ensure key exists
            rec.set_gauge("persist.recovered_generation", ck.generation);
        }
        rec.record("persist.recover", started.elapsed());
        debug_assert!(report.conserved(), "recovery buckets must conserve");
        report.latest = best;
        Ok(report)
    }

    /// Remove valid checkpoints beyond the newest
    /// [`StoreConfig::retain`], keeping a pinned generation
    /// unconditionally. Best-effort: I/O errors leave files for the next
    /// pass. Only files matching the live-checkpoint name pattern are
    /// ever removed.
    pub fn gc(&self) {
        let rec = self.recorder();
        let retain = self.cfg.retain.max(1);
        let pinned = *self.pinned.lock().unwrap_or_else(|e| e.into_inner());
        let Ok(paths) = self.with_retry(|fs| fs.list(&self.cfg.dir)) else {
            return;
        };
        let mut live: Vec<(u64, PathBuf)> = paths
            .into_iter()
            .filter(|p| file_name(p).ends_with(EXT))
            .filter_map(|p| parse_generation(file_name(&p)).map(|g| (g, p)))
            .collect();
        if live.len() <= retain {
            return;
        }
        live.sort_by_key(|(g, _)| std::cmp::Reverse(*g));
        for (generation, path) in live.into_iter().skip(retain) {
            if Some(generation) == pinned {
                continue;
            }
            if self.with_retry(|fs| fs.remove(&path)).is_ok() {
                rec.incr("persist.gc_removed");
            }
        }
        let _ = self.with_retry(|fs| fs.sync_dir(&self.cfg.dir));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosFs, Fault, FaultPlan};
    use crate::mem::MemFs;
    use qfe_obs::MetricsRecorder;

    fn meta(note: &str) -> CheckpointMeta {
        CheckpointMeta {
            kind: "GB + conjunctive".into(),
            qft: "conjunctive".into(),
            trained_at_unix_s: 1_700_000_000,
            sample_count: 100,
            note: note.into(),
        }
    }

    fn mem_store(mem: &Arc<MemFs>, retain: usize) -> CheckpointStore {
        let mut cfg = StoreConfig::new("/store");
        cfg.retain = retain;
        let mut store = CheckpointStore::open(Arc::clone(mem) as Arc<dyn StoreFs>, cfg).unwrap();
        store.set_sleeper(Arc::new(|_| {}));
        store
    }

    #[test]
    fn save_then_recover_round_trips() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        let generation = store.save(&meta("initial"), vec![1, 2, 3]).unwrap();
        let report = store.recover().unwrap();
        assert!(report.conserved());
        let ck = report.latest.unwrap();
        assert_eq!(ck.generation, generation);
        assert_eq!(ck.model, vec![1, 2, 3]);
        assert_eq!(ck.note, "initial");
    }

    #[test]
    fn newest_valid_generation_wins() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 5);
        store.save(&meta("a"), vec![1]).unwrap();
        store.save(&meta("b"), vec![2]).unwrap();
        let last = store.save(&meta("c"), vec![3]).unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.valid, 3);
        assert_eq!(report.latest.unwrap().generation, last);
    }

    #[test]
    fn saved_checkpoint_survives_crash() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        store.save(&meta("durable"), vec![7; 64]).unwrap();
        mem.crash();
        let store2 = mem_store(&mem, 3);
        let report = store2.recover().unwrap();
        assert_eq!(report.latest.unwrap().model, vec![7; 64]);
    }

    #[test]
    fn torn_unsynced_write_is_quarantined_not_deleted() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        store.save(&meta("good"), vec![1; 32]).unwrap();
        // A bare write without the protocol: torn on crash.
        mem.write_all(
            &PathBuf::from("/store/ckpt-00000000000000ff.qfc"),
            &[0u8; 100],
        )
        .unwrap();
        mem.crash();
        let store2 = mem_store(&mem, 3);
        let report = store2.recover().unwrap();
        assert!(report.conserved());
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.latest.unwrap().note, "good");
        // The damaged file still exists, renamed aside.
        assert!(mem.exists(&PathBuf::from(
            "/store/ckpt-00000000000000ff.qfc.quarantined"
        )));
    }

    #[test]
    fn tmp_debris_is_counted_and_moved_aside() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        mem.write_all(
            &PathBuf::from("/store/ckpt-0000000000000001.qfc.tmp"),
            b"junk",
        )
        .unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.tmp_debris, 1);
        assert!(report.latest.is_none());
        assert!(mem.exists(&PathBuf::from(
            "/store/ckpt-0000000000000001.qfc.tmp.quarantined"
        )));
    }

    #[test]
    fn generations_never_reused_after_restart() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 5);
        let g0 = store.save(&meta("a"), vec![1]).unwrap();
        mem.crash();
        let store2 = mem_store(&mem, 5);
        let g1 = store2.save(&meta("b"), vec![2]).unwrap();
        assert!(g1 > g0, "generation {g1} must be fresher than {g0}");
    }

    #[test]
    fn retention_gc_keeps_newest_and_pinned() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 2);
        let rec = Arc::new(MetricsRecorder::new());
        store.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        let first = store.save(&meta("pin-me"), vec![0]).unwrap();
        store.pin(first);
        for i in 1..=4 {
            store.save(&meta("later"), vec![i]).unwrap();
        }
        let report = store.recover().unwrap();
        // Newest 2 + the pinned one.
        assert_eq!(report.valid, 3);
        assert!(rec.counter("persist.gc_removed") >= 2);
        let gens: Vec<u64> = {
            let mut g = Vec::new();
            for p in mem.list(&PathBuf::from("/store")).unwrap() {
                if let Some(gen) = parse_generation(file_name(&p)) {
                    if file_name(&p).ends_with(EXT) {
                        g.push(gen);
                    }
                }
            }
            g
        };
        assert!(gens.contains(&first), "pinned generation must survive GC");
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let mem = Arc::new(MemFs::new());
        let chaos = Arc::new(ChaosFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            FaultPlan::new(),
        ));
        // open() consumes ops; plant transients on the save's first two
        // steps after open.
        let mut cfg = StoreConfig::new("/store");
        cfg.retry.max_retries = 3;
        let mut store = CheckpointStore::open(Arc::clone(&chaos) as Arc<dyn StoreFs>, cfg).unwrap();
        store.set_sleeper(Arc::new(|_| {}));
        let rec = Arc::new(MetricsRecorder::new());
        store.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        let base = chaos.ops_seen();
        chaos.plant(base, Fault::Transient(2));
        chaos.plant(base + 1, Fault::Transient(1));
        store.save(&meta("retried"), vec![9]).unwrap();
        assert_eq!(rec.counter("persist.retried"), 3);
        assert_eq!(rec.counter("persist.written"), 1);
        let report = store.recover().unwrap();
        assert_eq!(report.latest.unwrap().model, vec![9]);
    }

    #[test]
    fn exhausted_retries_fail_the_save() {
        let mem = Arc::new(MemFs::new());
        let chaos = Arc::new(ChaosFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            FaultPlan::new(),
        ));
        let mut cfg = StoreConfig::new("/store");
        cfg.retry.max_retries = 2;
        let mut store = CheckpointStore::open(Arc::clone(&chaos) as Arc<dyn StoreFs>, cfg).unwrap();
        store.set_sleeper(Arc::new(|_| {}));
        let rec = Arc::new(MetricsRecorder::new());
        store.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        chaos.plant(chaos.ops_seen(), Fault::Transient(10));
        assert!(store.save(&meta("doomed"), vec![1]).is_err());
        assert_eq!(rec.counter("persist.write_failed"), 1);
        assert_eq!(rec.counter("persist.retried"), 2);
    }

    #[test]
    fn foreign_and_newer_version_files_left_untouched() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        store.save(&meta("mine"), vec![1]).unwrap();
        // A foreign file and a future-version checkpoint.
        mem.write_all(&PathBuf::from("/store/README.txt"), b"hello")
            .unwrap();
        let mut future = Checkpoint {
            generation: 9_999,
            kind: String::new(),
            qft: String::new(),
            trained_at_unix_s: 0,
            sample_count: 0,
            note: String::new(),
            model: vec![1, 2],
        }
        .encode();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        mem.write_all(&PathBuf::from("/store/ckpt-000000000000270f.qfc"), &future)
            .unwrap();
        let report = store.recover().unwrap();
        assert!(report.conserved());
        assert_eq!(report.valid, 1);
        assert_eq!(report.skipped_version, 1);
        assert_eq!(report.unreadable, 1, "foreign file counted, not touched");
        assert_eq!(report.latest.unwrap().note, "mine");
        assert!(mem.exists(&PathBuf::from("/store/README.txt")));
        assert!(
            mem.exists(&PathBuf::from("/store/ckpt-000000000000270f.qfc")),
            "future-version file must not be quarantined or deleted"
        );
        // But its generation still seeds the counter on reopen.
        let store2 = mem_store(&mem, 3);
        assert!(store2.next_generation() > 0x270f);
    }

    #[test]
    fn empty_store_recovers_to_none() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem, 3);
        let report = store.recover().unwrap();
        assert!(report.latest.is_none());
        assert!(report.conserved());
        assert_eq!(report.scanned, 0);
    }

    #[test]
    fn parse_generation_accepts_only_checkpoint_names() {
        assert_eq!(parse_generation("ckpt-000000000000002a.qfc"), Some(42));
        assert_eq!(parse_generation("ckpt-000000000000002a.qfc.tmp"), Some(42));
        assert_eq!(
            parse_generation("ckpt-000000000000002a.qfc.quarantined"),
            Some(42)
        );
        assert_eq!(parse_generation("ckpt-zz.qfc"), None);
        assert_eq!(parse_generation("other.bin"), None);
        assert_eq!(parse_generation("ckpt-000000000000002a"), None);
    }
}
