//! Equivalence gates for the compiled inference layer.
//!
//! The contract being enforced (see DESIGN.md §16):
//!
//! * The flattened GBDT — f32 traversal *and* the quantized `u16`
//!   traversal — is **bit-identical** to the reference enum-tree walk,
//!   including at the exact split thresholds and their neighboring
//!   representable floats, where a `<` vs `<=` slip would show first.
//! * The compiled MLP kernels (scalar and FMA) are **tolerance-pinned**
//!   against the reference matmul forward pass: f32 re-association
//!   changes the bits, so the gate is relative error, not equality.
//! * The compiled forest must be *smaller* than the enum trees it
//!   shadows — it exists to be the cache-resident form.

use proptest::prelude::*;
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::mlp::{Mlp, MlpConfig};
use qfe_ml::train::Regressor;
use qfe_ml::{fma_available, MlpScratch};

/// Deterministic synthetic workload: `dims` features of interleaved
/// periodic ramps, a nonlinear label.
fn workload(rows: usize, dims: usize) -> (Matrix, Vec<f32>) {
    let data: Vec<Vec<f32>> = (0..rows)
        .map(|i| {
            (0..dims)
                .map(|d| ((i * (d + 3) + d) % (13 + d)) as f32 * 0.37 - 1.5)
                .collect()
        })
        .collect();
    let y: Vec<f32> = data
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(d, v)| v * (d as f32 + 0.5))
                .sum()
        })
        .collect();
    (Matrix::from_rows(&data), y)
}

fn trained_gbdt(rows: usize, dims: usize, trees: usize, seed: u64) -> (Gbdt, Matrix) {
    let (x, y) = workload(rows, dims);
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: trees,
        max_depth: 5,
        min_samples_leaf: 2,
        seed,
        ..GbdtConfig::default()
    });
    gb.try_fit(&x, &y).expect("fit");
    assert!(gb.is_compiled(), "trained forest must compile");
    (gb, x)
}

/// Quantize a feature matrix through the model's own binner.
fn binned(gb: &Gbdt, x: &Matrix) -> Vec<u16> {
    let binner = gb.feature_binner().expect("compiled model has a binner");
    let mut bins = vec![0u16; x.rows() * x.cols()];
    for r in 0..x.rows() {
        binner.bin_row(x.row(r), &mut bins[r * x.cols()..(r + 1) * x.cols()]);
    }
    bins
}

#[test]
fn compiled_gbdt_is_bit_identical_on_training_data() {
    let (gb, x) = trained_gbdt(400, 4, 40, 7);
    let reference = gb.predict_batch_reference(&x);
    let compiled = gb.predict_batch(&x);
    assert_eq!(reference, compiled, "compiled f32 walk diverged");
    let via_bins = gb
        .predict_batch_binned(x.rows(), &binned(&gb, &x))
        .expect("binned path available");
    assert_eq!(reference, via_bins, "binned walk diverged");
}

#[test]
fn boundary_values_bin_and_predict_identically() {
    // Probe every split threshold of every feature, plus its adjacent
    // representable floats: the exact values where the reference `v <=
    // t` compare and the quantized `bin(v) <= bin(t)` compare could
    // disagree if either side rounded the boundary differently.
    let (gb, _x) = trained_gbdt(300, 3, 30, 11);
    let binner = gb.feature_binner().expect("binner");
    let dims = binner.features();
    let mut probes: Vec<Vec<f32>> = Vec::new();
    for f in 0..dims {
        for &cut in binner.cuts(f) {
            for v in [
                f32::from_bits(cut.to_bits().wrapping_sub(1)),
                cut,
                f32::from_bits(cut.to_bits().wrapping_add(1)),
            ] {
                let mut row = vec![0.25f32; dims];
                row[f] = v;
                probes.push(row);
            }
        }
    }
    assert!(!probes.is_empty(), "forest with no splits probes nothing");
    let px = Matrix::from_rows(&probes);
    let reference = gb.predict_batch_reference(&px);
    assert_eq!(reference, gb.predict_batch(&px), "f32 walk at boundaries");
    assert_eq!(
        reference,
        gb.predict_batch_binned(px.rows(), &binned(&gb, &px))
            .expect("binned"),
        "binned walk at boundaries"
    );
}

#[test]
fn compiled_forest_is_smaller_than_reference_trees() {
    let (gb, _x) = trained_gbdt(500, 4, 60, 3);
    let compiled = gb.compiled().expect("compiled").memory_bytes();
    let reference = gb.reference_memory_bytes();
    assert!(
        compiled < reference,
        "flattened layout ({compiled} B) must undercut the enum trees ({reference} B)"
    );
    // And the reported total accounts for both live representations.
    assert!(gb.memory_bytes() >= compiled + reference);
}

#[test]
fn binned_path_rejects_malformed_arenas() {
    let (gb, x) = trained_gbdt(100, 3, 10, 5);
    let bins = binned(&gb, &x);
    // Wrong row count for the arena length: refuse, don't misread.
    assert!(gb.predict_batch_binned(x.rows() + 1, &bins).is_none());
    assert!(gb.predict_batch_binned(x.rows(), &bins[1..]).is_none());
    // Empty batch is a supported edge, not a refusal.
    assert_eq!(gb.predict_batch_binned(0, &[]), Some(Vec::new()));
}

#[test]
fn compiled_mlp_matches_reference_within_tolerance() {
    let (x, y) = workload(256, 6);
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![32, 16],
        epochs: 8,
        ..MlpConfig::default()
    });
    mlp.try_fit(&x, &y).expect("fit");
    assert!(mlp.is_compiled());
    let reference = mlp.predict_batch_reference(&x);
    let compiled = mlp.predict_batch(&x);
    for (i, (&r, &c)) in reference.iter().zip(&compiled).enumerate() {
        let tol = 1e-4f32 * r.abs().max(1.0);
        assert!(
            (r - c).abs() <= tol,
            "row {i}: reference {r} vs compiled {c}"
        );
    }
}

#[test]
fn mlp_scalar_and_simd_kernels_agree() {
    if !fma_available() {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    }
    let (x, y) = workload(128, 5);
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![24, 24],
        epochs: 6,
        ..MlpConfig::default()
    });
    mlp.try_fit(&x, &y).expect("fit");
    let compiled = mlp.compiled().expect("compiled");
    let (mut s_scalar, mut s_simd) = (MlpScratch::new(), MlpScratch::new());
    for r in 0..x.rows() {
        let scalar = compiled.forward_row_with(x.row(r), &mut s_scalar, false);
        let simd = compiled.forward_row_with(x.row(r), &mut s_simd, true);
        let tol = 1e-4f32 * scalar.abs().max(1.0);
        assert!(
            (scalar - simd).abs() <= tol,
            "row {r}: scalar {scalar} vs simd {simd}"
        );
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// Random small forests over random inputs: the compiled walk (both
    /// traversal modes) never drifts a single bit from the enum walk.
    #[test]
    fn compiled_gbdt_bit_identity_holds_under_random_inputs(
        seed in 0u64..1_000,
        trees in 3usize..20,
        dims in 1usize..5,
        probe in proptest::collection::vec(-4.0f32..4.0, 1..24),
    ) {
        let (gb, _x) = trained_gbdt(120, dims, trees, seed);
        let rows: Vec<Vec<f32>> = probe
            .chunks(dims)
            .filter(|c| c.len() == dims)
            .map(<[f32]>::to_vec)
            .collect();
        prop_assume!(!rows.is_empty());
        let px = Matrix::from_rows(&rows);
        let reference = gb.predict_batch_reference(&px);
        prop_assert_eq!(&reference, &gb.predict_batch(&px));
        let via_bins = gb
            .predict_batch_binned(px.rows(), &binned(&gb, &px))
            .expect("binned path");
        prop_assert_eq!(&reference, &via_bins);
    }
}
