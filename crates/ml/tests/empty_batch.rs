//! The empty-batch contract: every `predict_batch` maps 0 rows to 0
//! predictions — by contract, not by accident — including the degenerate
//! `0×0` that `Matrix::from_rows(&[])` produces. Also pins the
//! `Regressor::predict` default (thread-local reshaped buffer) to the
//! batch path it amortizes.

use qfe_ml::train::Regressor;
use qfe_ml::{Gbdt, GbdtConfig, LinearRegression, Matrix, Mlp, MlpConfig};

fn toy_problem() -> (Matrix, Vec<f32>) {
    let rows: Vec<Vec<f32>> = (0..64)
        .map(|i| vec![i as f32 / 64.0, (63 - i) as f32 / 64.0])
        .collect();
    let y: Vec<f32> = rows.iter().map(|r| r[0] * 2.0 + r[1]).collect();
    (Matrix::from_rows(&rows), y)
}

fn fitted_models() -> Vec<Box<dyn Regressor>> {
    let (x, y) = toy_problem();
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: 8,
        ..GbdtConfig::default()
    });
    gb.fit(&x, &y);
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![4],
        epochs: 2,
        batch_size: 16,
        learning_rate: 1e-3,
        seed: 1,
    });
    mlp.fit(&x, &y);
    let mut lr = LinearRegression::new(0);
    lr.fit(&x, &y);
    vec![Box::new(gb), Box::new(mlp), Box::new(lr)]
}

#[test]
fn zero_rows_yield_zero_predictions() {
    for model in fitted_models() {
        // The canonical empty batch: width preserved.
        assert!(
            model.predict_batch(&Matrix::empty(2)).is_empty(),
            "{}: empty(cols) must predict to an empty vector",
            model.model_name()
        );
        // The degenerate 0×0 from `from_rows(&[])`: no width to check, so
        // the input-dim assertion must not fire.
        assert!(
            model.predict_batch(&Matrix::from_rows(&[])).is_empty(),
            "{}: from_rows(&[]) must predict to an empty vector",
            model.model_name()
        );
        assert_eq!(model.try_predict_batch(&Matrix::empty(2)), Ok(vec![]));
    }
}

#[test]
fn predict_default_matches_batch_path() {
    let (x, _) = toy_problem();
    for model in fitted_models() {
        let batch = model.predict_batch(&x);
        for (r, &expected) in batch.iter().enumerate() {
            assert_eq!(
                model.predict(x.row(r)),
                expected,
                "{}: single-row predict diverged from the batch path at row {r}",
                model.model_name()
            );
        }
    }
}

#[test]
fn untrained_linreg_stays_nan_for_nonempty_and_empty_batches() {
    let lr = LinearRegression::new(0);
    // Untrained + rows: NaN per row (surfaced as a typed error upstream).
    assert!(lr
        .predict_batch(&Matrix::zeros(3, 2))
        .iter()
        .all(|v| v.is_nan()));
    // Untrained + empty: still an empty vector, not a panic.
    assert!(lr.predict_batch(&Matrix::empty(2)).is_empty());
}
