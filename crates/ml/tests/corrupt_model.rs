//! Corruption tests for the GBDT serialization format: **every**
//! truncation and **every** single-bit flip of a serialized model must be
//! rejected with a typed [`DecodeError`] — never a panic, never a
//! silently mis-parsed model. The checksum-before-parse design makes this
//! provable by exhaustion on a small model, and a property test layers
//! random multi-byte corruption on top.

use proptest::prelude::*;
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::serialize::{gbdt_from_bytes, gbdt_to_bytes};
use qfe_ml::train::Regressor;
use std::sync::OnceLock;

/// A small trained model, serialized — shared across cases so the
/// exhaustive sweeps stay fast.
fn model_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32])
            .collect();
        let y: Vec<f32> = rows.iter().map(|r| r[0] * 0.3 + r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 5,
            max_depth: 3,
            max_leaves: 4,
            min_samples_leaf: 5,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        gbdt_to_bytes(&gb)
    })
}

#[test]
fn clean_bytes_round_trip() {
    assert!(gbdt_from_bytes(model_bytes()).is_ok());
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = model_bytes();
    for cut in 0..bytes.len() {
        assert!(
            gbdt_from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} of {} bytes must fail",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = model_bytes();
    let mut copy = bytes.to_vec();
    for byte in 0..bytes.len() {
        for bit in 0..8u8 {
            copy[byte] ^= 1 << bit;
            assert!(
                gbdt_from_bytes(&copy).is_err(),
                "bit {bit} of byte {byte} flipped: must fail"
            );
            copy[byte] ^= 1 << bit; // restore
        }
    }
    // The restore discipline held: the buffer decodes again.
    assert_eq!(copy, bytes);
    assert!(gbdt_from_bytes(&copy).is_ok());
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(256))]

    #[test]
    fn random_multi_byte_corruption_is_rejected(
        edits in proptest::collection::vec((0usize..4096, 0u8..255), 1..8)
    ) {
        let bytes = model_bytes();
        let mut copy = bytes.to_vec();
        let mut changed = false;
        for (pos, val) in edits {
            let pos = pos % copy.len();
            changed |= copy[pos] != val;
            copy[pos] = val;
        }
        prop_assume!(changed);
        // Decoding must not panic; corruption after the frame must be
        // detected. (A corrupted byte can never produce a panic, and only
        // an exact checksum-preserving rewrite could decode — which a
        // byte-level overwrite of the checksummed payload cannot be,
        // since FNV-1a is collision-free under these few-byte edits only
        // with negligible probability; assert Err outright.)
        prop_assert!(gbdt_from_bytes(&copy).is_err());
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(0u8..255, 0..256)
    ) {
        let _ = gbdt_from_bytes(&garbage);
    }
}
