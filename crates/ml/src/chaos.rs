//! Deterministic fault injection for regressors.
//!
//! [`ChaosRegressor`] wraps any [`Regressor`] and corrupts a seeded,
//! reproducible subset of its predictions — NaN, ±∞, or absurd garbage
//! magnitudes. It exists to *test* the robustness layer: the guards in
//! [`Regressor::try_predict_batch`] and the estimator-level fallback chain
//! must turn every injected fault into a typed error or a sane fallback,
//! never a panic and never a silently-wrong estimate.
//!
//! Injection is a pure function of `(seed, call index, output index)`, so
//! a failing test case replays exactly. Nothing here is conditionally
//! compiled away: chaos wrappers are ordinary estimators, usable from
//! integration tests and benchmarks alike.

use crate::matrix::Matrix;
use crate::train::{Regressor, TrainError};
use std::sync::atomic::{AtomicU64, Ordering};

/// The corruption a [`ChaosRegressor`] injects into predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressorFault {
    /// Replace the prediction with NaN.
    Nan,
    /// Replace the prediction with +∞.
    Infinity,
    /// Replace the prediction with a finite but absurd magnitude
    /// (±1e30) — the kind of silent garbage a divergent model emits.
    Garbage,
    /// Training rounds that never finish: `try_fit_within` spins forever,
    /// polling `should_continue` between (optionally real-time-stalled)
    /// virtual rounds, and only the caller's budget saying "stop" ends it
    /// with [`TrainError::Interrupted`]. This is the fault a budgeted
    /// retraining loop exists for — a test that survives it has proven
    /// its budget is actually enforced, because nothing else terminates
    /// the call. Predictions and the unbudgeted `fit`/`try_fit` paths
    /// pass through untouched.
    SlowTrain,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a hash of the identifying indices.
fn unit(seed: u64, call: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ call.wrapping_mul(0x9E37_79B9) ^ index.wrapping_mul(0x85EB_CA6B));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A [`Regressor`] wrapper that deterministically corrupts a fraction of
/// predictions (see the module docs).
#[derive(Debug)]
pub struct ChaosRegressor<M> {
    inner: M,
    fault: RegressorFault,
    rate: f64,
    seed: u64,
    calls: AtomicU64,
    stall: std::time::Duration,
}

impl<M: Regressor> ChaosRegressor<M> {
    /// Wrap `inner`, corrupting each prediction independently with
    /// probability `rate` (clamped to [0, 1]), deterministically in `seed`.
    pub fn new(inner: M, fault: RegressorFault, rate: f64, seed: u64) -> Self {
        ChaosRegressor {
            inner,
            fault,
            rate: rate.clamp(0.0, 1.0),
            seed,
            calls: AtomicU64::new(0),
            stall: std::time::Duration::ZERO,
        }
    }

    /// Real time burned per virtual [`RegressorFault::SlowTrain`] round
    /// (default: none). Tests on an injected, auto-advancing clock keep
    /// this at zero so the stall is purely virtual and the test is
    /// instant; wall-clock stress runs set a small real stall so the
    /// budget enforcement is exercised against a genuinely blocked
    /// thread.
    pub fn with_stall(mut self, stall: std::time::Duration) -> Self {
        self.stall = stall;
        self
    }

    /// The wrapped regressor.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn corrupted(&self, original: f32) -> f32 {
        match self.fault {
            RegressorFault::Nan => f32::NAN,
            RegressorFault::Infinity => f32::INFINITY,
            RegressorFault::Garbage => {
                if original >= 0.0 {
                    1e30
                } else {
                    -1e30
                }
            }
            // SlowTrain is a training-path fault; predictions flow
            // through untouched even when it fires.
            RegressorFault::SlowTrain => original,
        }
    }

    /// Whether the per-call fault fires for the call numbered by the
    /// shared counter (pure in `(seed, call)`, like every other chaos
    /// draw in this workspace).
    fn call_fires(&self, call: u64) -> bool {
        unit(self.seed, call, u64::MAX) < self.rate
    }
}

impl<M: Regressor> Regressor for ChaosRegressor<M> {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        self.inner.fit(x, y);
    }

    fn try_fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrainError> {
        self.inner.try_fit(x, y)
    }

    /// Budgeted training with the [`RegressorFault::SlowTrain`] hook: when
    /// the fault fires for this call, the method never finishes on its
    /// own — it spins through virtual rounds (each optionally burning
    /// [`with_stall`](ChaosRegressor::with_stall) of real time), polling
    /// `should_continue` between rounds, until the budget aborts it with
    /// [`TrainError::Interrupted`]. The model is left untouched, honoring
    /// the no-poisoning contract.
    fn try_fit_within(
        &mut self,
        x: &Matrix,
        y: &[f32],
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<(), TrainError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.fault == RegressorFault::SlowTrain && self.call_fires(call) {
            let mut round = 0usize;
            loop {
                if !should_continue() {
                    return Err(TrainError::Interrupted { round });
                }
                if !self.stall.is_zero() {
                    std::thread::sleep(self.stall);
                }
                round = round.saturating_add(1);
            }
        }
        self.inner.try_fit_within(x, y, should_continue)
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f32> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut out = self.inner.predict_batch(x);
        for (i, v) in out.iter_mut().enumerate() {
            if unit(self.seed, call, i as u64) < self.rate {
                *v = self.corrupted(*v);
            }
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn model_name(&self) -> &'static str {
        "chaos"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;

    fn fitted_linreg() -> LinearRegression {
        let x = Matrix::from_rows(&(0..32).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y: Vec<f32> = (0..32).map(|i| i as f32 * 0.5).collect();
        let mut m = LinearRegression::new(0);
        m.fit(&x, &y);
        m
    }

    fn probe() -> Matrix {
        Matrix::from_rows(&(0..64).map(|i| vec![i as f32]).collect::<Vec<_>>())
    }

    #[test]
    fn zero_rate_is_transparent() {
        let m = fitted_linreg();
        let clean = m.predict_batch(&probe());
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 0.0, 1);
        assert_eq!(chaos.predict_batch(&probe()), clean);
    }

    #[test]
    fn full_rate_corrupts_everything() {
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 1.0, 1);
        assert!(chaos.predict_batch(&probe()).iter().all(|v| v.is_nan()));
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Infinity, 1.0, 1);
        assert!(chaos
            .predict_batch(&probe())
            .iter()
            .all(|v| *v == f32::INFINITY));
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Garbage, 1.0, 1);
        assert!(chaos
            .predict_batch(&probe())
            .iter()
            .all(|v| v.is_finite() && v.abs() >= 1e29));
    }

    #[test]
    fn same_seed_same_faults() {
        let a = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 0.3, 42);
        let b = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 0.3, 42);
        let pa = a.predict_batch(&probe());
        let pb = b.predict_batch(&probe());
        let mask_a: Vec<bool> = pa.iter().map(|v| v.is_nan()).collect();
        let mask_b: Vec<bool> = pb.iter().map(|v| v.is_nan()).collect();
        assert_eq!(mask_a, mask_b);
        assert!(mask_a.iter().any(|&m| m), "rate 0.3 over 64 outputs");
        assert!(!mask_a.iter().all(|&m| m));
    }

    #[test]
    fn different_calls_fault_different_positions() {
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 0.3, 7);
        let m1: Vec<bool> = chaos
            .predict_batch(&probe())
            .iter()
            .map(|v| v.is_nan())
            .collect();
        let m2: Vec<bool> = chaos
            .predict_batch(&probe())
            .iter()
            .map(|v| v.is_nan())
            .collect();
        assert_ne!(m1, m2, "fault pattern should vary across calls");
    }

    #[test]
    fn slow_train_spins_until_the_budget_says_stop() {
        let mut chaos =
            ChaosRegressor::new(LinearRegression::new(0), RegressorFault::SlowTrain, 1.0, 5);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let y = [1.0, 2.0];
        // A virtual budget of 100 polls: training must end via
        // Interrupted, not by completing.
        let mut polls = 0u32;
        let err = chaos
            .try_fit_within(&x, &y, &mut || {
                polls += 1;
                polls <= 100
            })
            .unwrap_err();
        assert!(
            matches!(err, TrainError::Interrupted { round: 100 }),
            "{err:?}"
        );
        assert_eq!(polls, 101, "one poll per round plus the aborting one");
        // The model was never touched (no-poisoning): fitting now works
        // exactly like on a fresh model.
        assert!(chaos.try_fit(&x, &y).is_ok());
    }

    #[test]
    fn slow_train_at_rate_zero_trains_normally_and_predicts_cleanly() {
        let mut chaos =
            ChaosRegressor::new(LinearRegression::new(0), RegressorFault::SlowTrain, 0.0, 5);
        let x = Matrix::from_rows(&(0..16).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y: Vec<f32> = (0..16).map(|i| i as f32).collect();
        chaos
            .try_fit_within(&x, &y, &mut || true)
            .expect("rate 0 never stalls");
        // SlowTrain is a training fault only: predictions pass through
        // even at rate 1.0.
        let always = ChaosRegressor::new(fitted_linreg(), RegressorFault::SlowTrain, 1.0, 5);
        assert_eq!(
            always.predict_batch(&probe()),
            fitted_linreg().predict_batch(&probe())
        );
    }

    #[test]
    fn try_predict_surfaces_injected_fault_as_typed_error() {
        let chaos = ChaosRegressor::new(fitted_linreg(), RegressorFault::Nan, 1.0, 3);
        let err = chaos.try_predict_batch(&probe()).unwrap_err();
        assert!(
            matches!(err, TrainError::NonFinitePrediction { .. }),
            "{err:?}"
        );
    }
}
