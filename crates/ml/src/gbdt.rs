//! Gradient-boosted regression trees — the paper's `GB` model (after Dutt
//! et al. \[5\], whose reference implementation is LightGBM).
//!
//! Squared-loss boosting: each tree fits the current residuals. Split
//! finding is histogram-based like LightGBM's: features are quantile-binned
//! to at most `max_bins` values once before training, and each candidate
//! split only scans per-bin aggregates. Trees grow leaf-wise (best gain
//! first) up to `max_leaves` / `max_depth`.
//!
//! The resulting estimator is small (kilobytes) and trains in seconds —
//! reproducing the paper's Section 5.7 observation that GB is the smallest
//! and fastest-to-train estimator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use qfe_core::featurize::FeatureBinner;
use qfe_core::parallel::ThreadPool;

use crate::compiled::CompiledGbdt;
use crate::matrix::Matrix;
use crate::train::Regressor;

/// Feature columns per parallel split-gain chunk. Fixed — never derived
/// from the thread count — so split finding is bit-identical at any
/// `QFE_THREADS` (see `qfe_core::parallel` for the contract: fixed chunk
/// boundaries + chunk-order reduction).
const FEATURE_CHUNK: usize = 8;
/// Rows per parallel residual / prediction-update chunk. Also fixed; the
/// per-round loss is reduced from per-chunk partial sums in chunk order.
const ROW_CHUNK: usize = 2048;
/// `rows × features` below which split finding stays inline — the gate is
/// a function of the data only, so both the serial and the chunked path
/// are taken identically at every thread count (and they compute the
/// same bits anyway: per-feature histograms are independent).
const SPLIT_PAR_MIN_WORK: usize = 1 << 13;
/// Rows below which `predict_batch` stays inline. Per-row sums always
/// accumulate in tree order, so this gate cannot change results either.
const PREDICT_PAR_MIN_ROWS: usize = 256;

/// GBDT hyperparameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Maximum number of leaves per tree (leaf-wise growth).
    pub max_leaves: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// Fraction of features considered per tree (column subsampling).
    pub colsample: f64,
    /// RNG seed (column subsampling).
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 120,
            learning_rate: 0.12,
            max_depth: 8,
            max_leaves: 31,
            min_samples_leaf: 10,
            lambda: 1.0,
            max_bins: 64,
            colsample: 1.0,
            seed: 0,
        }
    }
}

/// Reference tree node — the representation training grows and the
/// snapshot format serializes. Inference goes through the flattened
/// [`CompiledGbdt`] form compiled from these (see [`crate::compiled`]).
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Go left if `x[feature] <= threshold`.
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    Leaf(f32),
}

#[derive(Debug, Clone)]
pub(crate) struct Tree {
    pub(crate) nodes: Vec<Node>,
}

impl Tree {
    pub(crate) fn predict(&self, x: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Footprint of the reference representation: the enum nodes.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
    }
}

/// Shared read-only inputs to one node's split search (the per-node
/// sums are computed once and reused by every feature chunk).
struct SplitCtx<'a> {
    rows: &'a [u32],
    residuals: &'a [f32],
    bins: &'a [Vec<u8>],
    cuts: &'a [Vec<f32>],
    total_sum: f64,
    parent_score: f64,
}

/// A leaf-wise growth candidate.
struct Candidate {
    node_slot: usize,
    rows: Vec<u32>,
    depth: usize,
    gain: f64,
    feature: u32,
    threshold_bin: u8,
}

/// The gradient-boosting ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    config: GbdtConfig,
    trees: Vec<Tree>,
    base: f32,
    input_dim: usize,
    /// Flattened inference form, rebuilt after every fit and decode
    /// (never serialized — the snapshot format carries the reference
    /// trees). `None` only before training or for forests outside the
    /// compiled index space; prediction then falls back to the reference
    /// walk.
    compiled: Option<CompiledGbdt>,
}

impl Gbdt {
    /// Create an untrained model.
    pub fn new(config: GbdtConfig) -> Self {
        assert!(config.n_trees >= 1);
        assert!(config.max_bins >= 2 && config.max_bins <= 256);
        assert!(config.max_leaves >= 2);
        Gbdt {
            config,
            trees: Vec::new(),
            base: 0.0,
            input_dim: 0,
            compiled: None,
        }
    }

    /// Number of trained trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// True when the flattened inference form is active (every forest the
    /// trainer or decoder can realistically produce compiles; see
    /// `CompiledGbdt::compile` for the index-space limits).
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// The compiled forest, if built.
    pub fn compiled(&self) -> Option<&CompiledGbdt> {
        self.compiled.as_ref()
    }

    /// Heap footprint of the reference (pointer-free enum) trees alone —
    /// the baseline the compiled layout is measured against. The
    /// flattened form must come out *smaller* (12-byte packed splits + a
    /// 4-byte threshold and 4-byte leaf each, vs 20 bytes per enum node),
    /// which `compiled_smaller_than_reference` in the equivalence suite
    /// pins.
    pub fn reference_memory_bytes(&self) -> usize {
        self.trees.iter().map(Tree::memory_bytes).sum::<usize>()
    }

    /// Deterministic byte image of the compiled layout (for the
    /// thread-count determinism gate); `None` when not compiled.
    pub fn compiled_fingerprint_bytes(&self) -> Option<Vec<u8>> {
        self.compiled.as_ref().map(CompiledGbdt::fingerprint_bytes)
    }

    /// Quantile cut points for one feature column.
    fn cuts_for_feature(&self, x: &Matrix, f: usize) -> Vec<f32> {
        let n = x.rows();
        let mut vals: Vec<f32> = (0..n).map(|r| x.get(r, f)).collect();
        vals.sort_by(f32::total_cmp);
        vals.dedup();
        let want = self.config.max_bins - 1;
        let mut c: Vec<f32> = if vals.len() <= want {
            // Few distinct values: cut between every pair.
            vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
        } else {
            (1..=want)
                .map(|i| vals[i * (vals.len() - 1) / want])
                .collect()
        };
        c.dedup();
        c
    }

    /// Per-feature quantile cut points, feature-parallel. Each feature's
    /// cuts depend only on its own column, so placement cannot change
    /// results; chunk-order collection keeps the output layout fixed.
    fn build_cuts(&self, pool: &ThreadPool, x: &Matrix) -> Vec<Vec<f32>> {
        let cols: Vec<usize> = (0..x.cols()).collect();
        pool.par_chunks(&cols, FEATURE_CHUNK, |_, chunk| {
            chunk
                .iter()
                .map(|&f| self.cuts_for_feature(x, f))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Column-major binned features: `bins[f][row]`, feature-parallel.
    fn bin_features(pool: &ThreadPool, x: &Matrix, cuts: &[Vec<f32>]) -> Vec<Vec<u8>> {
        let n = x.rows();
        let cols: Vec<usize> = (0..x.cols()).collect();
        pool.par_chunks(&cols, FEATURE_CHUNK, |_, chunk| {
            chunk
                .iter()
                .map(|&f| {
                    let c = &cuts[f];
                    (0..n)
                        .map(|r| c.partition_point(|&edge| edge < x.get(r, f)) as u8)
                        .collect::<Vec<u8>>()
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The histogram scan of [`best_split`](Self::best_split) over one
    /// slice of candidate features. Ties keep the earliest feature in
    /// slice order (strict `>`), which the chunk-order reduction in
    /// `best_split` extends across chunks.
    fn best_split_over(&self, ctx: &SplitCtx<'_>, features: &[u32]) -> Option<(f64, u32, u8)> {
        let lambda = self.config.lambda as f64;
        let min_child = self.config.min_samples_leaf;
        let mut best: Option<(f64, u32, u8)> = None;
        let mut hist_sum = [0.0f64; 256];
        let mut hist_cnt = [0u32; 256];
        for &f in features {
            let n_bins = ctx.cuts[f as usize].len() + 1;
            if n_bins < 2 {
                continue; // constant feature
            }
            hist_sum[..n_bins].fill(0.0);
            hist_cnt[..n_bins].fill(0);
            let fb = &ctx.bins[f as usize];
            for &r in ctx.rows {
                let b = fb[r as usize] as usize;
                hist_sum[b] += ctx.residuals[r as usize] as f64;
                hist_cnt[b] += 1;
            }
            let mut left_sum = 0.0f64;
            let mut left_cnt = 0u32;
            for t in 0..n_bins - 1 {
                left_sum += hist_sum[t];
                left_cnt += hist_cnt[t];
                let right_cnt = ctx.rows.len() as u32 - left_cnt;
                if (left_cnt as usize) < min_child || (right_cnt as usize) < min_child {
                    continue;
                }
                let right_sum = ctx.total_sum - left_sum;
                let score = left_sum * left_sum / (left_cnt as f64 + lambda)
                    + right_sum * right_sum / (right_cnt as f64 + lambda);
                let gain = score - ctx.parent_score;
                if gain > 1e-9 && best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                    best = Some((gain, f, t as u8));
                }
            }
        }
        best
    }

    /// Find the best split of `rows` over `features`, returning
    /// `(gain, feature, threshold_bin)`.
    ///
    /// Split-gain evaluation fans out over fixed feature chunks; each
    /// chunk's histograms are independent, and the chunk bests are
    /// reduced in chunk order with a strict `>` so ties resolve to the
    /// earliest feature exactly as the serial scan would. The result is
    /// bit-identical at every thread count.
    fn best_split(
        &self,
        pool: &ThreadPool,
        rows: &[u32],
        residuals: &[f32],
        bins: &[Vec<u8>],
        cuts: &[Vec<f32>],
        features: &[u32],
    ) -> Option<(f64, u32, u8)> {
        let lambda = self.config.lambda as f64;
        let total_sum: f64 = rows.iter().map(|&r| residuals[r as usize] as f64).sum();
        let total_n = rows.len() as f64;
        let ctx = SplitCtx {
            rows,
            residuals,
            bins,
            cuts,
            total_sum,
            parent_score: total_sum * total_sum / (total_n + lambda),
        };
        if rows.len().saturating_mul(features.len()) < SPLIT_PAR_MIN_WORK {
            return self.best_split_over(&ctx, features);
        }
        pool.par_chunks(features, FEATURE_CHUNK, |_, chunk| {
            self.best_split_over(&ctx, chunk)
        })
        .into_iter()
        .flatten()
        .fold(None, |best: Option<(f64, u32, u8)>, cand| {
            if best.as_ref().is_none_or(|(g, _, _)| cand.0 > *g) {
                Some(cand)
            } else {
                best
            }
        })
    }

    fn leaf_value(&self, rows: &[u32], residuals: &[f32]) -> f32 {
        let sum: f64 = rows.iter().map(|&r| residuals[r as usize] as f64).sum();
        (sum / (rows.len() as f64 + self.config.lambda as f64)) as f32
    }

    /// Grow one tree on the residuals, leaf-wise.
    fn grow_tree(
        &self,
        pool: &ThreadPool,
        residuals: &[f32],
        bins: &[Vec<u8>],
        cuts: &[Vec<f32>],
        features: &[u32],
        n: usize,
    ) -> Tree {
        let mut nodes: Vec<Node> = vec![Node::Leaf(0.0)];
        let all_rows: Vec<u32> = (0..n as u32).collect();
        let mut frontier: Vec<Candidate> = Vec::new();
        if let Some((gain, feature, tbin)) =
            self.best_split(pool, &all_rows, residuals, bins, cuts, features)
        {
            frontier.push(Candidate {
                node_slot: 0,
                rows: all_rows,
                depth: 0,
                gain,
                feature,
                threshold_bin: tbin,
            });
        } else {
            nodes[0] = Node::Leaf(self.leaf_value(&(0..n as u32).collect::<Vec<_>>(), residuals));
            return Tree { nodes };
        }

        let mut leaves = 1usize;
        while leaves < self.config.max_leaves {
            // Expand the candidate with the highest gain.
            let Some(best_idx) = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.gain.total_cmp(&b.1.gain))
                .map(|(i, _)| i)
            else {
                break;
            };
            let cand = frontier.swap_remove(best_idx);
            let fb = &bins[cand.feature as usize];
            let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = cand
                .rows
                .iter()
                .partition(|&&r| fb[r as usize] <= cand.threshold_bin);
            let threshold = cuts[cand.feature as usize][cand.threshold_bin as usize];
            let left_slot = nodes.len();
            nodes.push(Node::Leaf(self.leaf_value(&left_rows, residuals)));
            let right_slot = nodes.len();
            nodes.push(Node::Leaf(self.leaf_value(&right_rows, residuals)));
            nodes[cand.node_slot] = Node::Split {
                feature: cand.feature,
                threshold,
                left: left_slot as u32,
                right: right_slot as u32,
            };
            leaves += 1;

            // Enqueue children if they can still split. Both children's
            // split searches are independent, so evaluate them as one
            // scoped pair; results come back in task order (left, right),
            // matching the serial loop exactly.
            if cand.depth + 1 < self.config.max_depth {
                let children = [(left_slot, left_rows), (right_slot, right_rows)];
                let splits = pool.scoped(
                    children
                        .iter()
                        .map(|(_, rows)| {
                            move || {
                                if rows.len() >= 2 * self.config.min_samples_leaf {
                                    self.best_split(pool, rows, residuals, bins, cuts, features)
                                } else {
                                    None
                                }
                            }
                        })
                        .collect(),
                );
                for ((slot, rows), split) in children.into_iter().zip(splits) {
                    if let Some((gain, feature, tbin)) = split {
                        frontier.push(Candidate {
                            node_slot: slot,
                            rows,
                            depth: cand.depth + 1,
                            gain,
                            feature,
                            threshold_bin: tbin,
                        });
                    }
                }
            }
        }
        Tree { nodes }
    }
}

impl Gbdt {
    /// Encode the trained model into the `QFEGB002` payload (everything
    /// after the magic + checksum frame; see [`crate::serialize`]).
    pub(crate) fn encode(&self) -> Vec<u8> {
        // Exact payload size: 16-byte header (base, input_dim, lr, tree
        // count), then per tree a 4-byte node count plus 5 bytes per leaf
        // (tag + value) and 17 per split (tag + feature + threshold +
        // children). The old `trees.len() * 64` guess undershot by an
        // order of magnitude for real trees (~31 leaves ≈ 700+ bytes),
        // forcing several reallocations of a buffer we can size exactly.
        let payload = 16
            + self
                .trees
                .iter()
                .map(|t| {
                    4 + t
                        .nodes
                        .iter()
                        .map(|n| match n {
                            Node::Leaf(_) => 5,
                            Node::Split { .. } => 17,
                        })
                        .sum::<usize>()
                })
                .sum::<usize>();
        let mut out = Vec::with_capacity(payload);
        out.extend_from_slice(&self.base.to_le_bytes());
        out.extend_from_slice(&(self.input_dim as u32).to_le_bytes());
        out.extend_from_slice(&self.config.learning_rate.to_le_bytes());
        out.extend_from_slice(&(self.trees.len() as u32).to_le_bytes());
        for tree in &self.trees {
            out.extend_from_slice(&(tree.nodes.len() as u32).to_le_bytes());
            for node in &tree.nodes {
                match node {
                    Node::Leaf(v) => {
                        out.push(0);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        out.push(1);
                        out.extend_from_slice(&feature.to_le_bytes());
                        out.extend_from_slice(&threshold.to_le_bytes());
                        out.extend_from_slice(&left.to_le_bytes());
                        out.extend_from_slice(&right.to_le_bytes());
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), payload, "encode capacity estimate drifted");
        out
    }

    /// Decode a model from the `QFEGB002` payload (the caller —
    /// [`crate::serialize::gbdt_from_bytes`] — has already verified the
    /// magic and checksum). The returned model predicts identically to the
    /// encoded one; training-only state (bins, histograms) is not
    /// serialized, so refitting starts fresh.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, crate::serialize::DecodeError> {
        use crate::serialize::{DecodeError, Reader};
        let mut r = Reader::new(bytes);
        let base = r.f32()?;
        let input_dim = r.u32()? as usize;
        let learning_rate = r.f32()?;
        if !base.is_finite() || !learning_rate.is_finite() {
            return Err(DecodeError::Corrupt("non-finite model parameter"));
        }
        let n_trees = r.u32()? as usize;
        if n_trees == 0 || n_trees > 1_000_000 {
            return Err(DecodeError::Corrupt("implausible tree count"));
        }
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let n_nodes = r.u32()? as usize;
            if n_nodes == 0 || n_nodes > 10_000_000 {
                return Err(DecodeError::Corrupt("implausible node count"));
            }
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                match r.u8()? {
                    0 => {
                        let v = r.f32()?;
                        if !v.is_finite() {
                            return Err(DecodeError::Corrupt("non-finite leaf value"));
                        }
                        nodes.push(Node::Leaf(v));
                    }
                    1 => {
                        let feature = r.u32()?;
                        let threshold = r.f32()?;
                        let left = r.u32()?;
                        let right = r.u32()?;
                        if feature as usize >= input_dim.max(1) {
                            return Err(DecodeError::Corrupt("split feature out of range"));
                        }
                        if !threshold.is_finite() {
                            return Err(DecodeError::Corrupt("non-finite split threshold"));
                        }
                        nodes.push(Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        });
                    }
                    _ => return Err(DecodeError::Corrupt("unknown node tag")),
                }
            }
            // Child indices must stay inside the node table.
            for node in &nodes {
                if let Node::Split { left, right, .. } = node {
                    if *left as usize >= nodes.len() || *right as usize >= nodes.len() {
                        return Err(DecodeError::Corrupt("child index out of range"));
                    }
                }
            }
            trees.push(Tree { nodes });
        }
        if !r.finished() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }
        // Recompile the flattened inference form from the decoded trees —
        // this is what makes a warm restart (qfe-store) serve compiled
        // predictions without any change to the snapshot format.
        let compiled = CompiledGbdt::compile(&trees, input_dim);
        Ok(Gbdt {
            config: GbdtConfig {
                n_trees,
                learning_rate,
                ..GbdtConfig::default()
            },
            trees,
            base,
            input_dim,
            compiled,
        })
    }
}

impl Gbdt {
    /// The boosting loop shared by [`Regressor::fit`] (check = false,
    /// infallible) and [`Regressor::try_fit`] (check = true: the per-round
    /// squared loss is verified finite and divergence aborts training).
    /// `should_continue`, when present, is polled before every round so an
    /// external deadline can abort training between trees
    /// ([`Regressor::try_fit_within`]).
    fn fit_impl(
        &mut self,
        x: &Matrix,
        y: &[f32],
        check: bool,
        mut should_continue: Option<&mut dyn FnMut() -> bool>,
    ) -> Result<(), crate::train::TrainError> {
        self.input_dim = x.cols();
        self.trees.clear();
        self.base = y.iter().sum::<f32>() / y.len() as f32;

        // Resolve the pool once: worker threads do not inherit the
        // caller's thread-local override, so every parallel op below
        // must use this handle rather than re-resolving `current()`.
        let pool = qfe_core::parallel::current();
        let cuts = self.build_cuts(&pool, x);
        let bins = Self::bin_features(&pool, x, &cuts);
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut pred = vec![self.base; n];
        let mut residuals = vec![0.0f32; n];
        let all_features: Vec<u32> = (0..x.cols() as u32).collect();
        let n_sampled =
            ((x.cols() as f64 * self.config.colsample).ceil() as usize).clamp(1, x.cols());

        for round in 0..self.config.n_trees {
            if let Some(go_on) = should_continue.as_deref_mut() {
                if !go_on() {
                    return Err(crate::train::TrainError::Interrupted { round });
                }
            }
            // Residual refresh + loss, row-parallel over fixed chunks.
            // Each chunk's partial loss is an independent f64 sum; the
            // partials are folded in chunk order, so the total is the
            // same at every thread count (though its grouping differs
            // from a single flat serial sum — the contract is
            // thread-count invariance, not equality with old bits).
            let loss: f64 = if n <= ROW_CHUNK {
                let mut loss = 0.0f64;
                for i in 0..n {
                    residuals[i] = y[i] - pred[i];
                    loss += (residuals[i] as f64).powi(2);
                }
                loss
            } else {
                pool.par_chunks_mut(&mut residuals, ROW_CHUNK, |ci, chunk| {
                    let base = ci * ROW_CHUNK;
                    let mut partial = 0.0f64;
                    for (j, r) in chunk.iter_mut().enumerate() {
                        let i = base + j;
                        *r = y[i] - pred[i];
                        partial += (*r as f64).powi(2);
                    }
                    partial
                })
                .into_iter()
                .sum()
            };
            if check && !loss.is_finite() {
                return Err(crate::train::TrainError::NonFiniteLoss { round });
            }
            let features: Vec<u32> = if n_sampled == x.cols() {
                all_features.clone()
            } else {
                let mut fs = all_features.clone();
                fs.shuffle(&mut rng);
                fs.truncate(n_sampled);
                fs
            };
            let tree = self.grow_tree(&pool, &residuals, &bins, &cuts, &features, n);
            let lr = self.config.learning_rate;
            // Prediction update is per-row independent: chunking only
            // changes scheduling, never the arithmetic on any row.
            if n <= ROW_CHUNK {
                for (i, p) in pred.iter_mut().enumerate() {
                    *p += lr * tree.predict(x.row(i));
                }
            } else {
                let tree_ref = &tree;
                pool.par_chunks_mut(&mut pred, ROW_CHUNK, |ci, chunk| {
                    let base = ci * ROW_CHUNK;
                    for (j, p) in chunk.iter_mut().enumerate() {
                        *p += lr * tree_ref.predict(x.row(base + j));
                    }
                });
            }
            self.trees.push(tree);
        }
        // Flatten the finished forest for inference. Compilation reads
        // only the trees (deterministic at any thread count), so the
        // compiled bytes inherit training's determinism contract.
        self.compiled = CompiledGbdt::compile(&self.trees, self.input_dim);
        Ok(())
    }
}

impl Gbdt {
    /// Run `fill(base_row, chunk)` over the accumulator, serially for
    /// small batches and over fixed row chunks on the shared pool
    /// otherwise. Rows are independent, so the gate and chunking only
    /// shape scheduling — outputs are bit-identical at any thread count.
    fn accumulate<F>(&self, fill: F, rows: usize) -> Vec<f32>
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let mut acc = vec![0.0f32; rows];
        if rows < PREDICT_PAR_MIN_ROWS {
            fill(0, &mut acc);
        } else {
            let pool = qfe_core::parallel::current();
            pool.par_chunks_mut(&mut acc, ROW_CHUNK, |ci, chunk| {
                fill(ci * ROW_CHUNK, chunk);
            });
        }
        acc
    }

    /// `base + lr * sum` over the tree-order accumulator.
    fn finish(&self, acc: Vec<f32>) -> Vec<f32> {
        let lr = self.config.learning_rate;
        acc.iter().map(|&sum| self.base + lr * sum).collect()
    }

    /// The reference prediction path: the enum-node tree walk the model
    /// trained with. Kept as the bit-exactness baseline for the compiled
    /// walk (and as the fallback for forests outside the compiled index
    /// space).
    ///
    /// Trees-outer / rows-inner: each tree's node array stays hot in
    /// cache while the whole batch streams through its walk. Each
    /// accumulator receives the per-tree contributions in tree order, so
    /// the f32 summation order — and therefore the result — is
    /// bit-identical to the rows-outer singleton path at any thread
    /// count.
    ///
    /// # Panics
    /// Panics if the model is untrained or `x` has the wrong width (same
    /// contract as [`Regressor::predict_batch`]).
    pub fn predict_batch_reference(&self, x: &Matrix) -> Vec<f32> {
        assert!(
            !self.trees.is_empty(),
            "predict called before fit — the GBDT has no trees yet"
        );
        if x.rows() == 0 {
            return Vec::new();
        }
        assert_eq!(
            x.cols(),
            self.input_dim,
            "input dimension {} does not match trained dimension {}",
            x.cols(),
            self.input_dim
        );
        self.finish(self.accumulate(
            |base_row, acc| {
                for tree in &self.trees {
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += tree.predict(x.row(base_row + j));
                    }
                }
            },
            x.rows(),
        ))
    }
}

impl Regressor for Gbdt {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on zero samples");
        let _ = self.fit_impl(x, y, false, None); // check = false: cannot fail
    }

    fn try_fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), crate::train::TrainError> {
        crate::train::validate_training_set(x, y)?;
        // Train a candidate so a mid-training abort cannot leave `self`
        // half-boosted (provably: `self` is only written on success).
        let mut candidate = self.clone();
        candidate.fit_impl(x, y, true, None)?;
        *self = candidate;
        Ok(())
    }

    fn try_fit_within(
        &mut self,
        x: &Matrix,
        y: &[f32],
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<(), crate::train::TrainError> {
        crate::train::validate_training_set(x, y)?;
        // Same candidate-then-commit discipline as `try_fit`: an
        // interrupt between rounds leaves `self` exactly as it was.
        let mut candidate = self.clone();
        candidate.fit_impl(x, y, true, Some(should_continue))?;
        *self = candidate;
        Ok(())
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f32> {
        assert!(
            !self.trees.is_empty(),
            "predict called before fit — the GBDT has no trees yet"
        );
        // Empty-batch contract: 0 rows → 0 predictions, before the width
        // check (a `0×0` from `Matrix::from_rows(&[])` carries no width to
        // check against).
        if x.rows() == 0 {
            return Vec::new();
        }
        assert_eq!(
            x.cols(),
            self.input_dim,
            "input dimension {} does not match trained dimension {}",
            x.cols(),
            self.input_dim
        );
        // The compiled walk takes the same branches and accumulates in
        // the same tree order as the reference walk below, so the two are
        // bit-identical (proptested in tests/compiled_equivalence.rs).
        if let Some(compiled) = &self.compiled {
            return self.finish(self.accumulate(
                |base_row, acc| {
                    compiled.accumulate_rows(x, base_row, acc);
                },
                x.rows(),
            ));
        }
        self.predict_batch_reference(x)
    }

    fn feature_binner(&self) -> Option<&FeatureBinner> {
        self.compiled.as_ref().map(CompiledGbdt::binner)
    }

    fn predict_batch_binned(&self, rows: usize, bins: &[u16]) -> Option<Vec<f32>> {
        let compiled = self.compiled.as_ref()?;
        if rows == 0 {
            return Some(Vec::new());
        }
        if bins.len() != rows.checked_mul(self.input_dim)? {
            return None; // shape mismatch: let the caller take the f32 path
        }
        Some(self.finish(self.accumulate(
            |base_row, acc| {
                compiled.accumulate_binned(bins, base_row, acc);
            },
            rows,
        )))
    }

    fn memory_bytes(&self) -> usize {
        // Both representations are live: the reference trees (kept for
        // serialization and as the equivalence baseline) plus the
        // compiled arrays actually serving predictions.
        self.reference_memory_bytes()
            + self.compiled.as_ref().map_or(0, CompiledGbdt::memory_bytes)
            + 8
    }

    fn model_name(&self) -> &'static str {
        "GB"
    }

    fn to_bytes(&self) -> Option<Vec<u8>> {
        if self.trees.is_empty() {
            return None; // untrained: nothing durable to persist
        }
        Some(crate::serialize::gbdt_to_bytes(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_problem(n: usize) -> (Matrix, Vec<f32>) {
        // A piecewise function with an interaction: trees should nail this.
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen();
            let b: f32 = rng.gen();
            rows.push(vec![a, b]);
            y.push(if a > 0.5 && b > 0.5 {
                1.0
            } else if a > 0.5 {
                0.4
            } else {
                0.1
            });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_piecewise_function() {
        let (x, y) = toy_problem(2000);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 40,
            max_depth: 4,
            max_leaves: 8,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        let err = crate::train::mse(&gb.predict_batch(&x), &y);
        assert!(err < 5e-3, "mse {err}");
        assert_eq!(gb.tree_count(), 40);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = Matrix::from_rows(&(0..50).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y = vec![3.0f32; 50];
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 5,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        for p in gb.predict_batch(&x) {
            assert!((p - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_features_yield_mean() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0]; 40]);
        let y: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 10,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        let mean = y.iter().sum::<f32>() / 40.0;
        for p in gb.predict_batch(&x) {
            assert!((p - mean).abs() < 1e-3);
        }
    }

    #[test]
    fn respects_min_samples_leaf() {
        // With min_samples_leaf = n, no split is allowed: single leaf.
        let (x, y) = toy_problem(100);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 3,
            min_samples_leaf: 100,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        // Predictions must be constant (root leaves only).
        let preds = gb.predict_batch(&x);
        let first = preds[0];
        assert!(preds.iter().all(|&p| (p - first).abs() < 1e-6));
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = toy_problem(300);
        let cfg = GbdtConfig {
            n_trees: 10,
            colsample: 0.5,
            seed: 11,
            ..GbdtConfig::default()
        };
        let mut a = Gbdt::new(cfg.clone());
        let mut b = Gbdt::new(cfg);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn colsample_still_learns() {
        let (x, y) = toy_problem(1000);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 60,
            colsample: 0.5,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        // With only 2 features, colsample 0.5 gives each tree a single
        // axis; the interaction is still learned across trees, just less
        // sharply.
        let err = crate::train::mse(&gb.predict_batch(&x), &y);
        assert!(err < 5e-2, "mse {err}");
    }

    #[test]
    fn memory_is_kilobytes_not_megabytes() {
        // Paper Section 5.7: GB is the smallest estimator (~4.8 kB there).
        let (x, y) = toy_problem(1000);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 30,
            max_leaves: 8,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        assert!(gb.memory_bytes() < 200_000, "{} bytes", gb.memory_bytes());
        assert_eq!(gb.model_name(), "GB");
    }

    #[test]
    fn binning_boundaries_are_respected() {
        // Feature with exactly two values: split must separate them.
        let x = Matrix::from_rows(
            &(0..100)
                .map(|i| vec![if i < 50 { 0.0 } else { 1.0 }])
                .collect::<Vec<_>>(),
        );
        let y: Vec<f32> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 20,
            min_samples_leaf: 5,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        let p0 = gb.predict(&[0.0]);
        let p1 = gb.predict(&[1.0]);
        assert!(p0 < 0.1, "p0 = {p0}");
        assert!(p1 > 0.9, "p1 = {p1}");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let gb = Gbdt::new(GbdtConfig::default());
        let _ = gb.predict_batch(&Matrix::zeros(1, 2));
    }

    #[test]
    fn try_fit_matches_fit_on_clean_data() {
        let (x, y) = toy_problem(300);
        let cfg = GbdtConfig {
            n_trees: 10,
            ..GbdtConfig::default()
        };
        let mut a = Gbdt::new(cfg.clone());
        let mut b = Gbdt::new(cfg);
        a.fit(&x, &y);
        b.try_fit(&x, &y).unwrap();
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn try_fit_aborts_on_divergence_without_poisoning_state() {
        // All-f32::MAX labels overflow the base mean to ∞, so the round-0
        // residuals (and loss) are non-finite.
        let x = Matrix::from_rows(&(0..4).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y = vec![f32::MAX; 4];
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 3,
            min_samples_leaf: 1,
            ..GbdtConfig::default()
        });
        let err = gb.try_fit(&x, &y).unwrap_err();
        assert!(
            matches!(err, crate::train::TrainError::NonFiniteLoss { round: 0 }),
            "{err:?}"
        );
        // The model must be untouched — still untrained.
        assert_eq!(gb.tree_count(), 0);
    }

    #[test]
    fn try_fit_within_interrupts_between_rounds_without_poisoning() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f32>> = (0..64).map(|_| vec![rng.gen::<f32>()]).collect();
        let y: Vec<f32> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);

        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 10,
            ..GbdtConfig::default()
        });
        gb.try_fit(&x, &y).unwrap();
        let before = gbdt_snapshot(&gb, &x);

        // Allow exactly 3 round checks, then pull the plug.
        let mut budget = 3u32;
        let err = gb
            .try_fit_within(&x, &y, &mut || {
                let go = budget > 0;
                budget = budget.saturating_sub(1);
                go
            })
            .unwrap_err();
        assert_eq!(err, crate::train::TrainError::Interrupted { round: 3 });
        assert_eq!(gbdt_snapshot(&gb, &x), before, "model must be unchanged");

        // With an always-true check, training completes normally.
        gb.try_fit_within(&x, &y, &mut || true).unwrap();
        assert_eq!(gb.tree_count(), 10);
    }

    fn gbdt_snapshot(gb: &Gbdt, x: &Matrix) -> (usize, Vec<f32>) {
        (gb.tree_count(), gb.predict_batch(x))
    }

    #[test]
    fn validate_probe_accepts_trained_and_rejects_nan_emitters() {
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<Vec<f32>> = (0..64).map(|_| vec![rng.gen::<f32>()]).collect();
        let y: Vec<f32> = rows.iter().map(|r| r[0] + 1.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig::default());
        gb.try_fit(&x, &y).unwrap();
        gb.validate_probe(&x).unwrap();

        let chaos =
            crate::chaos::ChaosRegressor::new(gb, crate::chaos::RegressorFault::Nan, 1.0, 9);
        assert!(matches!(
            chaos.validate_probe(&x).unwrap_err(),
            crate::train::TrainError::NonFinitePrediction { .. }
        ));
    }

    #[test]
    fn try_fit_rejects_non_finite_features() {
        let x = Matrix::from_rows(&[vec![1.0], vec![f32::NAN]]);
        let mut gb = Gbdt::new(GbdtConfig::default());
        let err = gb.try_fit(&x, &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            crate::train::TrainError::NonFiniteFeature { row: 1, col: 0 }
        );
    }
}
